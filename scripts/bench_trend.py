#!/usr/bin/env python
"""Append a BENCH_micro.json report to the trend log and gate regressions.

Usage::

    python scripts/bench_trend.py [--report BENCH_micro.json]
                                  [--history BENCH_history.jsonl]
                                  [--max-regression 0.25]

Reads the freshly emitted ``BENCH_micro.json``, appends one compact
line to ``BENCH_history.jsonl`` (so the perf trajectory accumulates
across CI runs via the artifact), renders an ASCII trend chart of the
comparable history (also into ``$GITHUB_STEP_SUMMARY`` when set, so the
trajectory shows up on the CI run page), and exits non-zero when the
end-to-end metric regressed more than ``--max-regression`` (default
25%) against the previous history entry.  The first run of a metric
never fails -- there is nothing to compare against.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Metrics recorded per run: (history key, report path).  Lower is
#: better for all of them (wall-clock seconds, except the ``_rss_mb``
#: entries, which are peak resident-set megabytes).
RECORDED_METRICS = (
    ("end_to_end_s", ("end_to_end", "bucket_s")),
    # Columnar drain (PR 6): the batched replay core on the same
    # end-to-end workload.  Absent on pure-python hosts; recorded but
    # not gated, like every non-default-engine metric.
    ("end_to_end_columnar_s", ("end_to_end", "columnar_s")),
    ("cache_lfu_s", ("cache", "lfu_decisions_s")),
    ("cache_requests_s", ("cache", "index_requests_s")),
    # Trace pipeline (PR 5): generator backends plus the sweep-worker
    # share hand-off.  The numpy entry is absent on pure-python hosts;
    # missing metrics are simply skipped.
    ("trace_generate_python_s", ("trace", "generate_python_s")),
    ("trace_generate_numpy_s", ("trace", "generate_numpy_s")),
    ("trace_share_publish_s", ("trace", "share_publish_s")),
    ("trace_share_attach_s", ("trace", "share_attach_s")),
    # Peak RSS (PR 7): materialized monolithic vs. streamed sharded
    # replay, in MB rather than seconds -- lower is still better.  The
    # metro entries only appear on --metro runs; missing metrics are
    # skipped as usual.
    ("memory_materialized_rss_mb", ("memory", "materialized_peak_rss_mb")),
    ("memory_streamed_rss_mb", ("memory", "streamed_peak_rss_mb")),
    ("metro_wall_s", ("metro", "wall_s")),
    ("metro_peak_rss_mb", ("metro", "peak_rss_mb")),
)

#: Only the end-to-end replay gates CI.  The cache micro metrics are
#: millisecond-scale in --quick mode -- pure noise fodder across
#: heterogeneous shared runners -- so they are recorded for the trend
#: chart but never fail the build.
GATED_KEYS = ("end_to_end_s",)


def _dig(report: dict, path: tuple) -> float | None:
    node = report
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def summarize(report: dict) -> dict:
    """One history line: provenance plus the gated metrics."""
    entry = {
        "generated_unix": report.get("generated_unix"),
        "python": report.get("python"),
        "cpu_count": report.get("cpu_count"),
        "cpu_model": report.get("cpu_model"),
        "quick": report.get("quick"),
    }
    for key, path in RECORDED_METRICS:
        value = _dig(report, path)
        if value is not None:
            entry[key] = value
    return entry


def comparable_entries(lines: list, entry: dict) -> list:
    """History entries measured on the same workload shape and hardware."""
    matches = []
    for line in lines:
        candidate = json.loads(line)
        if (candidate.get("quick") == entry.get("quick")
                and candidate.get("cpu_count") == entry.get("cpu_count")
                and candidate.get("cpu_model") == entry.get("cpu_model")):
            matches.append(candidate)
    return matches


def render_trend(entries: list, key: str = "end_to_end_s",
                 width: int = 40, last: int = 20) -> str:
    """An ASCII bar chart of one metric's trajectory, oldest first.

    Bars scale to the slowest run in view; regressions that were gated
    are marked so the trend stays honest about which entries the
    baseline selection skipped.
    """
    points = [(e.get(key), bool(e.get("regressed"))) for e in entries[-last:]]
    points = [(v, flagged) for v, flagged in points if isinstance(v, (int, float))]
    if not points:
        return ""
    top = max(v for v, _ in points)
    lines = [f"{key} trend ({len(points)} comparable runs, "
             f"latest last; full bar = {top:.4f}s)"]
    for index, (value, flagged) in enumerate(points, 1):
        bar = "#" * max(1, round(width * value / top)) if top > 0 else ""
        marker = "  <- gated regression" if flagged else ""
        lines.append(f"  {index:>3}  {value:8.4f}s  {bar}{marker}")
    return "\n".join(lines)


def _publish_summary(chart: str) -> None:
    """Print the chart; mirror it into the CI job summary when present."""
    if not chart:
        return
    print(chart)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write("### Bench trend\n\n```text\n" + chart + "\n```\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", default="BENCH_micro.json",
                        help="bench report to ingest")
    parser.add_argument("--history", default="BENCH_history.jsonl",
                        help="trend log to append to")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="fail when end-to-end slows by more than this "
                             "fraction vs. the previous entry (default 0.25)")
    args = parser.parse_args()

    report_path = Path(args.report)
    if not report_path.exists():
        print(f"error: no bench report at {report_path}", file=sys.stderr)
        return 2
    report = json.loads(report_path.read_text())
    entry = summarize(report)

    # Only an entry measured on the same workload shape AND the same
    # hardware is a valid baseline: quick and full runs differ ~4x in
    # raw seconds, and shared-runner fleets span CPU generations whose
    # single-thread speed differs by more than the gate threshold.
    # Entries that themselves failed the gate are skipped too --
    # otherwise a regression becomes the next run's baseline and the
    # gate only ever fires once.
    history_path = Path(args.history)
    earlier: list = []
    if history_path.exists():
        lines = [line for line in history_path.read_text().splitlines() if line.strip()]
        earlier = comparable_entries(lines, entry)
    previous: dict | None = next(
        (candidate for candidate in reversed(earlier)
         if not candidate.get("regressed")),
        None,
    )

    failures = []
    if previous is not None:
        for key, _ in RECORDED_METRICS:
            now, then = entry.get(key), previous.get(key)
            if now is None or then is None or then <= 0:
                continue
            change = now / then - 1.0
            gated = key in GATED_KEYS
            if change > args.max_regression and gated:
                marker = "REGRESSION"
                failures.append(key)
            elif change > args.max_regression:
                marker = "slower, not gated"
            else:
                marker = "ok"
            print(f"bench-trend: {key}: {then:.4f}s -> {now:.4f}s "
                  f"({change:+.1%}) [{marker}]")
        if failures:
            entry["regressed"] = failures

    history_path.parent.mkdir(parents=True, exist_ok=True)
    with history_path.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")

    _publish_summary(render_trend(earlier + [entry]))

    if previous is None:
        print(f"bench-trend: no comparable entry in {history_path}; "
              f"recorded without gating")
        return 0
    if failures:
        print(
            f"error: {', '.join(failures)} regressed beyond "
            f"{args.max_regression:.0%} vs. the last healthy run",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
