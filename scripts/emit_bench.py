#!/usr/bin/env python
"""Measure the simulation core and emit ``BENCH_micro.json``.

Tracks the perf trajectory of the hot paths the tick-bucket engine PR
rebuilt:

* event-engine throughput -- the segment workload as a legacy heap
  chain vs. as session arcs on the calendar queue;
* hourly-meter throughput -- hour-spanning vs. single-bucket intervals;
* end-to-end replay -- one full system run on each engine path;
* sweep wall-clock -- the same config sweep serial vs. multi-worker
  (with the worker count and CPU count recorded, since a single-CPU
  host cannot show parallel speedup).

Usage::

    python scripts/emit_bench.py [--quick] [--workers N] [--output PATH]

Run it from the repository root (or with ``src`` on ``PYTHONPATH``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import SimulationConfig  # noqa: E402
from repro.core.meter import HourlyMeter  # noqa: E402
from repro.core.parallel import run_many  # noqa: E402
from repro.core.runner import run_simulation  # noqa: E402
from repro.cache.factory import LFUSpec, LRUSpec  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.trace.synthetic import PowerInfoModel, generate_trace  # noqa: E402


#: Baseline measured at the seed commit (e80c5fd) on the PR-1 host
#: (1 CPU, Python 3.11): the same fast-profile run (`base_trace(FAST)`,
#: 1000-peer nominal neighborhoods, LFU) before the engine rebuild.
#: Kept in the report so the perf trajectory has its starting point.
SEED_REFERENCE = {
    "commit": "e80c5fd",
    "fast_profile_run_s": 7.49,
    "note": (
        "pre-rebuild wall clock (best of 3) for one fast-profile "
        "simulation run; the same run and seed produced bit-identical "
        "counters and meter buckets after the rebuild"
    ),
}


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def engine_heap_chain(sessions: int, segments: int) -> int:
    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.after(300.0, chain, remaining - 1)

    for i in range(sessions):
        sim.at(float(i), chain, segments)
    sim.run()
    return sim.events_processed


def engine_arcs(sessions: int, segments: int) -> int:
    sim = Simulator()

    def step(now, index):
        return index < segments

    for i in range(sessions):
        sim.start_arc(300.0 + float(i), step)
    sim.run()
    return sim.events_processed


def meter_spanning(n: int) -> None:
    meter = HourlyMeter()
    for i in range(n):
        meter.add_interval(i * 97.0, 300.0, rate_bps=8.06e6)


def meter_single_bucket(n: int) -> None:
    meter = HourlyMeter()
    for i in range(n):
        meter.add_interval((i % 11) * 300.0, 300.0, rate_bps=8.06e6)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI-friendly)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the sweep measurement")
    parser.add_argument("--output", default="BENCH_micro.json",
                        help="where to write the JSON report")
    args = parser.parse_args()

    sessions, segments = (10, 500) if args.quick else (20, 1_000)
    meter_n = 20_000 if args.quick else 50_000
    users, days = (300, 2.0) if args.quick else (1_500, 6.0)

    report: dict = {
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "quick": args.quick,
        "seed_reference": SEED_REFERENCE,
    }

    # ---- event engine --------------------------------------------------
    events = sessions * (segments + 1)
    heap_s = best_of(lambda: engine_heap_chain(sessions, segments), repeats=7)
    arc_s = best_of(lambda: engine_arcs(sessions, segments), repeats=7)
    report["engine"] = {
        "events": events,
        "heap_chain_s": round(heap_s, 4),
        "arc_bucket_s": round(arc_s, 4),
        "heap_events_per_s": round(events / heap_s),
        "arc_events_per_s": round(events / arc_s),
        "speedup": round(heap_s / arc_s, 2),
    }

    # ---- meter ---------------------------------------------------------
    span_s = best_of(lambda: meter_spanning(meter_n))
    single_s = best_of(lambda: meter_single_bucket(meter_n))
    report["meter"] = {
        "intervals": meter_n,
        "hour_spanning_s": round(span_s, 4),
        "single_bucket_s": round(single_s, 4),
        "single_bucket_intervals_per_s": round(meter_n / single_s),
    }

    # ---- end-to-end replay --------------------------------------------
    model = PowerInfoModel(n_users=users, n_programs=users // 5, days=days,
                           seed=5)
    trace = generate_trace(model)
    config = SimulationConfig(neighborhood_size=60, warmup_days=0.5)
    heap_e2e = best_of(lambda: run_simulation(trace, config, engine="heap"),
                       repeats=2)
    bucket_e2e = best_of(lambda: run_simulation(trace, config, engine="bucket"),
                         repeats=2)
    report["end_to_end"] = {
        "users": users,
        "days": days,
        "heap_s": round(heap_e2e, 3),
        "bucket_s": round(bucket_e2e, 3),
        "speedup": round(heap_e2e / bucket_e2e, 2),
    }

    # ---- fast-profile run vs. the recorded seed baseline ---------------
    if not args.quick:
        from repro.experiments.profiles import FAST, base_trace

        fast_trace = base_trace(FAST)
        fast_config = SimulationConfig(
            neighborhood_size=FAST.neighborhood_size(1_000),
            warmup_days=FAST.warmup_days,
        )
        fast_s = best_of(lambda: run_simulation(fast_trace, fast_config),
                         repeats=2)
        report["fast_profile_run"] = {
            "bucket_s": round(fast_s, 2),
            "seed_s": SEED_REFERENCE["fast_profile_run_s"],
            "speedup_vs_seed": round(
                SEED_REFERENCE["fast_profile_run_s"] / fast_s, 2
            ),
        }

    # ---- sweep (serial vs. workers) -----------------------------------
    configs = [
        SimulationConfig(neighborhood_size=60, warmup_days=0.5, strategy=spec)
        for spec in (LFUSpec(), LRUSpec())
    ]
    serial_s = best_of(lambda: run_many(model, configs, workers=1), repeats=1)
    parallel_s = best_of(
        lambda: run_many(model, configs, workers=args.workers), repeats=1
    )
    report["sweep"] = {
        "configs": len(configs),
        "workers": args.workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "note": (
            "parallel speedup requires >= workers physical CPUs; "
            "with cpu_count=1 this measures multiprocessing overhead only"
        ),
    }

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
