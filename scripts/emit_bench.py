#!/usr/bin/env python
"""Measure the simulation core and emit ``BENCH_micro.json``.

Tracks the perf trajectory of the hot paths the engine and cache PRs
rebuilt:

* event-engine throughput -- the segment workload as a legacy heap
  chain vs. as session arcs on the calendar queue;
* hourly-meter throughput -- hour-spanning vs. single-bucket intervals;
* trace pipeline -- ``generate_trace`` on the python and (when
  importable) numpy backends, plus the sweep-worker share hand-off
  (column-file publish and worker attach, the cost that replaces a
  worker-side regeneration);
* cache-path throughput -- windowed-LFU membership decisions and the
  index server's full request/fill path, both on the policy engine
  (PR 2), compared against the recorded PR-1 classic-path baseline;
* end-to-end replay -- one full system run on each engine path (heap,
  bucket, and -- when numpy is importable -- columnar), with drain
  throughput reported as events/s per engine;
* sweep wall-clock -- the same config sweep serial vs. multi-worker
  (with the worker count and CPU count recorded, since a single-CPU
  host cannot show parallel speedup);
* peak RSS -- materialized monolithic replay vs. streamed sharded
  replay of the same workload, each probed in its own interpreter
  (``resource.getrusage`` reports a process-lifetime high-water mark,
  so probes cannot share a process), plus -- under ``--metro`` -- a
  million-user paper-catalog streamed metro replay whose bounded
  footprint is the point of the streaming pipeline.

Usage::

    python scripts/emit_bench.py [--quick] [--workers N] [--output PATH]
                                 [--metro] [--metro-users N]

Run it from the repository root (or with ``src`` on ``PYTHONPATH``).
``scripts/bench_trend.py`` appends the emitted report to
``BENCH_history.jsonl`` and gates CI on end-to-end regressions.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import units  # noqa: E402
from repro.cache.base import StrategyContext  # noqa: E402
from repro.cache.factory import BuildInputs, LFUSpec, LRUSpec  # noqa: E402
from repro.cache.index_server import IndexServer  # noqa: E402
from repro.cache.segments import (  # noqa: E402
    PlacementMap,
    cache_footprint_bytes,
    segment_bytes,
)
from repro.core.config import SimulationConfig  # noqa: E402
from repro.core.meter import HourlyMeter  # noqa: E402
from repro.core.parallel import run_many  # noqa: E402
from repro.core.runner import run_simulation  # noqa: E402
from repro.core.system import columnar_supported  # noqa: E402
from repro.peers.settop import SetTopBox  # noqa: E402
from repro.sim.engine import Simulator  # noqa: E402
from repro.topology.hfc import Neighborhood  # noqa: E402
from repro.trace.records import Catalog, Program  # noqa: E402
from repro.trace.synthetic import PowerInfoModel, generate_trace  # noqa: E402


#: Baseline measured at the seed commit (e80c5fd) on the PR-1 host
#: (1 CPU, Python 3.11): the same fast-profile run (`base_trace(FAST)`,
#: 1000-peer nominal neighborhoods, LFU) before the engine rebuild.
#: Kept in the report so the perf trajectory has its starting point.
SEED_REFERENCE = {
    "commit": "e80c5fd",
    "fast_profile_run_s": 7.49,
    "note": (
        "pre-rebuild wall clock (best of 3) for one fast-profile "
        "simulation run; the same run and seed produced bit-identical "
        "counters and meter buckets after the rebuild"
    ),
}

#: Cache-path baseline measured at the PR-1 commit (b2e1956): identical
#: workloads driven through the classic push-on-change LFU and the
#: pre-batching index server.  Measured *interleaved* with the PR-2
#: code (alternating processes, median of 4 best-of-3 runs) because
#: this container's absolute wall clock drifts ~1.5x between phases --
#: only same-phase A/B numbers are comparable.  The policy-engine
#: equivalence suite proves the refactored path makes the same
#: decisions; this records how much faster it makes them (PR 2:
#: index_requests ~1.34x, end_to_end ~1.11x, lfu_decisions at parity
#: with heap memory bounded O(members) instead of O(accesses)).
PR1_CACHE_REFERENCE = {
    "commit": "b2e1956",
    "lfu_decisions_s": 0.1296,
    "index_requests_s": 0.0930,
    "end_to_end_s": 0.484,
    "note": (
        "median-of-4 interleaved best-of-3 wall clocks: 40k LFU(2h) "
        "membership decisions over 400 programs (3/4 of accesses to a "
        "resident 40-program head, the simulator's steady-state shape), "
        "40k index-server segment requests (50 peers, 60 programs) "
        "including session starts and fills, and one 1500-user/6-day "
        "replay (the end_to_end section's workload)"
    ),
}


#: Child-interpreter scaffold for the RSS probes.  The body must define
#: ``run() -> dict``; the scaffold times it and reports the process
#: peak RSS (self + pool children, KB on Linux) as one JSON line.
_PROBE_TEMPLATE = """\
import json, resource, sys, time
sys.path.insert(0, {src_path!r})
{body}
started = time.perf_counter()
extra = run()
wall = time.perf_counter() - started
self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(json.dumps(dict(extra, wall_s=round(wall, 3),
                      peak_rss_mb=round(max(self_kb, child_kb) / 1024.0, 1))))
"""


def rss_probe(body: str) -> dict:
    """Run one workload in a fresh interpreter; return its RSS report.

    ``ru_maxrss`` is a lifetime high-water mark, so a probe that shared
    this process would inherit every earlier section's footprint; a
    fresh child measures only its own workload.  ``RUSAGE_CHILDREN``
    folds in pool workers (their RSS peaks after they exit, which is
    when the kernel rolls them into the parent's children counter).
    """
    import subprocess

    src = str(Path(__file__).resolve().parent.parent / "src")
    code = _PROBE_TEMPLATE.format(src_path=src, body=body)
    proc = subprocess.run([sys.executable, "-c", code],
                          capture_output=True, text=True, check=True)
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _memory_bodies(quick: bool, users: int, days: float):
    """The materialized-vs-streamed probe bodies for the memory section.

    Full mode probes the fast experiment profile (the suite's standard
    operating point); quick mode reuses the small end-to-end model so
    CI stays fast.  Both compare one monolithic materialized bucket
    replay against the same workload streamed through sharded replay.
    """
    if quick:
        prologue = (
            "from repro.core.config import SimulationConfig\n"
            "from repro.trace.synthetic import PowerInfoModel\n"
            f"model = PowerInfoModel(n_users={users}, "
            f"n_programs={users // 5}, days={days}, seed=5)\n"
            "config = SimulationConfig(neighborhood_size=60, "
            "warmup_days=0.5)\n"
        )
        n_shards = 2
    else:
        prologue = (
            "from repro.core.config import SimulationConfig\n"
            "from repro.experiments.profiles import FAST\n"
            "model = FAST.model()\n"
            "config = SimulationConfig("
            "neighborhood_size=FAST.neighborhood_size(1_000), "
            "warmup_days=FAST.warmup_days)\n"
        )
        n_shards = 4
    materialized = prologue + (
        "def run():\n"
        "    from repro.core.runner import run_simulation\n"
        "    from repro.trace.synthetic import generate_trace\n"
        "    trace = generate_trace(model)\n"
        "    result = run_simulation(trace, config, engine='bucket')\n"
        "    return {'sessions': result.counters.sessions}\n"
    )
    streamed = prologue + (
        "def run():\n"
        "    from repro.core.shard import run_sharded\n"
        f"    result = run_sharded(model, config, n_shards={n_shards}, "
        "streaming=True, workers=1)\n"
        "    return {'sessions': result.counters.sessions}\n"
    )
    return materialized, streamed, n_shards


def _metro_body(users: int, programs: int, days: float,
                neighborhood_size: int, shards: int, workers: int,
                chunk_hours: int) -> str:
    """The metro probe: streamed sharded replay, never a full trace."""
    return (
        "from repro.core.config import SimulationConfig\n"
        "from repro.core.shard import run_sharded\n"
        "from repro.trace.synthetic import PowerInfoModel\n"
        f"model = PowerInfoModel(n_users={users}, n_programs={programs}, "
        f"days={days}, seed=7)\n"
        f"config = SimulationConfig(neighborhood_size={neighborhood_size}, "
        "warmup_days=0.5)\n"
        "def run():\n"
        f"    result = run_sharded(model, config, n_shards={shards}, "
        f"streaming=True, workers={workers}, chunk_hours={chunk_hours})\n"
        "    return {'sessions': result.counters.sessions,\n"
        "            'events': result.events_processed,\n"
        "            'peak_server_gbps': "
        "round(result.peak_server_gbps(), 3)}\n"
    )


def _cpu_model() -> str:
    """Host CPU model, so trend baselines compare like with like."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def best_of(fn, repeats: int = 3) -> float:
    """Minimum wall-clock of ``repeats`` runs (noise-resistant)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def engine_heap_chain(sessions: int, segments: int) -> int:
    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.after(300.0, chain, remaining - 1)

    for i in range(sessions):
        sim.at(float(i), chain, segments)
    sim.run()
    return sim.events_processed


def engine_arcs(sessions: int, segments: int) -> int:
    sim = Simulator()

    def step(now, index):
        return index < segments

    for i in range(sessions):
        sim.start_arc(300.0 + float(i), step)
    sim.run()
    return sim.events_processed


def _default_lfu(history_hours: float = 2.0):
    """One default-build LFU strategy (the policy-engine path)."""
    spec = LFUSpec(history_hours=history_hours)
    return spec.build(BuildInputs(n_neighborhoods=1)).strategies[0]


def cache_lfu_decisions(n_accesses: int, n_programs: int = 400) -> None:
    """Drive a deterministic stream of membership decisions.

    Three quarters of accesses go to a 40-program hot head that stays
    resident (member touches -- the simulator's steady-state shape at
    its ~60-70% hit ratios); the rest scan the cold tail and exercise
    the plan/eviction path.
    """
    strategy = _default_lfu()
    strategy.bind(StrategyContext(
        neighborhood_id=0,
        capacity_bytes=100.0 * (n_programs // 8),
        footprint_of=lambda pid: 100.0,
    ))
    on_access = strategy.on_access
    t = 0.0
    for i in range(n_accesses):
        t += 37.0
        if i % 4:
            pid = (i * i) % 40
        else:
            pid = 40 + (i * 7 + i // 11) % (n_programs - 40)
        on_access(t, pid)


def cache_index_requests(n_requests: int, n_users: int = 50,
                         n_programs: int = 60) -> None:
    """The full request/fill path through one index server."""
    catalog = Catalog([
        Program(i, units.SEGMENT_SECONDS * (3 + i % 5))
        for i in range(n_programs)
    ])
    neighborhood = Neighborhood(0, tuple(range(n_users)))
    boxes = {
        uid: SetTopBox(uid, storage_bytes=20 * segment_bytes())
        for uid in neighborhood.user_ids
    }
    placement = PlacementMap(list(boxes.values()))
    strategy = _default_lfu()
    initial = strategy.bind(StrategyContext(
        neighborhood_id=0,
        capacity_bytes=n_users * 20 * segment_bytes(),
        footprint_of=lambda pid: cache_footprint_bytes(catalog[pid]),
    ))
    server = IndexServer(neighborhood, boxes, strategy, placement, catalog)
    server.apply_initial_membership(initial)
    t = 0.0
    for i in range(n_requests):
        t += 41.0
        uid = (i * 7 + 3) % n_users
        pid = (i * i + i // 5) % n_programs
        if i % 3 == 0:
            server.on_session_start(t, uid, pid)
        server.request_segment(t, uid, pid, i % (3 + pid % 5),
                               units.SEGMENT_SECONDS)


def meter_spanning(n: int) -> None:
    meter = HourlyMeter()
    for i in range(n):
        meter.add_interval(i * 97.0, 300.0, rate_bps=8.06e6)


def meter_single_bucket(n: int) -> None:
    meter = HourlyMeter()
    for i in range(n):
        meter.add_interval((i % 11) * 300.0, 300.0, rate_bps=8.06e6)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI-friendly)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker count for the sweep measurement")
    parser.add_argument("--output", default="BENCH_micro.json",
                        help="where to write the JSON report")
    parser.add_argument("--metro", action="store_true",
                        help="run the million-user streamed metro replay "
                             "(minutes of wall time; RSS stays bounded)")
    parser.add_argument("--metro-users", type=int, default=1_000_000,
                        help="metro subscriber count (default 1,000,000)")
    parser.add_argument("--metro-programs", type=int, default=8_278,
                        help="metro catalog size (default: the paper's "
                             "8,278-program PowerInfo catalog)")
    parser.add_argument("--metro-days", type=float, default=2.0,
                        help="metro trace window in days (default 2.0)")
    parser.add_argument("--metro-shards", type=int, default=8,
                        help="neighborhood groups for the metro replay")
    parser.add_argument("--metro-ab", action="store_true",
                        help="also replay the metro workload materialized "
                             "and monolithic (the A/B the streamed numbers "
                             "are compared against; gigabytes of RSS)")
    args = parser.parse_args()

    sessions, segments = (10, 500) if args.quick else (20, 1_000)
    meter_n = 20_000 if args.quick else 50_000
    users, days = (300, 2.0) if args.quick else (1_500, 6.0)

    report: dict = {
        "generated_unix": int(time.time()),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "cpu_model": _cpu_model(),
        "quick": args.quick,
        "seed_reference": SEED_REFERENCE,
    }

    # ---- event engine --------------------------------------------------
    events = sessions * (segments + 1)
    heap_s = best_of(lambda: engine_heap_chain(sessions, segments), repeats=7)
    arc_s = best_of(lambda: engine_arcs(sessions, segments), repeats=7)
    report["engine"] = {
        "events": events,
        "heap_chain_s": round(heap_s, 4),
        "arc_bucket_s": round(arc_s, 4),
        "heap_events_per_s": round(events / heap_s),
        "arc_events_per_s": round(events / arc_s),
        "speedup": round(heap_s / arc_s, 2),
    }

    # ---- meter ---------------------------------------------------------
    span_s = best_of(lambda: meter_spanning(meter_n))
    single_s = best_of(lambda: meter_single_bucket(meter_n))
    report["meter"] = {
        "intervals": meter_n,
        "hour_spanning_s": round(span_s, 4),
        "single_bucket_s": round(single_s, 4),
        "single_bucket_intervals_per_s": round(meter_n / single_s),
    }

    # ---- trace pipeline ------------------------------------------------
    # Generator backends on one mid-size model, plus the sweep-worker
    # share hand-off (publish once, attach per worker).  Attach wall
    # time is what replaces a worker-side regeneration.
    from repro.trace.share import attach_trace, publish_trace, unlink_trace
    from repro.trace.synthetic import numpy_available

    trace_model = PowerInfoModel(n_users=users, n_programs=users // 5,
                                 days=days, seed=5)
    python_gen_s = best_of(
        lambda: generate_trace(trace_model, backend="python"), repeats=2
    )
    bench_trace = generate_trace(trace_model, backend="python")
    report["trace"] = {
        "records": len(bench_trace),
        "generate_python_s": round(python_gen_s, 4),
        "generate_python_records_per_s": round(len(bench_trace) / python_gen_s),
    }
    if numpy_available():
        numpy_gen_s = best_of(
            lambda: generate_trace(trace_model, backend="numpy"), repeats=2
        )
        # The backends draw independent streams, so their record counts
        # differ by Poisson noise; throughput needs its own numerator.
        numpy_records = len(generate_trace(trace_model, backend="numpy"))
        report["trace"]["generate_numpy_s"] = round(numpy_gen_s, 4)
        report["trace"]["generate_numpy_records"] = numpy_records
        report["trace"]["generate_numpy_records_per_s"] = round(
            numpy_records / numpy_gen_s
        )
        report["trace"]["numpy_speedup"] = round(python_gen_s / numpy_gen_s, 2)
    handle = publish_trace(bench_trace)
    published = []
    try:
        # Unlinking happens outside the timed callable so a slow
        # filesystem delete never shows up as a publish regression in
        # the trend history.
        publish_s = best_of(
            lambda: published.append(publish_trace(bench_trace)), repeats=2
        )
        attach_s = best_of(lambda: attach_trace(handle), repeats=2)
    finally:
        for extra in published:
            unlink_trace(extra)
        unlink_trace(handle)
    report["trace"]["share_publish_s"] = round(publish_s, 4)
    report["trace"]["share_attach_s"] = round(attach_s, 4)
    # Named per backend: what a worker's fallback actually costs
    # depends on which generator it would resolve to.
    report["trace"]["attach_speedup_vs_python_regen"] = round(
        python_gen_s / attach_s, 2
    )
    if numpy_available():
        report["trace"]["attach_speedup_vs_numpy_regen"] = round(
            numpy_gen_s / attach_s, 2
        )

    # ---- cache path ----------------------------------------------------
    cache_n = 10_000 if args.quick else 40_000
    lfu_s = best_of(lambda: cache_lfu_decisions(cache_n))
    requests_s = best_of(lambda: cache_index_requests(cache_n))
    report["cache"] = {
        "accesses": cache_n,
        "lfu_decisions_s": round(lfu_s, 4),
        "index_requests_s": round(requests_s, 4),
        "lfu_decisions_per_s": round(cache_n / lfu_s),
        "index_requests_per_s": round(cache_n / requests_s),
        "pr1_reference": PR1_CACHE_REFERENCE,
    }
    if not args.quick:
        # The reference was measured at the full workload size only.
        # Same-phase caveat applies (see PR1_CACHE_REFERENCE note): on a
        # drifting host these ratios are only indicative; the recorded
        # interleaved A/B medians are the trustworthy comparison.
        report["cache"]["speedup_vs_pr1"] = {
            "lfu_decisions": round(
                PR1_CACHE_REFERENCE["lfu_decisions_s"] / lfu_s, 2
            ),
            "index_requests": round(
                PR1_CACHE_REFERENCE["index_requests_s"] / requests_s, 2
            ),
        }

    # ---- end-to-end replay --------------------------------------------
    model = PowerInfoModel(n_users=users, n_programs=users // 5, days=days,
                           seed=5)
    trace = generate_trace(model)
    config = SimulationConfig(neighborhood_size=60, warmup_days=0.5)
    heap_e2e = best_of(lambda: run_simulation(trace, config, engine="heap"),
                       repeats=2)
    bucket_e2e = best_of(lambda: run_simulation(trace, config, engine="bucket"),
                         repeats=2)
    # Drain throughput: all three engines process the identical event
    # stream (the equivalence suite pins bit-identity), so events/s is
    # directly comparable across them.
    drain_events = run_simulation(trace, config, engine="bucket").events_processed
    report["end_to_end"] = {
        "users": users,
        "days": days,
        "events": drain_events,
        "heap_s": round(heap_e2e, 3),
        "bucket_s": round(bucket_e2e, 3),
        "heap_events_per_s": round(drain_events / heap_e2e),
        "bucket_events_per_s": round(drain_events / bucket_e2e),
        "speedup": round(heap_e2e / bucket_e2e, 2),
    }
    if columnar_supported():
        columnar_e2e = best_of(
            lambda: run_simulation(trace, config, engine="columnar"), repeats=2
        )
        report["end_to_end"]["columnar_s"] = round(columnar_e2e, 3)
        report["end_to_end"]["columnar_events_per_s"] = round(
            drain_events / columnar_e2e
        )
        report["end_to_end"]["columnar_speedup_vs_bucket"] = round(
            bucket_e2e / columnar_e2e, 2
        )
    if not args.quick:
        # Same workload (1500 users / 6 days / seed 5) as the recorded
        # PR-1 interleaved baseline.
        report["end_to_end"]["pr1_bucket_s"] = PR1_CACHE_REFERENCE["end_to_end_s"]
        report["end_to_end"]["speedup_vs_pr1"] = round(
            PR1_CACHE_REFERENCE["end_to_end_s"] / bucket_e2e, 2
        )

    # ---- live headend drain -------------------------------------------
    # The online serving mode (PR 8): the same replay behind the
    # admission layer.  The no-op drain prices the wrapper itself
    # (bit-identical results; tests/live/test_live_equivalence.py), the
    # active drain prices a real throttle+fairness policy on an
    # abusive-user workload and records its verdict mix.
    from repro.live import AdmissionController, FairnessSpec, ThrottleSpec

    def live_noop():
        from repro.core.system import CableVoDSystem

        controller = AdmissionController(throttle=ThrottleSpec(),
                                         fairness=FairnessSpec())
        return CableVoDSystem(trace, config).run_live(controller)

    abusive_model = PowerInfoModel(n_users=users, n_programs=users // 5,
                                   days=days, seed=5, abusive_fraction=0.1,
                                   abusive_rate_x=6.0)
    abusive_trace = generate_trace(abusive_model)

    def live_active():
        from repro.core.system import CableVoDSystem

        controller = AdmissionController(
            throttle=ThrottleSpec(user_budget=4,
                                  user_window_seconds=86400.0),
            fairness=FairnessSpec(lead_seconds=14400.0, fill_weight=2.0),
        )
        return CableVoDSystem(abusive_trace, config).run_live(controller)

    noop_s = best_of(live_noop, repeats=2)
    active_s = best_of(live_active, repeats=2)
    active_report = live_active().live
    report["live"] = {
        "users": users,
        "days": days,
        "noop_drain_s": round(noop_s, 3),
        "noop_events_per_s": round(drain_events / noop_s),
        "noop_overhead_vs_bucket": round(noop_s / bucket_e2e, 3),
        "active_drain_s": round(active_s, 3),
        "active_requests_per_s": round(
            (active_report.admitted + active_report.denied
             + active_report.deferrals) / active_s),
        "admitted": active_report.admitted,
        "denied": active_report.denied,
        "deferrals": active_report.deferrals,
        "note": (
            "noop = all-default specs on the end_to_end trace "
            "(bit-identical to the bucket engine; the ratio prices the "
            "admission wrapper); active = throttle(4/24h) + "
            "vtc(lead 4h, fill_weight 2) on the same-size workload with "
            "10% abusive users at 6x request rate"
        ),
    }

    # ---- fast-profile run vs. the recorded seed baseline ---------------
    if not args.quick:
        from repro.experiments.profiles import FAST, base_trace

        fast_trace = base_trace(FAST)
        fast_config = SimulationConfig(
            neighborhood_size=FAST.neighborhood_size(1_000),
            warmup_days=FAST.warmup_days,
        )
        fast_s = best_of(
            lambda: run_simulation(fast_trace, fast_config, engine="bucket"),
            repeats=2,
        )
        report["fast_profile_run"] = {
            "bucket_s": round(fast_s, 2),
            "seed_s": SEED_REFERENCE["fast_profile_run_s"],
            "speedup_vs_seed": round(
                SEED_REFERENCE["fast_profile_run_s"] / fast_s, 2
            ),
        }
        if columnar_supported():
            fast_columnar_s = best_of(
                lambda: run_simulation(fast_trace, fast_config,
                                       engine="columnar"),
                repeats=2,
            )
            report["fast_profile_run"]["columnar_s"] = round(fast_columnar_s, 2)
            report["fast_profile_run"]["columnar_speedup_vs_bucket"] = round(
                fast_s / fast_columnar_s, 2
            )
            report["fast_profile_run"]["columnar_speedup_vs_seed"] = round(
                SEED_REFERENCE["fast_profile_run_s"] / fast_columnar_s, 2
            )

    # ---- sweep (serial vs. workers) -----------------------------------
    configs = [
        SimulationConfig(neighborhood_size=60, warmup_days=0.5, strategy=spec)
        for spec in (LFUSpec(), LRUSpec())
    ]
    serial_s = best_of(lambda: run_many(model, configs, workers=1), repeats=1)
    parallel_s = best_of(
        lambda: run_many(model, configs, workers=args.workers), repeats=1
    )
    report["sweep"] = {
        "configs": len(configs),
        "workers": args.workers,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 2),
        "note": (
            "parallel speedup requires >= workers physical CPUs; "
            "with cpu_count=1 this measures multiprocessing overhead only"
        ),
    }

    # ---- peak RSS: materialized vs. streamed ---------------------------
    # Fresh interpreter per probe (see rss_probe); the streamed number
    # is the one the streaming pipeline exists to bound.
    materialized_body, streamed_body, mem_shards = _memory_bodies(
        args.quick, users, days)
    materialized_probe = rss_probe(materialized_body)
    streamed_probe = rss_probe(streamed_body)
    report["memory"] = {
        "workload": "quick-e2e" if args.quick else "fast-profile",
        "shards": mem_shards,
        "sessions": streamed_probe["sessions"],
        "materialized_peak_rss_mb": materialized_probe["peak_rss_mb"],
        "materialized_wall_s": materialized_probe["wall_s"],
        "streamed_peak_rss_mb": streamed_probe["peak_rss_mb"],
        "streamed_wall_s": streamed_probe["wall_s"],
        "note": (
            "peak RSS (ru_maxrss, self+children) of one replay in a "
            "fresh interpreter: monolithic on the materialized trace "
            "vs. sharded streaming replay of the identical workload "
            "(bit-identical results; the equivalence suite pins it)"
        ),
    }

    # ---- metro: million-user streamed replay ---------------------------
    if args.metro:
        metro_size = 1_000
        metro_chunk_hours = 6
        metro_probe = rss_probe(_metro_body(
            args.metro_users, args.metro_programs, args.metro_days,
            metro_size, args.metro_shards, args.workers,
            metro_chunk_hours))
        report["metro"] = {
            "users": args.metro_users,
            "programs": args.metro_programs,
            "days": args.metro_days,
            "neighborhood_size": metro_size,
            "shards": args.metro_shards,
            "workers": args.workers,
            "chunk_hours": metro_chunk_hours,
            "sessions": metro_probe["sessions"],
            "events": metro_probe["events"],
            "peak_server_gbps": metro_probe["peak_server_gbps"],
            "wall_s": metro_probe["wall_s"],
            "events_per_s": round(metro_probe["events"]
                                  / metro_probe["wall_s"]),
            "peak_rss_mb": metro_probe["peak_rss_mb"],
            "note": (
                "streamed sharded replay; the full trace never exists "
                "-- each shard worker holds one generation chunk of "
                "session columns at a time"
            ),
        }
        if args.metro_ab:
            ab_probe = rss_probe(
                "from repro.core.config import SimulationConfig\n"
                "from repro.trace.synthetic import PowerInfoModel\n"
                f"model = PowerInfoModel(n_users={args.metro_users}, "
                f"n_programs={args.metro_programs}, "
                f"days={args.metro_days}, seed=7)\n"
                f"config = SimulationConfig("
                f"neighborhood_size={metro_size}, warmup_days=0.5)\n"
                "def run():\n"
                "    from repro.core.runner import run_simulation\n"
                "    from repro.trace.synthetic import generate_trace\n"
                "    trace = generate_trace(model)\n"
                "    result = run_simulation(trace, config, "
                "engine='bucket')\n"
                "    return {'sessions': result.counters.sessions,\n"
                "            'events': result.events_processed}\n")
            # Session/event counts must agree exactly -- the streamed
            # sharded replay is the same workload, not an approximation.
            report["metro"]["materialized"] = {
                "sessions": ab_probe["sessions"],
                "events": ab_probe["events"],
                "wall_s": ab_probe["wall_s"],
                "peak_rss_mb": ab_probe["peak_rss_mb"],
                "rss_ratio_vs_streamed": round(
                    ab_probe["peak_rss_mb"]
                    / metro_probe["peak_rss_mb"], 2),
            }

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
