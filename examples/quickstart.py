#!/usr/bin/env python3
"""Quickstart: cache a synthetic VoD workload and measure the saving.

Builds a :class:`repro.Scenario` -- the declarative unit every run in
this library shares -- for a small PowerInfo-like workload under the
paper's default configuration (LFU strategy, 10 GB per peer), runs it
next to the no-cache baseline, and prints the peak server load saving:
a miniature of the paper's headline Fig 8 result.

The same scenario serialized to JSON (``scenario.to_json()``) runs
through the CLI: ``repro-vod run examples/scenarios/quickstart.json``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    LFUSpec,
    NoCacheSpec,
    PowerInfoModel,
    Scenario,
    SimulationConfig,
    run_scenario,
)

#: A scaled-down PowerInfo deployment: ~2,000 subscribers, ~400-program
#: catalog, ten simulated days.  See repro.experiments.profiles for how
#: the library preserves the paper's geometry at reduced scale.
MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=42)

SCENARIO = Scenario(
    trace=MODEL,
    config=SimulationConfig(
        neighborhood_size=200,       # subscribers per coax segment
        per_peer_storage_gb=10.0,    # each set-top box contributes 10 GB
        strategy=LFUSpec(),          # 3-day-history LFU at each headend
        warmup_days=4.0,             # exclude the cold-cache prefix
    ),
    label="quickstart",
)


def main() -> None:
    print("running the cooperative cache...")
    cached = run_scenario(SCENARIO)
    print("running the no-cache baseline...")
    baseline_config = SCENARIO.config.with_strategy(NoCacheSpec())
    baseline = run_scenario(
        Scenario(trace=MODEL, config=baseline_config, label="no-cache")
    )

    print()
    print(cached.summary())
    print()
    print(f"baseline peak (simulated) : {baseline.peak_server_gbps():.2f} Gb/s")
    print(f"cached peak               : {cached.peak_server_gbps():.2f} Gb/s")
    print(f"server load reduction     : {cached.peak_reduction():.0%}")


if __name__ == "__main__":
    main()
