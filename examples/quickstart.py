#!/usr/bin/env python3
"""Quickstart: cache a synthetic VoD workload and measure the saving.

Generates a small PowerInfo-like workload, runs the cooperative set-top
cache with the paper's default configuration (LFU strategy, 10 GB per
peer), and prints the peak server load against the no-cache baseline --
a miniature of the paper's headline Fig 8 result.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    LFUSpec,
    NoCacheSpec,
    PowerInfoModel,
    SimulationConfig,
    generate_trace,
    run_simulation,
)

#: A scaled-down PowerInfo deployment: ~2,000 subscribers, ~400-program
#: catalog, ten simulated days.  See repro.experiments.profiles for how
#: the library preserves the paper's geometry at reduced scale.
MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=42)


def main() -> None:
    print("generating workload...")
    trace = generate_trace(MODEL)
    print(f"  {len(trace):,} sessions from {trace.n_users:,} subscribers "
          f"over {trace.span_days:.1f} days\n")

    config = SimulationConfig(
        neighborhood_size=200,       # subscribers per coax segment
        per_peer_storage_gb=10.0,    # each set-top box contributes 10 GB
        strategy=LFUSpec(),          # 3-day-history LFU at each headend
        warmup_days=4.0,             # exclude the cold-cache prefix
    )

    print("running the cooperative cache...")
    cached = run_simulation(trace, config)
    print("running the no-cache baseline...")
    baseline = run_simulation(trace, config.with_strategy(NoCacheSpec()))

    print()
    print(cached.summary())
    print()
    print(f"baseline peak (simulated) : {baseline.peak_server_gbps():.2f} Gb/s")
    print(f"cached peak               : {cached.peak_server_gbps():.2f} Gb/s")
    print(f"server load reduction     : {cached.peak_reduction():.0%}")


if __name__ == "__main__":
    main()
