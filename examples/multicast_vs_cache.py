#!/usr/bin/env python3
"""Reproduce the paper's 'why not multicast' argument (section IV-A).

Measures, on one synthetic PowerInfo-like workload:

1. popularity skew -- peak concurrent interest outside the head program
   is too thin to build multicast trees (Fig 2);
2. mid-stream attrition -- most sessions abandon within minutes (Fig 3);
3. the server-bandwidth bound a generous batching+patching multicast
   could achieve, versus what the cooperative set-top cache achieves.

Run with::

    python examples/multicast_vs_cache.py
"""

from __future__ import annotations

from repro import LFUSpec, PowerInfoModel, SimulationConfig, generate_trace, run_simulation
from repro.analysis.multicast import why_not_multicast

MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=21)


def main() -> None:
    trace = generate_trace(MODEL)
    case = why_not_multicast(trace)
    print(case.summary())

    config = SimulationConfig(
        neighborhood_size=200,
        per_peer_storage_gb=10.0,
        strategy=LFUSpec(),
        warmup_days=4.0,
    )
    cached = run_simulation(trace, config)

    print()
    print("server-bandwidth savings on the same workload:")
    print(f"  batching+patching multicast : "
          f"{case.multicast.savings_fraction:.0%}")
    print(f"  cooperative set-top cache   : {cached.peak_reduction():.0%} "
          f"(hit ratio {cached.counters.hit_ratio:.0%})")
    print()
    group_sizes = case.multicast.group_size_distribution()
    singles = group_sizes.get(1, 0)
    print(f"multicast stream groups: {len(case.multicast.groups):,} total, "
          f"{singles:,} never shared ({case.multicast.fraction_singleton_groups:.0%})")


if __name__ == "__main__":
    main()
