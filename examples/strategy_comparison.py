#!/usr/bin/env python3
"""Compare every caching strategy the paper evaluates on one workload.

One declarative :class:`repro.Sweep` does what a hand-written loop used
to: a strategy axis over a shared base scenario, executed with one
generated trace and (on multi-core hosts) parallel workers.  Runs LRU,
windowed LFU (several histories), global LFU with propagation lag, the
impossible Oracle, and the no-cache baseline on an identical trace and
deployment -- a compact tour of the section VI-A design space.

``SWEEP.to_json()`` is a ready-made scenario file for ``repro-vod
sweep``; ``repro-vod describe fig08`` prints the real figures in the
same schema.

Run with::

    python examples/strategy_comparison.py
"""

from __future__ import annotations

from repro import PowerInfoModel, Scenario, Sweep, SimulationConfig, run_sweep

MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=13)

SWEEP = Sweep(
    base=Scenario(
        trace=MODEL,
        config=SimulationConfig(
            neighborhood_size=200,
            per_peer_storage_gb=4.0,
            warmup_days=4.0,
        ),
        label="strategy-comparison",
    ),
    sweep_id="strategy-comparison",
    title="Every paper strategy, one workload",
    axes={
        # Registry names with parameters -- the same strings the CLI
        # and scenario files accept.
        "config.strategy": [
            "none",
            "lru",
            "lfu:24",
            "lfu:72",
            "lfu:168",
            "global-lfu",
            "global-lfu:lag_seconds=1800",
            "oracle",
        ],
    },
)


def main() -> None:
    print(f"workload: {MODEL.n_users:,} users, {MODEL.n_programs} programs, "
          f"{MODEL.days:g} days\n")
    rows = run_sweep(SWEEP)
    print(f"{'strategy':<26} {'server Gb/s':>11} {'reduction':>9} "
          f"{'hit ratio':>9}")
    for row in rows:
        print(f"{row['strategy']:<26} {row['server_gbps']:>11.3f} "
              f"{row['reduction_pct'] / 100:>9.0%} "
              f"{row['hit_pct'] / 100:>9.0%}")

    print("\nExpected ordering (paper section VI-A): oracle best, "
          "LFU >= LRU, global knowledge a small extra win.")


if __name__ == "__main__":
    main()
