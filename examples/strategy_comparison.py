#!/usr/bin/env python3
"""Compare every caching strategy the paper evaluates on one workload.

Runs LRU, windowed LFU (several histories), global LFU with propagation
lag, the impossible Oracle, and the no-cache baseline on an identical
trace and deployment, printing the paper's headline metrics side by
side.  A compact tour of the section VI-A design space.

Run with::

    python examples/strategy_comparison.py
"""

from __future__ import annotations

from repro import (
    GlobalLFUSpec,
    LFUSpec,
    LRUSpec,
    NoCacheSpec,
    OracleSpec,
    PowerInfoModel,
    SimulationConfig,
    generate_trace,
    run_simulation,
)

MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=13)

STRATEGIES = (
    NoCacheSpec(),
    LRUSpec(),
    LFUSpec(history_hours=24.0),
    LFUSpec(history_hours=72.0),
    LFUSpec(history_hours=168.0),
    GlobalLFUSpec(lag_seconds=0.0),
    GlobalLFUSpec(lag_seconds=1_800.0),
    OracleSpec(),
)


def main() -> None:
    trace = generate_trace(MODEL)
    print(f"workload: {len(trace):,} sessions over {trace.span_days:.1f} days\n")
    print(f"{'strategy':<26} {'server Gb/s':>11} {'reduction':>9} "
          f"{'hit ratio':>9} {'evictions':>9}")

    for spec in STRATEGIES:
        config = SimulationConfig(
            neighborhood_size=200,
            per_peer_storage_gb=4.0,
            strategy=spec,
            warmup_days=4.0,
        )
        result = run_simulation(trace, config)
        print(f"{spec.label:<26} {result.peak_server_gbps():>11.3f} "
              f"{result.peak_reduction():>9.0%} "
              f"{result.counters.hit_ratio:>9.0%} "
              f"{result.counters.evictions:>9}")

    print("\nExpected ordering (paper section VI-A): oracle best, "
          "LFU >= LRU, global knowledge a small extra win.")


if __name__ == "__main__":
    main()
