#!/usr/bin/env python3
"""Capacity planning: how much set-top disk does a cable operator need?

The question the paper answers for operators: given a neighborhood size
and a server-bandwidth budget, how much per-peer storage must set-top
boxes contribute?  This example sweeps per-peer storage, checks coax
feasibility at every point (paper section VI-B), and reports the
smallest contribution meeting a target reduction.

Run with::

    python examples/capacity_planning.py
"""

from __future__ import annotations

from repro import LFUSpec, PowerInfoModel, SimulationConfig, generate_trace, run_simulation
from repro.analysis.feasibility import assess_feasibility

#: Operator requirement: cut peak server bandwidth by at least this much.
TARGET_REDUCTION = 0.80

MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=7)
NEIGHBORHOOD_SIZE = 200
STORAGE_SWEEP_GB = (1.0, 2.0, 4.0, 6.0, 8.0, 10.0)


def main() -> None:
    trace = generate_trace(MODEL)
    print(f"workload: {len(trace):,} sessions, {trace.n_users:,} subscribers, "
          f"{len(trace.catalog):,} programs")
    print(f"target: >= {TARGET_REDUCTION:.0%} peak server-load reduction\n")
    print(f"{'GB/peer':>8}  {'cache TB':>8}  {'server Gb/s':>11}  "
          f"{'reduction':>9}  {'coax p95 Mb/s':>13}  feasible")

    chosen = None
    for per_peer_gb in STORAGE_SWEEP_GB:
        config = SimulationConfig(
            neighborhood_size=NEIGHBORHOOD_SIZE,
            per_peer_storage_gb=per_peer_gb,
            strategy=LFUSpec(),
            warmup_days=4.0,
        )
        result = run_simulation(trace, config)
        feasibility = assess_feasibility(result)
        print(f"{per_peer_gb:8.1f}  {config.total_cache_tb():8.2f}  "
              f"{result.peak_server_gbps():11.3f}  "
              f"{result.peak_reduction():9.0%}  "
              f"{feasibility.p95_coax_mbps:13.0f}  "
              f"{'yes' if feasibility.feasible else 'NO'}")
        if chosen is None and result.peak_reduction() >= TARGET_REDUCTION \
                and feasibility.feasible:
            chosen = per_peer_gb

    print()
    if chosen is None:
        print(f"no swept contribution reaches {TARGET_REDUCTION:.0%}; "
              "grow the neighborhood or relax the target")
    else:
        print(f"recommendation: {chosen:.0f} GB per set-top box "
              f"({chosen * NEIGHBORHOOD_SIZE / 1000:.1f} TB per neighborhood)")


if __name__ == "__main__":
    main()
