#!/usr/bin/env python3
"""Workload characterization: regenerate the paper's trace figures.

Walks a synthetic PowerInfo-like trace through every section-V analysis:
popularity skew (Fig 2), session-length CDFs (Figs 3/6), program-length
inference, the diurnal profile (Fig 7), and post-introduction popularity
decay (Fig 12).  Also shows saving and reloading the trace with
``repro.trace.io``.

Run with::

    python examples/trace_analysis.py [output.csv]
"""

from __future__ import annotations

import sys

from repro import PowerInfoModel, generate_trace
from repro.trace import io as trace_io, stats
from repro import units

MODEL = PowerInfoModel(n_users=2_000, n_programs=400, days=10.0, seed=3)


def main() -> None:
    trace = generate_trace(MODEL)
    print(f"trace: {len(trace):,} sessions / {trace.n_users:,} users / "
          f"{len(trace.catalog):,} programs\n")

    # Fig 2 -- skew.
    skew = stats.popularity_timeseries(trace)
    max_peak, q99_peak, q95_peak = skew.peak_counts()
    print("popularity skew (sessions per 15-minute window):")
    print(f"  most popular program : peak {max_peak}")
    print(f"  99%-quantile program : peak {q99_peak}")
    print(f"  95%-quantile program : peak {q95_peak}\n")

    # Figs 3/6 -- attrition and length inference.
    head = trace.most_popular_program()
    attrition = stats.attrition_summary(trace, head)
    durations = [r.duration_seconds for r in trace if r.program_id == head]
    inferred = stats.infer_program_length(durations)
    true_length = trace.catalog[head].length_seconds
    print(f"head program {head}:")
    print(f"  median session        : "
          f"{attrition.median_session_seconds / 60:.1f} min")
    print(f"  pass halfway          : {attrition.fraction_past_halfway:.0%}")
    print(f"  watch to the end      : {attrition.fraction_completing:.0%}")
    print(f"  inferred length       : {inferred / 60:.0f} min "
          f"(true {true_length / 60:.0f} min)\n")

    # Fig 7 -- diurnal profile.
    rates = stats.hourly_data_rate(trace)
    print("diurnal delivered-rate profile (Mb/s):")
    for hour in range(0, 24, 4):
        bar = "#" * int(units.to_mbps(rates[hour]) / 4 + 1)
        print(f"  {hour:02d}:00  {units.to_mbps(rates[hour]):7.1f}  {bar}")
    print()

    # Fig 12 -- decay.
    try:
        curve = stats.popularity_decay(trace, max_days=7,
                                       min_first_day_sessions=5)
        print("popularity after introduction (mean sessions/day):")
        for day, value in enumerate(curve):
            print(f"  day {day}: {value:6.1f}  ({value / curve[0]:.0%} of day 0)")
    except Exception as error:  # narrow traces may lack eligible programs
        print(f"decay analysis skipped: {error}")

    if len(sys.argv) > 1:
        trace_io.dump_trace(trace, sys.argv[1])
        print(f"\ntrace written to {sys.argv[1]}")


if __name__ == "__main__":
    main()
