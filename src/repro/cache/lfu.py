"""Least-Frequently-Used cache membership with a sliding history window.

Paper section IV-B.2: "To compute the cache contents, the index server
keeps a history of all events that occur within the last N hours (where N
is a parameter to the algorithm).  It calculates the number of accesses
for each program in this history.  Items that are accessed the most
frequently are stored in the cache, with ties being resolved using an LRU
strategy."

Data structures
---------------
* :class:`WindowedCounts` -- a deque of (time, program) events plus a
  count dict; expiry drains the deque front in one batched pass and
  notifies listeners once per changed program.  This is the shared
  count source for every frequency-based policy (classic and engine).
* The eviction order inside :class:`LFUStrategy` is a *push-on-change*
  min-heap keyed ``(count, last_access, program)``: every time a member's
  key changes, the new key is pushed; stale entries are discarded on pop
  by comparing against the live dicts.  Pops therefore always return the
  true minimum -- this is an exact LFU, not an approximation.

:class:`LFUStrategy` is the *classic reference implementation*: the
default build since PR 2 is the policy engine's
:class:`~repro.cache.policies.eviction.LFUEviction` (same decisions,
proven bit-identical in :mod:`tests.cache.test_policy_engine`, with a
deferred dirty-set heap and compaction for the hot path).

``history_hours=0`` degenerates to LRU exactly as the paper states
(Fig 11): every count has expired by decision time, so ordering reduces
to the last-access tie-break.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro import units
from repro.cache.base import CacheStrategy, MembershipChange
from repro.errors import ConfigurationError


class WindowedCounts:
    """Per-program access counts over a sliding time window.

    ``window_seconds`` of 0 means counts exist only at the instant of the
    access that created them (the LRU degenerate case); ``None`` means an
    infinite window (counts never expire).
    """

    __slots__ = ("_window", "_events", "_counts", "_listeners")

    def __init__(self, window_seconds: Optional[float]) -> None:
        if window_seconds is not None and window_seconds < 0:
            raise ConfigurationError(
                f"history window must be non-negative, got {window_seconds}"
            )
        self._window = window_seconds
        self._events: Deque[Tuple[float, int]] = deque()
        self._counts: Dict[int, int] = {}
        self._listeners: List[Callable[[int], None]] = []

    def add_change_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired with the program id on every change."""
        self._listeners.append(listener)

    def _notify(self, program_id: int) -> None:
        for listener in self._listeners:
            listener(program_id)

    def record(self, now: float, program_id: int) -> None:
        """Record one access at time ``now``."""
        self._events.append((now, program_id))
        self._counts[program_id] = self._counts.get(program_id, 0) + 1
        self._notify(program_id)

    def advance(self, now: float) -> None:
        """Expire events older than the window relative to ``now``.

        Expiry is *batched*: the whole backlog up to ``now`` is drained
        in one pass and listeners are notified once per changed program
        (insertion-ordered) rather than once per expired event.  Counts
        at decision time are identical either way; batching only trims
        redundant notifications -- a program losing k events in one
        advance used to trigger k heap re-pushes downstream, k-1 of
        which were stale on arrival.
        """
        if self._window is None:
            return
        threshold = now - self._window
        events = self._events
        if not events or events[0][0] > threshold:
            return
        counts = self._counts
        changed: Dict[int, None] = {}
        while events and events[0][0] <= threshold:
            _, program_id = events.popleft()
            remaining = counts[program_id] - 1
            if remaining:
                counts[program_id] = remaining
            else:
                del counts[program_id]
            changed[program_id] = None
        if self._listeners:
            for program_id in changed:
                self._notify(program_id)

    def count(self, program_id: int) -> int:
        """Accesses to ``program_id`` currently inside the window."""
        return self._counts.get(program_id, 0)

    def __len__(self) -> int:
        return len(self._events)


class LFUStrategy(CacheStrategy):
    """Exact sliding-window LFU with LRU tie-breaking.

    Parameters
    ----------
    history_hours:
        Length of the access history the popularity estimate is computed
        over (the paper sweeps 0-12 *days* in Fig 11; its baseline LFU
        configurations use multi-day histories).  ``None`` keeps the full
        history.
    """

    name = "lfu"

    #: Default history window.  Fig 11 shows savings emerging past 24 h
    #: and tapering beyond a week; three days is the sweet spot the other
    #: experiments' LFU curves are consistent with.
    DEFAULT_HISTORY_HOURS = 72.0

    __slots__ = ("_counts", "_last_access", "_heap")

    def __init__(self, history_hours: Optional[float] = DEFAULT_HISTORY_HOURS) -> None:
        super().__init__()
        window = None if history_hours is None else history_hours * units.SECONDS_PER_HOUR
        self._counts = WindowedCounts(window)
        self._counts.add_change_listener(self._on_count_change)
        self._last_access: Dict[int, float] = {}
        self._heap: List[Tuple[int, float, int]] = []

    # -- subclass seams -------------------------------------------------

    def _advance_counts(self, now: float) -> None:
        """Bring the count source up to ``now``."""
        self._counts.advance(now)

    def _record_access(self, now: float, program_id: int) -> None:
        """Feed one access into the count source."""
        self._counts.record(now, program_id)

    def _count(self, program_id: int) -> int:
        """Current popularity estimate for ``program_id``."""
        return self._counts.count(program_id)

    # -- heap maintenance ------------------------------------------------

    def _on_count_change(self, program_id: int) -> None:
        """Keep the eviction heap exact: re-push members whose key moved."""
        if program_id in self._members:
            self._push_entry(program_id)

    def _push_entry(self, program_id: int) -> None:
        heapq.heappush(
            self._heap,
            (self._count(program_id), self._last_access.get(program_id, 0.0), program_id),
        )

    def _entry_is_current(self, entry: Tuple[int, float, int]) -> bool:
        count, last, program_id = entry
        return (
            program_id in self._members
            and count == self._count(program_id)
            and last == self._last_access.get(program_id, 0.0)
        )

    def _pop_min(self, excluded: Set[int]) -> Optional[Tuple[int, float, int]]:
        """Pop the member with the smallest (count, last_access) key.

        Entries for ``excluded`` programs (already part of an eviction
        plan) and stale entries are discarded.  Because every key change
        pushes a fresh entry, the first current entry popped is the true
        minimum.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[2] in excluded:
                continue
            if self._entry_is_current(entry):
                return entry
        return None

    # -- policy ------------------------------------------------------------

    def on_access(self, now: float, program_id: int) -> MembershipChange:
        self._advance_counts(now)
        self._record_access(now, program_id)
        self._last_access[program_id] = now

        if program_id in self._members:
            self._push_entry(program_id)
            return MembershipChange()
        return self._try_admit(now, program_id)

    def _try_admit(self, now: float, program_id: int) -> MembershipChange:
        """Admit ``program_id`` if it outranks enough current members.

        Plans evictions against the true frequency order; commits only if
        the plan frees enough space using victims that rank at or below
        the newcomer, otherwise restores the heap untouched.
        """
        change = MembershipChange()
        footprint = self.context.footprint_of(program_id)
        if footprint > self.context.capacity_bytes:
            return change

        need = footprint - self.free_bytes
        if need <= 0:
            self._admit(program_id)
            self._push_entry(program_id)
            change.admitted.append(program_id)
            return change

        newcomer_key = (self._count(program_id), now)
        plan: List[Tuple[int, float, int]] = []
        planned: Set[int] = set()
        freed = 0.0
        feasible = True
        while freed < need:
            victim = self._pop_min(planned)
            if victim is None:
                feasible = False
                break
            victim_key = (victim[0], victim[1])
            if victim_key <= newcomer_key:
                plan.append(victim)
                planned.add(victim[2])
                freed += self.context.footprint_of(victim[2])
            else:
                # The cheapest member still outranks the newcomer: no
                # admission.  Return the popped entry -- it is current.
                heapq.heappush(self._heap, victim)
                feasible = False
                break

        if not feasible:
            for entry in plan:
                heapq.heappush(self._heap, entry)
            return change

        for _, _, victim_id in plan:
            self._evict(victim_id)
            change.evicted.append(victim_id)
        self._admit(program_id)
        self._push_entry(program_id)
        change.admitted.append(program_id)
        return change
