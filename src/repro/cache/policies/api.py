"""The policy engine's two-sided protocol: admission and eviction.

The paper's cache algorithms (section IV-B.2) all answer the same two
questions on every session start:

1. *Admission* -- is this program even a candidate for the cache?
2. *Eviction* -- which current members should make room for it?

:class:`PolicyStrategy` is the engine that drives one
:class:`AdmissionPolicy` and one :class:`EvictionPolicy` through the
shared :class:`~repro.cache.base.CacheStrategy` accounting.  Splitting
the two concerns makes them independently composable: the
popularity-threshold filter (:mod:`repro.cache.policies.admission`)
works in front of *any* eviction family, and new eviction families
(GDSF, ARC) plug in without touching admission or byte accounting.

Engine contract, in order, for one ``on_access(now, program_id)``:

* both policies ``observe`` the access (popularity models advance and
  record here, exactly once, admission first);
* a current member is ``touch``-ed on the eviction side and the access
  changes nothing else;
* a program whose footprint exceeds total capacity is never admitted
  (it could not fit even in an empty cache);
* the admission policy may veto (``should_admit``);
* if the newcomer does not fit in free space, the eviction policy must
  ``plan`` victims freeing at least the shortfall, or return ``None``
  to reject the admission with **no observable side effects**;
* victims are evicted (``on_evict`` per victim) strictly before the
  newcomer is admitted (``on_admit``) -- the index server relies on
  that ordering to have the bytes free.

Every policy sees the engine itself (as a :class:`PolicyHost`) at
``bind`` time, giving it read access to membership, byte accounting and
program footprints without owning any of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.cache.base import CacheStrategy, MembershipChange


class AdmissionPolicy(ABC):
    """Decides whether a non-member program may enter the cache."""

    #: Short identifier used in composed strategy names.
    name: str = "admission"

    __slots__ = ("_host",)

    def bind(self, host: "PolicyStrategy") -> None:
        """Attach to the engine; called once, before any access."""
        self._host = host

    def observe(self, now: float, program_id: int) -> None:
        """See one access (popularity bookkeeping); default: stateless."""

    @abstractmethod
    def should_admit(self, now: float, program_id: int) -> bool:
        """Whether ``program_id`` may be admitted right now."""


class EvictionPolicy(ABC):
    """Ranks members for eviction and plans space for newcomers."""

    #: Short identifier used in composed strategy names.
    name: str = "eviction"

    __slots__ = ("_host",)

    def bind(self, host: "PolicyStrategy") -> None:
        """Attach to the engine; called once, before any access."""
        self._host = host

    def observe(self, now: float, program_id: int) -> None:
        """See one access (popularity bookkeeping); default: stateless."""

    def touch(self, now: float, program_id: int) -> None:
        """A current member was accessed; refresh its rank."""

    @abstractmethod
    def plan(self, now: float, program_id: int,
             need_bytes: float) -> Optional[List[int]]:
        """Choose victims freeing at least ``need_bytes`` for a newcomer.

        Returns the victim ids in eviction order, or ``None`` to reject
        the admission.  A rejected plan must leave the policy's internal
        state exactly as it found it.
        """

    def on_admit(self, now: float, program_id: int) -> None:
        """``program_id`` just became a member."""

    def on_evict(self, program_id: int) -> None:
        """``program_id`` just left (planned or forced eviction)."""


class PolicyStrategy(CacheStrategy):
    """Cache strategy composed from one admission + one eviction policy.

    This is the engine every registry-built strategy runs on (the oracle
    excepted -- its schedule-driven recompute fits neither interface and
    stays a bespoke :class:`~repro.cache.base.CacheStrategy`).
    """

    __slots__ = ("_admission", "_eviction", "name", "_admission_observe",
                 "_eviction_observe", "_admission_vetoes")

    def __init__(self, admission: AdmissionPolicy,
                 eviction: EvictionPolicy) -> None:
        super().__init__()
        self._admission = admission
        self._eviction = eviction
        self.name = f"{eviction.name}" if isinstance(admission, _AlwaysAdmitMarker) \
            else f"{admission.name}+{eviction.name}"
        # Hot-path dispatch elision: on_access runs once per session
        # start across the whole simulation, so no-op hooks (AlwaysAdmit
        # observes nothing and never vetoes; LRU inherits the no-op
        # observe) are detected once here -- by checking for an actual
        # override -- instead of being called every access.
        self._admission_observe = (
            admission.observe
            if type(admission).observe is not AdmissionPolicy.observe
            else None
        )
        self._eviction_observe = (
            eviction.observe
            if type(eviction).observe is not EvictionPolicy.observe
            else None
        )
        self._admission_vetoes = not isinstance(admission, _AlwaysAdmitMarker)

    @property
    def admission(self) -> AdmissionPolicy:
        """The admission side of the composed policy."""
        return self._admission

    @property
    def eviction(self) -> EvictionPolicy:
        """The eviction side of the composed policy."""
        return self._eviction

    def _on_bind(self) -> MembershipChange:
        self._admission.bind(self)
        self._eviction.bind(self)
        return MembershipChange()

    def on_access(self, now: float, program_id: int) -> MembershipChange:
        observe = self._admission_observe
        if observe is not None:
            observe(now, program_id)
        observe = self._eviction_observe
        if observe is not None:
            observe(now, program_id)
        change = MembershipChange()
        if program_id in self._members:
            self._eviction.touch(now, program_id)
            return change

        context = self._context
        if context is None:
            context = self.context  # raises CacheError naming the policy
        footprint = context.footprint_of(program_id)
        if footprint > context.capacity_bytes:
            return change
        if (self._admission_vetoes
                and not self._admission.should_admit(now, program_id)):
            return change

        need = footprint - (context.capacity_bytes - self._used_bytes)
        if need > 0:
            victims = self._eviction.plan(now, program_id, need)
            if victims is None:
                return change
            for victim_id in victims:
                self._evict(victim_id)
                self._eviction.on_evict(victim_id)
                change.evicted.append(victim_id)
        self._admit(program_id)
        self._eviction.on_admit(now, program_id)
        change.admitted.append(program_id)
        return change

    def _on_force_evict(self, program_id: int) -> None:
        self._eviction.on_evict(program_id)


class _AlwaysAdmitMarker:
    """Mixin marker: admission policies that never veto.

    Lets :class:`PolicyStrategy` name pure-eviction compositions by the
    eviction side alone (``lru`` instead of ``always+lru``).
    """

    __slots__ = ()
