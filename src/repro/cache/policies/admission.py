"""Admission policy families for the policy engine.

Admission is the cheap half of the split protocol: a yes/no gate in
front of whatever eviction family owns the ranking.  The paper's
algorithms all admit unconditionally (the LFU plan discipline rejects
via *eviction* economics instead), so :class:`AlwaysAdmit` is the
default; :class:`ThresholdAdmission` adds the classic one-hit-wonder
filter the paper does not explore -- composable with any eviction
policy via :class:`~repro.cache.factory.ThresholdSpec`.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.cache.lfu import WindowedCounts
from repro.cache.policies.api import AdmissionPolicy, _AlwaysAdmitMarker
from repro.errors import ConfigurationError


class AlwaysAdmit(AdmissionPolicy, _AlwaysAdmitMarker):
    """Admit every candidate (the paper's implicit admission rule)."""

    name = "always"

    def should_admit(self, now: float, program_id: int) -> bool:
        return True


class ThresholdAdmission(AdmissionPolicy):
    """Admit only programs with ``min_accesses`` in a sliding window.

    VoD popularity is heavy-tailed: most programs are watched once and
    never again, yet an unconditional policy caches (and places!) every
    one of them, churning peers' disks for zero future hits.  This gate
    keeps the tail out: a program becomes admissible at its
    ``min_accesses``-th access inside ``window_hours``.  Composable with
    any eviction family -- the gate only vetoes entry, it never touches
    the ranking.
    """

    name = "threshold"

    def __init__(self, min_accesses: int = 2,
                 window_hours: Optional[float] = 24.0) -> None:
        if min_accesses < 1:
            raise ConfigurationError(
                f"min_accesses must be at least 1, got {min_accesses}"
            )
        self._min_accesses = min_accesses
        window = (None if window_hours is None
                  else window_hours * units.SECONDS_PER_HOUR)
        self._counts = WindowedCounts(window)

    def observe(self, now: float, program_id: int) -> None:
        self._counts.advance(now)
        self._counts.record(now, program_id)

    def should_admit(self, now: float, program_id: int) -> bool:
        return self._counts.count(program_id) >= self._min_accesses
