"""Admission policy families for the policy engine.

Admission is the cheap half of the split protocol: a yes/no gate in
front of whatever eviction family owns the ranking.  The paper's
algorithms all admit unconditionally (the LFU plan discipline rejects
via *eviction* economics instead), so :class:`AlwaysAdmit` is the
default; :class:`ThresholdAdmission` adds the classic one-hit-wonder
filter the paper does not explore -- composable with any eviction
policy via :class:`~repro.cache.factory.ThresholdSpec` -- and
:class:`FrequencySketchAdmission` is its O(1)-memory cousin: a
TinyLFU-style count-min sketch with periodic halving instead of exact
windowed counts.
"""

from __future__ import annotations

from typing import List, Optional

from repro import units
from repro.cache.lfu import WindowedCounts
from repro.cache.policies.api import AdmissionPolicy, _AlwaysAdmitMarker
from repro.errors import ConfigurationError


class AlwaysAdmit(AdmissionPolicy, _AlwaysAdmitMarker):
    """Admit every candidate (the paper's implicit admission rule)."""

    name = "always"

    __slots__ = ()

    def should_admit(self, now: float, program_id: int) -> bool:
        return True


class ThresholdAdmission(AdmissionPolicy):
    """Admit only programs with ``min_accesses`` in a sliding window.

    VoD popularity is heavy-tailed: most programs are watched once and
    never again, yet an unconditional policy caches (and places!) every
    one of them, churning peers' disks for zero future hits.  This gate
    keeps the tail out: a program becomes admissible at its
    ``min_accesses``-th access inside ``window_hours``.  Composable with
    any eviction family -- the gate only vetoes entry, it never touches
    the ranking.
    """

    name = "threshold"

    __slots__ = ("_min_accesses", "_counts")

    def __init__(self, min_accesses: int = 2,
                 window_hours: Optional[float] = 24.0) -> None:
        if min_accesses < 1:
            raise ConfigurationError(
                f"min_accesses must be at least 1, got {min_accesses}"
            )
        self._min_accesses = min_accesses
        window = (None if window_hours is None
                  else window_hours * units.SECONDS_PER_HOUR)
        self._counts = WindowedCounts(window)

    def observe(self, now: float, program_id: int) -> None:
        self._counts.advance(now)
        self._counts.record(now, program_id)

    def should_admit(self, now: float, program_id: int) -> bool:
        return self._counts.count(program_id) >= self._min_accesses


#: Multiplicative hash constants per sketch row (odd, well-mixed 64-bit
#: constants derived from the golden ratio / SplitMix64 increments).
#: Fixed here -- not drawn from ``hash()`` -- so sketch decisions are
#: deterministic across processes and PYTHONHASHSEED values.
_SKETCH_MIX = (
    0x9E3779B97F4A7C15,
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
    0xD6E8FEB86659FD93,
    0xA0761D6478BD642F,
    0xE7037ED1A0B428DB,
)


class FrequencySketchAdmission(AdmissionPolicy):
    """TinyLFU-style admission gate over a count-min sketch.

    Same idea as :class:`ThresholdAdmission` -- keep one-hit wonders out
    of the cache -- but with O(width x depth) memory independent of the
    catalog and access rate, the way production caches (Caffeine's
    W-TinyLFU) actually track popularity.  Each access increments
    ``depth`` hashed counters; a program is admissible once its sketch
    estimate (the minimum over its counters) reaches ``min_estimate``.

    Freshness comes from TinyLFU's *reset* operation instead of an
    exact sliding window: after every ``decay_accesses`` observations
    all counters halve, so a program must keep earning accesses to stay
    admissible.  Collisions can only over-estimate, so the gate errs on
    the side of admitting -- never on silently locking content out.
    """

    name = "sketch"

    __slots__ = ("_min_estimate", "_width", "_rows", "_mix",
                 "_decay_accesses", "_since_decay", "_last_program",
                 "_last_buckets")

    def __init__(self, min_estimate: int = 2, width: int = 1024,
                 depth: int = 4, decay_accesses: int = 8192) -> None:
        if min_estimate < 1:
            raise ConfigurationError(
                f"min_estimate must be at least 1, got {min_estimate}"
            )
        if width < 1 or depth < 1:
            raise ConfigurationError(
                f"sketch dimensions must be positive, got {width}x{depth}"
            )
        if not 1 <= depth <= len(_SKETCH_MIX):
            raise ConfigurationError(
                f"depth must be in 1..{len(_SKETCH_MIX)}, got {depth}"
            )
        if decay_accesses < 1:
            raise ConfigurationError(
                f"decay_accesses must be positive, got {decay_accesses}"
            )
        self._min_estimate = min_estimate
        self._width = width
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self._mix = _SKETCH_MIX[:depth]
        self._decay_accesses = decay_accesses
        self._since_decay = 0
        #: One-entry memo: the engine hashes the same program twice per
        #: candidate admission (observe, then should_admit), so the
        #: second lookup reuses the bucket indices instead of remixing.
        self._last_program: Optional[int] = None
        self._last_buckets: List[int] = []

    def _buckets(self, program_id: int) -> List[int]:
        if program_id == self._last_program:
            return self._last_buckets
        key = program_id & 0xFFFFFFFFFFFFFFFF
        buckets = [((key * mix) >> 17) % self._width for mix in self._mix]
        self._last_program = program_id
        self._last_buckets = buckets
        return buckets

    def estimate(self, program_id: int) -> int:
        """The sketch's (over-)estimate of this program's frequency."""
        return min(
            row[bucket]
            for row, bucket in zip(self._rows, self._buckets(program_id))
        )

    def observe(self, now: float, program_id: int) -> None:
        for row, bucket in zip(self._rows, self._buckets(program_id)):
            row[bucket] += 1
        self._since_decay += 1
        if self._since_decay >= self._decay_accesses:
            self._since_decay = 0
            for row in self._rows:
                for i, count in enumerate(row):
                    if count:
                        row[i] = count >> 1

    def should_admit(self, now: float, program_id: int) -> bool:
        return self.estimate(program_id) >= self._min_estimate
