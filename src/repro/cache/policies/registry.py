"""Decorator-based registry of cache-policy strategy specs.

Every config-level :class:`~repro.cache.factory.StrategySpec` registers
itself under a short CLI name::

    @policy("lru", summary="recency queue, unconditional admission")
    @dataclass(frozen=True)
    class LRUSpec(StrategySpec):
        ...

:func:`~repro.cache.factory.spec_from_name` and the CLI's
``list-strategies`` subcommand resolve names through this table, so the
set of runnable strategies is exactly the set of registered specs --
there is no hand-maintained duplicate list to drift out of date.

Spec parameters are introspected from the dataclass fields, so the CLI
listing always shows the real constructor surface.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple, Type, TypeVar

from repro.errors import ConfigurationError, suggest

SpecClass = TypeVar("SpecClass", bound=type)


@dataclass(frozen=True)
class PolicyInfo:
    """One registered policy family: name, spec class, description."""

    name: str
    spec_class: type
    summary: str

    @property
    def label(self) -> str:
        """Default-parameter label (what experiment tables print)."""
        return self.spec_class().label

    def parameters(self) -> List[Tuple[str, object]]:
        """``(field, default)`` pairs of the spec's dataclass surface."""
        params: List[Tuple[str, object]] = []
        for field in dataclasses.fields(self.spec_class):
            if not field.init or field.name == "classic":
                # ``classic`` selects the pre-engine reference build for
                # the equivalence tests; it is not a tuning parameter.
                continue
            if field.default is not dataclasses.MISSING:
                default = field.default
            elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = field.default_factory()  # type: ignore[misc]
            else:
                default = "<required>"
            params.append((field.name, default))
        return params


_REGISTRY: Dict[str, PolicyInfo] = {}


def policy(name: str, summary: str = "") -> Callable[[SpecClass], SpecClass]:
    """Class decorator registering a strategy spec under ``name``."""

    def register(spec_class: SpecClass) -> SpecClass:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"policy {name!r} registered twice "
                f"({_REGISTRY[name].spec_class.__name__} and "
                f"{spec_class.__name__})"
            )
        doc = (spec_class.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = PolicyInfo(
            name=name,
            spec_class=spec_class,
            summary=summary or (doc[0] if doc else ""),
        )
        spec_class.policy_name = name
        return spec_class

    return register


def policy_names() -> List[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)


def get_policy(name: str) -> PolicyInfo:
    """Look up one registered policy family.

    Raises
    ------
    ConfigurationError
        For unknown names, listing the registered ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}{suggest(name, policy_names())} "
            f"(choose from {policy_names()})"
        ) from None


def iter_policies() -> List[PolicyInfo]:
    """All registered policy families, in name order."""
    return [_REGISTRY[name] for name in policy_names()]


#: Eviction families buildable by short name with default parameters --
#: the composition surface admission filters (``threshold``) resolve
#: through.  Populated by the ``@eviction_family`` decorator so it can
#: never drift from the classes that actually exist; families needing
#: construction context (the global-LFU feed) stay out by simply not
#: registering.
_EVICTION_FAMILIES: Dict[str, type] = {}


def eviction_family(name: str) -> Callable[[SpecClass], SpecClass]:
    """Class decorator registering a default-constructible eviction policy."""

    def register(eviction_class: SpecClass) -> SpecClass:
        if name in _EVICTION_FAMILIES:
            raise ConfigurationError(
                f"eviction family {name!r} registered twice "
                f"({_EVICTION_FAMILIES[name].__name__} and "
                f"{eviction_class.__name__})"
            )
        _EVICTION_FAMILIES[name] = eviction_class
        eviction_class.name = name
        return eviction_class

    return register


#: Live admission-side policies (:mod:`repro.live`): the overload
#: throttle and fairness-scheduler specs that gate *session starts* in
#: front of the index server, as opposed to the cache policies above
#: that gate *program placement* behind it.  Same registration idiom,
#: separate namespace -- an admission policy is not a runnable cache
#: strategy and must not leak into ``spec_from_name``.
_LIVE_ADMISSIONS: Dict[str, PolicyInfo] = {}


def live_admission(name: str, summary: str = "") -> Callable[[SpecClass], SpecClass]:
    """Class decorator registering a live admission spec under ``name``."""

    def register(spec_class: SpecClass) -> SpecClass:
        if name in _LIVE_ADMISSIONS:
            raise ConfigurationError(
                f"live admission policy {name!r} registered twice "
                f"({_LIVE_ADMISSIONS[name].spec_class.__name__} and "
                f"{spec_class.__name__})"
            )
        doc = (spec_class.__doc__ or "").strip().splitlines()
        _LIVE_ADMISSIONS[name] = PolicyInfo(
            name=name,
            spec_class=spec_class,
            summary=summary or (doc[0] if doc else ""),
        )
        spec_class.policy_name = name
        return spec_class

    return register


def _live_table() -> Dict[str, PolicyInfo]:
    """The live table with registrations guaranteed to have run.

    The spec classes live in :mod:`repro.live.specs`; importing it here
    (lazily, to keep this module import-cycle-free) makes lookups work
    no matter which package the caller entered through.
    """
    import repro.live.specs  # noqa: F401  (registration side effect)

    return _LIVE_ADMISSIONS


def live_admission_names() -> List[str]:
    """Registered live admission policy names, sorted."""
    return sorted(_live_table())


def get_live_admission(name: str) -> PolicyInfo:
    """Look up one registered live admission policy family.

    Raises
    ------
    ConfigurationError
        For unknown names, listing the registered ones.
    """
    table = _live_table()
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown live admission policy {name!r}"
            f"{suggest(name, live_admission_names())} "
            f"(choose from {live_admission_names()})"
        ) from None


def iter_live_admissions() -> List[PolicyInfo]:
    """All registered live admission policy families, in name order."""
    return [_LIVE_ADMISSIONS[name] for name in live_admission_names()]


def named_eviction(name: str):
    """Build a default-parameter eviction policy by short name."""
    try:
        family = _EVICTION_FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown eviction policy {name!r}"
            f"{suggest(name, eviction_names())} "
            f"(choose from {eviction_names()})"
        ) from None
    return family()


def eviction_names() -> List[str]:
    """Short names accepted by :func:`named_eviction`, sorted."""
    return sorted(_EVICTION_FAMILIES)
