"""The cache policy engine: composable admission + eviction policies.

Layering (bottom up):

* :mod:`repro.cache.policies.api` -- the ``Policy`` protocol split into
  :class:`~repro.cache.policies.api.AdmissionPolicy` and
  :class:`~repro.cache.policies.api.EvictionPolicy`, plus the
  :class:`~repro.cache.policies.api.PolicyStrategy` engine that drives
  one of each through the shared byte accounting.
* :mod:`repro.cache.policies.admission` / ``eviction`` / ``arc`` -- the
  policy families themselves (always/threshold admission; LRU, windowed
  LFU, global LFU, GDSF, ARC eviction).
* :mod:`repro.cache.policies.registry` -- the decorator-based name
  registry the specs in :mod:`repro.cache.factory` publish themselves
  through; ``spec_from_name`` and the CLI resolve it dynamically.

``named_eviction`` is the composition seam: admission filters take an
eviction family by registry name, so ``threshold`` composes with any of
them without bespoke glue.
"""

from __future__ import annotations

from repro.cache.policies.admission import (
    AlwaysAdmit,
    FrequencySketchAdmission,
    ThresholdAdmission,
)
from repro.cache.policies.api import AdmissionPolicy, EvictionPolicy, PolicyStrategy
from repro.cache.policies.arc import ARCEviction
from repro.cache.policies.eviction import (
    GDSFEviction,
    GlobalLFUEviction,
    LFUEviction,
    LRUEviction,
)
from repro.cache.policies.registry import (
    PolicyInfo,
    eviction_names,
    get_live_admission,
    get_policy,
    iter_live_admissions,
    iter_policies,
    live_admission,
    live_admission_names,
    named_eviction,
    policy,
    policy_names,
)


__all__ = [
    "AdmissionPolicy",
    "EvictionPolicy",
    "PolicyStrategy",
    "AlwaysAdmit",
    "ThresholdAdmission",
    "FrequencySketchAdmission",
    "LRUEviction",
    "LFUEviction",
    "GlobalLFUEviction",
    "GDSFEviction",
    "ARCEviction",
    "PolicyInfo",
    "policy",
    "policy_names",
    "get_policy",
    "iter_policies",
    "named_eviction",
    "eviction_names",
    "live_admission",
    "live_admission_names",
    "get_live_admission",
    "iter_live_admissions",
]
