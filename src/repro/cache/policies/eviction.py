"""Eviction policy families for the policy engine.

Three families live here:

* :class:`LRUEviction` -- the paper's recency queue (section IV-B.2).
* :class:`LFUEviction` -- the paper's windowed LFU with LRU tie-break,
  rebuilt for the hot path: heap maintenance is *deferred* (member rank
  changes mark a dirty set; current keys are pushed only when a plan
  actually needs the heap) and the heap is *compacted* (rebuilt from
  live member keys once stale entries outnumber live ones 2:1), so the
  amortized per-access cost is O(1) instead of one heap sift per count
  change.  Decisions are bit-identical to the classic push-on-change
  implementation in :mod:`repro.cache.lfu`: at plan time every member
  has a current entry in the heap, pops validate against live keys, and
  the first current entry popped is therefore still the true minimum.
* :class:`GDSFEviction` -- Greedy-Dual-Size-Frequency: priority is an
  inflating clock plus windowed frequency *per segment of footprint*,
  so small popular programs outrank big lukewarm ones.  New in this
  reproduction (the paper caches whole programs of similar size, where
  GDSF degenerates toward LFU; with mixed-length catalogs it does not).

:class:`GlobalLFUEviction` blends the shared cross-neighborhood feed
into the LFU estimate exactly like the classic
:class:`~repro.cache.global_lfu.GlobalLFUStrategy`.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro import units
from repro.cache.global_lfu import GlobalPopularityFeed
from repro.cache.lfu import LFUStrategy, WindowedCounts
from repro.cache.policies.api import EvictionPolicy
from repro.cache.policies.registry import eviction_family
from repro.cache.segments import segment_bytes

#: Heap slack before a compaction is considered (small caches never
#: bother; the rebuild threshold is ``_COMPACT_SLACK + 2 x members``).
_COMPACT_SLACK = 64


class _RankedEviction(EvictionPolicy):
    """Shared deferred-heap machinery for keyed-min eviction families.

    A family ranks members by a two-field key (smaller = evict first)
    and supplies exactly two things: :meth:`_current_key` -- a member's
    live key, the single source of truth entries are validated against
    -- and :meth:`_newcomer_key` -- the candidate's rank at plan time.

    The base owns everything else:

    * a min-heap of ``(key0, key1, program_id)`` entries that may go
      stale (pops discard entries disagreeing with the live key);
    * *deferred* maintenance -- rank changes mark a dirty set and are
      pushed only when a plan needs the heap, so member-heavy streams
      cost O(1) per access instead of one sift per touch;
    * *compaction* -- once stale entries outnumber live members ~2:1
      the heap is rebuilt from the live keys, bounding it at O(members)
      on stable workloads;
    * the plan itself: the paper's LFU admission economics, family-
      agnostic -- pop cheapest members while they rank at or below the
      newcomer and their bytes are still needed; the first current
      entry that outranks the newcomer aborts the plan, and an aborted
      or infeasible plan pushes every popped entry back so the heap is
      exactly as it was found.
    """

    __slots__ = ("_heap", "_dirty")

    def __init__(self) -> None:
        self._heap: List[Tuple] = []
        self._dirty: Set[int] = set()

    def _current_key(self, program_id: int) -> Optional[Tuple]:
        """The member's live rank key (``None`` if it has none)."""
        raise NotImplementedError

    def _newcomer_key(self, now: float, program_id: int) -> Tuple:
        raise NotImplementedError

    def _push_current(self, program_id: int) -> None:
        key = self._current_key(program_id)
        heapq.heappush(self._heap, (key[0], key[1], program_id))

    def _flush_dirty(self) -> None:
        """Materialize deferred rank changes, compacting when stale-heavy.

        After this, every member has an entry carrying its current key,
        which is all :meth:`_pop_min` exactness requires.
        """
        members = self._host._members
        heap = self._heap
        if len(heap) + len(self._dirty) > _COMPACT_SLACK + 2 * len(members):
            current_key = self._current_key
            rebuilt = []
            for pid in members:
                key = current_key(pid)
                rebuilt.append((key[0], key[1], pid))
            heapq.heapify(rebuilt)
            self._heap = rebuilt
        else:
            for program_id in self._dirty:
                if program_id in members:
                    self._push_current(program_id)
        self._dirty.clear()

    def _pop_min(self, excluded: Set[int]) -> Optional[Tuple]:
        members = self._host._members
        current_key = self._current_key
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            program_id = entry[2]
            if program_id in excluded:
                continue
            if (program_id in members
                    and current_key(program_id) == (entry[0], entry[1])):
                return entry
        return None

    def on_evict(self, program_id: int) -> None:
        self._dirty.discard(program_id)

    def plan(self, now: float, program_id: int,
             need_bytes: float) -> Optional[List[int]]:
        self._flush_dirty()
        footprint_of = self._host.context.footprint_of
        newcomer_key = self._newcomer_key(now, program_id)
        plan: List[tuple] = []
        planned: Set[int] = set()
        freed = 0.0
        while freed < need_bytes:
            victim = self._pop_min(planned)
            if victim is None:
                break
            if (victim[0], victim[1]) <= newcomer_key:
                plan.append(victim)
                planned.add(victim[2])
                freed += footprint_of(victim[2])
            else:
                # Cheapest member outranks the newcomer: no admission.
                heapq.heappush(self._heap, victim)
                break
        if freed < need_bytes:
            for entry in plan:
                heapq.heappush(self._heap, entry)
            return None
        return [entry[2] for entry in plan]


@eviction_family("lru")
class LRUEviction(EvictionPolicy):
    """Evict the least-recently-accessed member first."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: "OrderedDict[int, None]" = OrderedDict()

    def touch(self, now: float, program_id: int) -> None:
        self._queue.move_to_end(program_id)

    def plan(self, now: float, program_id: int,
             need_bytes: float) -> Optional[List[int]]:
        footprint_of = self._host.context.footprint_of
        victims: List[int] = []
        freed = 0.0
        for victim_id in self._queue:
            victims.append(victim_id)
            freed += footprint_of(victim_id)
            if freed >= need_bytes:
                return victims
        return None  # pragma: no cover - newcomer <= capacity always frees

    def on_admit(self, now: float, program_id: int) -> None:
        self._queue[program_id] = None

    def on_evict(self, program_id: int) -> None:
        self._queue.pop(program_id, None)


@eviction_family("lfu")
class LFUEviction(_RankedEviction):
    """Windowed LFU with LRU tie-break (deferred-heap fast path).

    Ranks members by ``(window count, last access)``; a newcomer is
    admitted only if victims ranking at or below it free enough space.
    ``history_hours=0`` degenerates to LRU exactly (every count has
    expired by decision time), matching the paper's Fig 11 claim.
    """

    __slots__ = ("_counts", "_last_access")

    def __init__(self,
                 history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS,
                 ) -> None:
        super().__init__()
        window = (None if history_hours is None
                  else history_hours * units.SECONDS_PER_HOUR)
        self._counts = WindowedCounts(window)
        self._counts.add_change_listener(self._mark_dirty)
        self._last_access: Dict[int, float] = {}

    # -- count-source seam (GlobalLFUEviction overrides) ----------------

    def _advance(self, now: float) -> None:
        self._counts.advance(now)

    def _count(self, program_id: int) -> int:
        return self._counts.count(program_id)

    def _mark_dirty(self, program_id: int) -> None:
        """A count changed; defer the heap push until plan time."""
        if program_id in self._host._members:
            self._dirty.add(program_id)

    # -- ranking ---------------------------------------------------------

    def _current_key(self, program_id: int) -> Tuple[int, float]:
        return (self._count(program_id),
                self._last_access.get(program_id, 0.0))

    def _push_current(self, program_id: int) -> None:
        # Hot-path specialization: build the heap entry in one step
        # instead of materializing the key tuple first.  Must stay
        # equivalent to the base implementation over _current_key().
        heapq.heappush(
            self._heap,
            (self._count(program_id),
             self._last_access.get(program_id, 0.0),
             program_id),
        )

    def _pop_min(self, excluded: Set[int]) -> Optional[Tuple]:
        # Hot-path specialization of the base loop: comparing the entry
        # fields directly short-circuits before the second lookup and
        # skips the per-pop key-tuple allocation.  Must stay equivalent
        # to ``_current_key(pid) == (entry[0], entry[1])``.
        members = self._host._members
        last = self._last_access
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            program_id = entry[2]
            if program_id in excluded:
                continue
            if (program_id in members
                    and entry[0] == self._count(program_id)
                    and entry[1] == last.get(program_id, 0.0)):
                return entry
        return None

    def _newcomer_key(self, now: float, program_id: int) -> Tuple[int, float]:
        return (self._count(program_id), now)

    # -- policy interface ------------------------------------------------

    def observe(self, now: float, program_id: int) -> None:
        self._advance(now)
        self._counts.record(now, program_id)
        self._last_access[program_id] = now

    def touch(self, now: float, program_id: int) -> None:
        self._dirty.add(program_id)

    def on_admit(self, now: float, program_id: int) -> None:
        self._push_current(program_id)


class GlobalLFUEviction(LFUEviction):
    """LFU whose popularity estimate blends the global feed (Fig 13)."""

    name = "global-lfu"

    __slots__ = ("_feed", "_neighborhood_id")

    def __init__(self, feed: GlobalPopularityFeed, neighborhood_id: int,
                 history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS,
                 ) -> None:
        super().__init__(history_hours=history_hours)
        self._feed = feed
        self._neighborhood_id = neighborhood_id
        feed.add_change_listener(self._mark_dirty)

    def _advance(self, now: float) -> None:
        super()._advance(now)
        self._feed.advance(now)

    def _count(self, program_id: int) -> int:
        return (self._counts.count(program_id)
                + self._feed.remote_count(self._neighborhood_id, program_id))


@eviction_family("gdsf")
class GDSFEviction(_RankedEviction):
    """Greedy-Dual-Size-Frequency: size-aware windowed frequency.

    Each member carries priority ``H = L + count / size_segments`` where
    ``L`` is the inflating clock (raised to the priority of every evicted
    member) and ``count`` is the program's access count in the sliding
    history window, assessed at its last access.  Evicting min-``H``
    members protects small-and-popular content: a 30-minute program with
    the same window count as a 2-hour one has 4x its priority boost, so
    byte-for-byte the cache keeps what produces the most hits.

    Admission mirrors the LFU plan discipline: the newcomer enters only
    if victims with priority at or below its own free enough bytes.
    """

    __slots__ = ("_counts", "_clock", "_pri")

    def __init__(self,
                 history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS,
                 ) -> None:
        super().__init__()
        window = (None if history_hours is None
                  else history_hours * units.SECONDS_PER_HOUR)
        self._counts = WindowedCounts(window)
        self._clock = 0.0
        #: pid -> (priority, last_access) fixed at the program's last
        #: access; window expiry after that does not lower it (the decay
        #: shows up at the *next* access instead).
        self._pri: Dict[int, Tuple[float, float]] = {}

    def _size_segments(self, program_id: int) -> float:
        return self._host.context.footprint_of(program_id) / segment_bytes()

    def _priority(self, program_id: int) -> float:
        return self._clock + self._counts.count(program_id) / max(
            self._size_segments(program_id), 1e-9
        )

    # -- ranking ---------------------------------------------------------

    def _current_key(self, program_id: int) -> Optional[Tuple[float, float]]:
        return self._pri.get(program_id)

    def _newcomer_key(self, now: float, program_id: int) -> Tuple[float, float]:
        return (self._priority(program_id), now)

    # -- policy interface ------------------------------------------------

    def observe(self, now: float, program_id: int) -> None:
        self._counts.advance(now)
        self._counts.record(now, program_id)

    def touch(self, now: float, program_id: int) -> None:
        self._pri[program_id] = (self._priority(program_id), now)
        self._dirty.add(program_id)

    def on_admit(self, now: float, program_id: int) -> None:
        self._pri[program_id] = (self._priority(program_id), now)
        self._push_current(program_id)

    def on_evict(self, program_id: int) -> None:
        super().on_evict(program_id)
        evicted = self._pri.pop(program_id, None)
        if evicted is not None and evicted[0] > self._clock:
            # The GDSF aging step: future priorities start from the
            # best priority ever evicted, so long-idle members decay
            # relative to fresh activity.
            self._clock = evicted[0]
