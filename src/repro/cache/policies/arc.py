"""ARC-style adaptive recency/frequency eviction.

Adapted from the classic Adaptive Replacement Cache (Megiddo & Modha,
FAST '03) to this simulator's world: program-granularity members with
heterogeneous byte footprints, driven through the policy engine's
plan/commit protocol.

Structure: members split into ``T1`` (seen once recently) and ``T2``
(seen at least twice); ghosts of recently evicted members live in
``B1``/``B2``.  A byte-denominated target ``p`` says how much of the
cache recency (``T1``) deserves: a ghost hit in ``B1`` means "we
evicted a recency victim too early" and grows ``p``; a ghost hit in
``B2`` shrinks it.  Replacement takes from ``T1`` while it holds more
than ``p`` bytes, else from ``T2`` -- so the split *learns* whether the
neighborhood's viewing is drifting (recency-friendly) or stable
(frequency-friendly) without a history-length parameter to tune.

All queues are insertion-ordered dicts; behaviour is deterministic for
a given access sequence.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.cache.policies.api import EvictionPolicy
from repro.cache.policies.registry import eviction_family
from repro.errors import ConfigurationError


@eviction_family("arc")
class ARCEviction(EvictionPolicy):
    """Adaptive recency/frequency split with ghost-directed tuning.

    ``ghost_budget`` bounds each ghost list at that fraction of the
    cache's byte capacity (canonical ARC keeps one cache's worth per
    side, the 1.0 default).  Smaller budgets forget eviction mistakes
    sooner -- the knob the ghost-budget sweep explores.
    """

    __slots__ = ("_ghost_budget", "_t1", "_t2", "_b1", "_b2",
                 "_t1_bytes", "_b1_bytes", "_b2_bytes", "_p", "_ghost_hit")

    def __init__(self, ghost_budget: float = 1.0) -> None:
        if ghost_budget < 0:
            raise ConfigurationError(
                f"ghost_budget must be non-negative, got {ghost_budget}"
            )
        self._ghost_budget = ghost_budget
        #: Members seen once since admission (recency side), LRU first.
        self._t1: "OrderedDict[int, None]" = OrderedDict()
        #: Members seen twice or more (frequency side), LRU first.
        self._t2: "OrderedDict[int, None]" = OrderedDict()
        #: Ghosts: recently evicted from T1 / T2, with their footprints
        #: (footprint_of needs no context after eviction this way).
        self._b1: "OrderedDict[int, float]" = OrderedDict()
        self._b2: "OrderedDict[int, float]" = OrderedDict()
        self._t1_bytes = 0.0
        self._b1_bytes = 0.0
        self._b2_bytes = 0.0
        #: Byte target for T1 (the adaptive knob).
        self._p = 0.0
        #: Ghost hit being serviced by the current access: the program
        #: id and which list it came from (1 or 2).  Consumed at
        #: admission so a re-admitted ghost lands in T2; reset on the
        #: next observe either way.
        self._ghost_hit: Optional[Tuple[int, int]] = None

    # -- bookkeeping helpers --------------------------------------------

    def _footprint(self, program_id: int) -> float:
        return self._host.context.footprint_of(program_id)

    def _capacity(self) -> float:
        return self._host.context.capacity_bytes

    def _trim_ghosts(self) -> None:
        """Bound ghost memory to the budgeted bytes per list."""
        capacity = self._capacity() * self._ghost_budget
        while self._b1 and self._b1_bytes > capacity:
            _, footprint = self._b1.popitem(last=False)
            self._b1_bytes -= footprint
        while self._b2 and self._b2_bytes > capacity:
            _, footprint = self._b2.popitem(last=False)
            self._b2_bytes -= footprint

    # -- policy interface ------------------------------------------------

    def observe(self, now: float, program_id: int) -> None:
        """Adapt the target on ghost hits (the ARC learning rule).

        The ghost is *consumed* here, not at admission: one eviction
        mistake adjusts ``p`` exactly once, even when a composed
        admission policy (e.g. the threshold gate) vetoes re-admission
        and the program keeps getting accessed -- canonical ARC never
        faces that case because it admits unconditionally.
        """
        if program_id in self._b1:
            footprint = self._b1.pop(program_id)
            ratio = max(1.0, self._b2_bytes / self._b1_bytes) if self._b1_bytes else 1.0
            self._b1_bytes -= footprint
            self._p = min(self._capacity(), self._p + ratio * footprint)
            self._ghost_hit = (program_id, 1)
        elif program_id in self._b2:
            footprint = self._b2.pop(program_id)
            ratio = max(1.0, self._b1_bytes / self._b2_bytes) if self._b2_bytes else 1.0
            self._b2_bytes -= footprint
            self._p = max(0.0, self._p - ratio * footprint)
            self._ghost_hit = (program_id, 2)
        else:
            self._ghost_hit = None

    def touch(self, now: float, program_id: int) -> None:
        """Second access promotes T1 -> T2; T2 hits refresh recency."""
        if program_id in self._t1:
            del self._t1[program_id]
            self._t1_bytes -= self._footprint(program_id)
            self._t2[program_id] = None
        else:
            self._t2.move_to_end(program_id)

    def plan(self, now: float, program_id: int,
             need_bytes: float) -> Optional[List[int]]:
        """REPLACE: drain T1 down to the target, then T2, until it fits."""
        victims: List[int] = []
        freed = 0.0
        t1_bytes = self._t1_bytes
        from_b2 = self._ghost_hit == (program_id, 2)
        t1 = iter(self._t1)
        t2 = iter(self._t2)
        while freed < need_bytes:
            victim_id: Optional[int] = None
            # Prefer T1 while it exceeds the adaptive target (or exactly
            # meets it on a B2 ghost hit, per the original REPLACE rule).
            if self._t1 and (t1_bytes > self._p
                             or (from_b2 and t1_bytes == self._p)):
                victim_id = next(t1, None)
                if victim_id is not None:
                    t1_bytes -= self._footprint(victim_id)
            if victim_id is None:
                victim_id = next(t2, None)
            if victim_id is None:
                victim_id = next(t1, None)
            if victim_id is None:
                return None  # pragma: no cover - footprint <= capacity
            victims.append(victim_id)
            freed += self._footprint(victim_id)
        return victims

    def on_admit(self, now: float, program_id: int) -> None:
        footprint = self._footprint(program_id)
        if self._ghost_hit is not None and self._ghost_hit[0] == program_id:
            # Readmission after an eviction mistake: straight to the
            # frequency side, per the original ARC cases II/III.
            self._t2[program_id] = None
            self._ghost_hit = None
        else:
            self._t1[program_id] = None
            self._t1_bytes += footprint

    def on_evict(self, program_id: int) -> None:
        footprint = self._footprint(program_id)
        if program_id in self._t1:
            del self._t1[program_id]
            self._t1_bytes -= footprint
            self._b1[program_id] = footprint
            self._b1_bytes += footprint
        elif program_id in self._t2:
            del self._t2[program_id]
            self._b2[program_id] = footprint
            self._b2_bytes += footprint
        self._trim_ghosts()
