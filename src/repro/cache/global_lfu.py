"""LFU driven by system-wide popularity data, with propagation lag.

Paper section VI-A / Fig 13: "One final way to increase the data
available to the LFU algorithm is to use access data from peers outside
the neighborhood ... The bars on the left side show an LFU algorithm
that uses complete global data to make every caching decision in the
neighborhood proxy cache.  The middle two bars show the performance if
the local data is only augmented with global information in batches
after a certain length of time has passed."

Model: every neighborhood sees its *own* accesses instantly (they pass
through its index server) and accesses from *other* neighborhoods only
once the batch containing them is published, ``lag_seconds`` wide
(``0`` = instantaneous global knowledge).  Both local and remote
contributions expire out of the same sliding history window as plain
LFU.

Implementation: a shared :class:`GlobalPopularityFeed` tracks, per
program, the globally released count and each neighborhood's own released
contribution.  Neighborhood ``n``'s popularity estimate is::

    count_n(p) = local_window_n(p) + released_global(p) - released_own_n(p)

so its own events are never double counted.  The feed notifies listeners
on every release/expiry so each strategy's eviction heap stays exact (see
:mod:`repro.cache.lfu`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.cache.lfu import LFUStrategy
from repro.errors import ConfigurationError


class GlobalPopularityFeed:
    """Shared cross-neighborhood access history with batched publication.

    Parameters
    ----------
    window_seconds:
        Sliding history window (same semantics as plain LFU); ``None``
        keeps everything.
    lag_seconds:
        Batch width.  An event at time ``t`` becomes visible to *other*
        neighborhoods at the end of its batch,
        ``(floor(t / lag) + 1) * lag``; with ``lag_seconds == 0`` it is
        visible immediately.
    """

    __slots__ = ("_window", "_lag", "_pending", "_released",
                 "_global_counts", "_own_counts", "_listeners")

    def __init__(self, window_seconds: Optional[float], lag_seconds: float = 0.0) -> None:
        if lag_seconds < 0:
            raise ConfigurationError(f"lag must be non-negative, got {lag_seconds}")
        if window_seconds is not None and window_seconds < 0:
            raise ConfigurationError(
                f"history window must be non-negative, got {window_seconds}"
            )
        self._window = window_seconds
        self._lag = lag_seconds
        #: Events recorded but not yet published: (release_time, event_time,
        #: program, neighborhood).
        self._pending: Deque[Tuple[float, float, int, int]] = deque()
        #: Published events awaiting window expiry: (event_time, program,
        #: neighborhood).
        self._released: Deque[Tuple[float, int, int]] = deque()
        self._global_counts: Dict[int, int] = {}
        self._own_counts: Dict[int, Dict[int, int]] = {}
        self._listeners: List[Callable[[int], None]] = []

    def add_change_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback fired with the program id on count changes."""
        self._listeners.append(listener)

    def _notify(self, program_id: int) -> None:
        for listener in self._listeners:
            listener(program_id)

    def _release_time(self, event_time: float) -> float:
        if self._lag <= 0:
            return event_time
        return (math.floor(event_time / self._lag) + 1.0) * self._lag

    def record(self, now: float, program_id: int, neighborhood_id: int) -> None:
        """Record an access observed at ``neighborhood_id``."""
        self._pending.append((self._release_time(now), now, program_id, neighborhood_id))

    def advance(self, now: float) -> None:
        """Publish due batches and expire events that left the window.

        Like :meth:`repro.cache.lfu.WindowedCounts.advance`, the whole
        release/expiry backlog is drained in one pass and listeners are
        notified once per changed program, not once per event -- counts
        at decision time are identical, downstream heap churn is not.
        """
        changed: Dict[int, None] = {}
        pending = self._pending
        while pending and pending[0][0] <= now:
            _, event_time, program_id, neighborhood_id = pending.popleft()
            self._released.append((event_time, program_id, neighborhood_id))
            self._global_counts[program_id] = self._global_counts.get(program_id, 0) + 1
            own = self._own_counts.setdefault(neighborhood_id, {})
            own[program_id] = own.get(program_id, 0) + 1
            changed[program_id] = None
        if self._window is not None:
            threshold = now - self._window
            released = self._released
            while released and released[0][0] <= threshold:
                _, program_id, neighborhood_id = released.popleft()
                remaining = self._global_counts[program_id] - 1
                if remaining:
                    self._global_counts[program_id] = remaining
                else:
                    del self._global_counts[program_id]
                own = self._own_counts[neighborhood_id]
                own_remaining = own[program_id] - 1
                if own_remaining:
                    own[program_id] = own_remaining
                else:
                    del own[program_id]
                changed[program_id] = None
        if changed and self._listeners:
            for program_id in changed:
                self._notify(program_id)

    def remote_count(self, neighborhood_id: int, program_id: int) -> int:
        """Published accesses to ``program_id`` from *other* neighborhoods."""
        total = self._global_counts.get(program_id, 0)
        own = self._own_counts.get(neighborhood_id, {}).get(program_id, 0)
        return total - own


class GlobalLFUStrategy(LFUStrategy):
    """LFU whose popularity estimate blends local and global history.

    Shares all admission/eviction machinery with :class:`LFUStrategy`;
    only the count source differs.
    """

    name = "global-lfu"

    __slots__ = ("_feed", "_neighborhood_id")

    def __init__(
        self,
        feed: GlobalPopularityFeed,
        neighborhood_id: int,
        history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS,
    ) -> None:
        super().__init__(history_hours=history_hours)
        self._feed = feed
        self._neighborhood_id = neighborhood_id
        feed.add_change_listener(self._on_count_change)

    def _advance_counts(self, now: float) -> None:
        super()._advance_counts(now)
        self._feed.advance(now)

    def _count(self, program_id: int) -> int:
        return super()._count(program_id) + self._feed.remote_count(
            self._neighborhood_id, program_id
        )
