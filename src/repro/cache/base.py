"""Strategy interface for the neighborhood cooperative cache.

A *strategy* answers one question: which programs should this
neighborhood's cache hold right now?  It owns the membership set and its
byte accounting; the index server owns the physical consequences
(segment placement on peers).  Strategies are driven by access
notifications -- one per viewing session, matching the paper's
"the index server also monitors all requests in the neighborhood to
calculate file popularity" -- and report membership deltas for the index
server to apply.

Program sizes are *cache footprints*: whole segments, because placement
reserves whole segments (see :mod:`repro.cache.segments`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, List, Set

from repro.errors import CacheError


@dataclass(frozen=True)
class StrategyContext:
    """Facts a strategy needs to make membership decisions.

    Attributes
    ----------
    neighborhood_id:
        Which neighborhood this strategy instance serves (strategies are
        per-neighborhood; shared state, if any, lives in the spec).
    capacity_bytes:
        Usable cache capacity: the sum over peers of whole-segment
        multiples of their contributed storage.
    footprint_of:
        Maps a program id to its cache footprint in bytes.
    """

    neighborhood_id: int
    capacity_bytes: float
    footprint_of: Callable[[int], float]

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise CacheError(
                f"neighborhood {self.neighborhood_id}: capacity must be "
                f"non-negative, got {self.capacity_bytes}"
            )


@dataclass
class MembershipChange:
    """Delta produced by one access notification.

    ``evicted`` programs must be removed from peers before ``admitted``
    programs are placed (the index server relies on that ordering to have
    the bytes free).
    """

    admitted: List[int] = field(default_factory=list)
    evicted: List[int] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """True when the access changed nothing."""
        return not self.admitted and not self.evicted

    def __bool__(self) -> bool:
        return not self.empty


class CacheStrategy(ABC):
    """Base class for cache-membership policies.

    Lifecycle: construct, :meth:`bind` once with the neighborhood's
    context, then receive :meth:`on_access` for every session start in
    the neighborhood.  Implementations must keep ``used_bytes`` at or
    under ``capacity_bytes`` at all times.
    """

    #: Human-readable policy name (for reports and tables).
    name: str = "abstract"

    #: When True the index server treats admitted programs as fully
    #: stored immediately, without waiting for a broadcast to capture.
    #: Only the oracle sets this: the paper presents it as "an example of
    #: ideal cache performance" that is "impossible to implement", so it
    #: does not pay realistic fill costs.
    instant_fill: bool = False

    __slots__ = ("_context", "_members", "_used_bytes")

    def __init__(self) -> None:
        self._context: StrategyContext | None = None
        self._members: Set[int] = set()
        self._used_bytes = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def bind(self, context: StrategyContext) -> MembershipChange:
        """Attach the strategy to its neighborhood.

        Returns an initial membership change (non-empty only for policies
        with a priori knowledge, e.g. the oracle pre-warming the cache).
        """
        if self._context is not None:
            raise CacheError(f"{self.name} strategy bound twice")
        self._context = context
        return self._on_bind()

    def _on_bind(self) -> MembershipChange:
        """Hook for subclasses; default does nothing."""
        return MembershipChange()

    @property
    def context(self) -> StrategyContext:
        """The bound context (raises if :meth:`bind` has not run)."""
        if self._context is None:
            raise CacheError(f"{self.name} strategy used before bind()")
        return self._context

    # ------------------------------------------------------------------
    # Membership bookkeeping shared by all policies
    # ------------------------------------------------------------------

    @property
    def members(self) -> FrozenSet[int]:
        """Programs currently admitted to the cache."""
        return frozenset(self._members)

    @property
    def used_bytes(self) -> float:
        """Bytes of cache capacity currently committed."""
        return self._used_bytes

    @property
    def free_bytes(self) -> float:
        """Uncommitted cache capacity."""
        return self.context.capacity_bytes - self._used_bytes

    def __contains__(self, program_id: int) -> bool:
        return program_id in self._members

    def _admit(self, program_id: int) -> None:
        """Record ``program_id`` as a member, charging its footprint."""
        if program_id in self._members:
            raise CacheError(f"program {program_id} admitted twice")
        footprint = self.context.footprint_of(program_id)
        if footprint > self.free_bytes + 1e-6:
            raise CacheError(
                f"admitting program {program_id} ({footprint:.0f} B) would "
                f"overflow the cache ({self.free_bytes:.0f} B free)"
            )
        self._members.add(program_id)
        self._used_bytes += footprint

    def _evict(self, program_id: int) -> None:
        """Remove ``program_id``, refunding its footprint."""
        if program_id not in self._members:
            raise CacheError(f"evicting non-member program {program_id}")
        self._members.discard(program_id)
        self._used_bytes -= self.context.footprint_of(program_id)
        if self._used_bytes < -1e-6:  # pragma: no cover - accounting invariant
            raise CacheError("cache accounting went negative")
        self._used_bytes = max(self._used_bytes, 0.0)

    def force_evict(self, program_id: int) -> None:
        """Evict a member at the index server's demand.

        Used when physical placement of an admitted program fails so the
        strategy's accounting is rolled back to match reality.  Subclasses
        with auxiliary structures override :meth:`_on_force_evict`.
        """
        self._evict(program_id)
        self._on_force_evict(program_id)

    def _on_force_evict(self, program_id: int) -> None:
        """Hook to clean subclass bookkeeping after a forced eviction."""

    # ------------------------------------------------------------------
    # Policy interface
    # ------------------------------------------------------------------

    @abstractmethod
    def on_access(self, now: float, program_id: int) -> MembershipChange:
        """Notify the strategy of a session start for ``program_id``.

        Returns the membership delta the index server must apply.
        """


class NullStrategy(CacheStrategy):
    """The no-cache baseline: never admits anything.

    Running the simulator with this policy reproduces the paper's
    "with no cache, central servers must support 17 Gb/s" reference line.
    """

    name = "none"

    __slots__ = ()

    def on_access(self, now: float, program_id: int) -> MembershipChange:
        return MembershipChange()
