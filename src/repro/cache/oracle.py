"""Oracle cache membership: perfect knowledge of future demand.

Paper section VI-A: "We benchmark both methods against an Oracle method,
which caches the files that will be used the most frequently in the next
three days.  This final algorithm is impossible to implement, and is
presented as an example of ideal cache performance."

The oracle is constructed with the neighborhood's complete future access
schedule (the trace itself, filtered to local users).  Periodically it
re-derives the ideal membership: rank programs by access count over the
next ``window_days`` and greedily fill the cache in rank order.

Recomputes are *incremental*: the strategy keeps the per-program counts
of the previous window and, when the window slides from ``t0`` to
``t1``, walks only the events leaving ``(t0, t1]`` and entering
``(t0 + W, t1 + W]`` on a global time-sorted event list.  Counts are
integers and the slide uses the same ``bisect_right`` boundaries as a
full scan, so ``count(t1) = count(t0) - left + entered`` is exact --
the incremental and full recomputes produce identical rankings (pinned
by the bit-identity test), while the per-recompute cost drops from
O(programs x log window) to O(events slid + programs ranked).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.cache.base import CacheStrategy, MembershipChange
from repro.errors import ConfigurationError


class OracleStrategy(CacheStrategy):
    """Future-knowledge cache policy (the paper's ideal benchmark).

    Parameters
    ----------
    future_accesses:
        Mapping from program id to the *sorted* list of session start
        times that will occur in this neighborhood.
    window_days:
        Look-ahead horizon (the paper uses three days).
    recompute_hours:
        How often the ideal membership is re-derived.  The paper does not
        specify; 6 hours keeps membership continuously near-ideal while
        amortizing the ranking cost.
    """

    name = "oracle"
    instant_fill = True

    __slots__ = ("_futures", "_window_seconds", "_recompute_seconds",
                 "_next_recompute", "_event_times", "_event_pids",
                 "_counts", "_counts_now")

    def __init__(
        self,
        future_accesses: Dict[int, Sequence[float]],
        window_days: float = 3.0,
        recompute_hours: float = 6.0,
    ) -> None:
        super().__init__()
        if window_days <= 0:
            raise ConfigurationError(f"window_days must be positive, got {window_days}")
        if recompute_hours <= 0:
            raise ConfigurationError(
                f"recompute_hours must be positive, got {recompute_hours}"
            )
        self._futures: Dict[int, List[float]] = {
            pid: sorted(times) for pid, times in future_accesses.items() if times
        }
        self._window_seconds = window_days * units.SECONDS_PER_DAY
        self._recompute_seconds = recompute_hours * units.SECONDS_PER_HOUR
        self._next_recompute = 0.0
        # Global time-sorted event list backing the incremental slide.
        # Ties sort by (time, pid); only the slice boundaries matter, so
        # tie order never affects the resulting counts.
        events = sorted(
            (time, pid)
            for pid, times in self._futures.items()
            for time in times
        )
        self._event_times: List[float] = [time for time, _ in events]
        self._event_pids: List[int] = [pid for _, pid in events]
        #: Window counts as of ``_counts_now`` (None until first derive).
        self._counts: Dict[int, int] = {}
        self._counts_now: Optional[float] = None

    def _on_bind(self) -> MembershipChange:
        """Pre-warm: derive the ideal membership for the opening window."""
        return self._recompute(0.0)

    def future_count(self, now: float, program_id: int) -> int:
        """Accesses to ``program_id`` in ``(now, now + window]``."""
        times = self._futures.get(program_id)
        if not times:
            return 0
        lo = bisect_right(times, now)
        hi = bisect_right(times, now + self._window_seconds)
        return hi - lo

    def full_window_counts(self, now: float) -> Dict[int, int]:
        """Per-program counts over ``(now, now + window]``, from scratch.

        The reference the incremental slide must match exactly; the
        equivalence test drives both and asserts identity.
        """
        return {
            program_id: self.future_count(now, program_id)
            for program_id in self._futures
        }

    def window_counts(self, now: float) -> Dict[int, int]:
        """Per-program counts over ``(now, now + window]``, incrementally.

        The first call (and any rewind, which forward simulation never
        produces) derives the counts from scratch; later calls slide
        the window from the previous ``now``: every event in
        ``(t0, t1]`` left the window, every event in
        ``(t0 + W, t1 + W]`` entered it.  Both slices use the same
        ``bisect_right`` boundaries the full scan uses and the updates
        are integer, so the slide is exact, not approximate.
        """
        t0 = self._counts_now
        if t0 is None or now < t0:
            self._counts = self.full_window_counts(now)
        elif now > t0:
            counts = self._counts
            times = self._event_times
            pids = self._event_pids
            window = self._window_seconds
            for i in range(bisect_right(times, t0), bisect_right(times, now)):
                counts[pids[i]] -= 1
            for i in range(bisect_right(times, t0 + window),
                           bisect_right(times, now + window)):
                counts[pids[i]] += 1
        self._counts_now = now
        return self._counts

    def _recompute(self, now: float) -> MembershipChange:
        ranking: List[Tuple[int, int]] = []
        for program_id, count in self.window_counts(now).items():
            if count > 0:
                ranking.append((-count, program_id))
        ranking.sort()

        capacity = self.context.capacity_bytes
        target: set[int] = set()
        used = 0.0
        for negative_count, program_id in ranking:
            footprint = self.context.footprint_of(program_id)
            if used + footprint <= capacity:
                target.add(program_id)
                used += footprint
        # Retain current members that still fit even when they fall out
        # of the ranking: evicting from a non-full cache can only hurt,
        # and an ideal policy would never do it.
        for program_id in sorted(self._members - target):
            footprint = self.context.footprint_of(program_id)
            if used + footprint <= capacity:
                target.add(program_id)
                used += footprint

        change = MembershipChange()
        for program_id in sorted(self._members - target):
            self._evict(program_id)
            change.evicted.append(program_id)
        for program_id in sorted(target - self._members):
            self._admit(program_id)
            change.admitted.append(program_id)
        self._next_recompute = now + self._recompute_seconds
        return change

    def on_access(self, now: float, program_id: int) -> MembershipChange:
        if now >= self._next_recompute:
            return self._recompute(now)
        return MembershipChange()
