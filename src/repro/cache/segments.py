"""Program segmentation and physical placement on set-top peers.

Paper section IV-B.1: "Programs are divided into 5 minute segments and
distributed among a collection of peers.  When the index server
determines that a program should be in the cache, it locates a
collection of peers to store the segments ...  Unlike many structured
peer-to-peer systems, placement is not probabilistic.  Instead, the
index server places data to balance load, and keeps track of where each
program is located."

Placement policy: each segment is assigned to the peer with the most
free contributed space, which both balances storage *and* spreads a
program's segments across many peers so concurrent viewers at different
offsets rarely collide on the two-stream limit.

Capacity is accounted in whole segments: a peer contributing 10 GB holds
``floor(10 GB / segment_bytes)`` segments.  Deriving the neighborhood's
cache capacity the same way (:func:`usable_capacity_bytes`) means a
membership decision that fits in bytes always fits physically -- no
fragmentation surprises mid-simulation.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Sequence, Tuple

from repro import units
from repro.errors import PlacementError
from repro.peers.settop import SetTopBox
from repro.trace.records import Program


def segment_bytes(rate_bps: float = units.STREAM_RATE_BPS,
                  segment_seconds: float = units.SEGMENT_SECONDS) -> float:
    """Storage footprint of one full segment."""
    return rate_bps * segment_seconds / units.BITS_PER_BYTE


def cache_footprint_bytes(program: Program) -> float:
    """Bytes the cache charges for a whole program (whole segments).

    The trailing partial segment is rounded up to a full slot, mirroring
    how the placement map reserves space.
    """
    return program.num_segments * segment_bytes()


def usable_capacity_bytes(storage_bytes_per_peer: float, n_peers: int) -> float:
    """Whole-segment cache capacity of ``n_peers`` equal contributions."""
    if storage_bytes_per_peer < 0 or n_peers < 0:
        raise PlacementError(
            f"capacity arguments must be non-negative, got "
            f"{storage_bytes_per_peer} x {n_peers}"
        )
    slots_per_peer = int(storage_bytes_per_peer // segment_bytes())
    return slots_per_peer * segment_bytes() * n_peers


def segment_play_seconds(program: Program, segment_index: int) -> float:
    """Playback seconds contained in one segment of ``program``.

    Every segment holds :data:`~repro.units.SEGMENT_SECONDS` except the
    final one, which holds the remainder.
    """
    if not 0 <= segment_index < program.num_segments:
        raise PlacementError(
            f"segment {segment_index} out of range for program "
            f"{program.program_id} ({program.num_segments} segments)"
        )
    start = segment_index * units.SEGMENT_SECONDS
    return min(units.SEGMENT_SECONDS, program.length_seconds - start)


class PlacementMap:
    """Tracks which peer holds each segment of each cached program.

    The index server calls :meth:`place_program` when a strategy admits a
    program (reserving space immediately -- the decision is binding) and
    :meth:`remove_program` on eviction.  Whether a given segment's bytes
    have actually been captured off a broadcast yet is tracked separately
    by the index server; this map is purely *where they belong*.
    """

    __slots__ = ("_boxes", "_counter", "_heap", "_assignments")

    def __init__(self, boxes: Sequence[SetTopBox]) -> None:
        if not boxes:
            raise PlacementError("placement requires at least one peer")
        self._boxes: List[SetTopBox] = list(boxes)
        # Max-heap by free bytes with a tiebreak counter: (-free, n, box).
        self._counter = itertools.count()
        self._heap: List[Tuple[float, int, SetTopBox]] = [
            (-box.free_bytes, next(self._counter), box) for box in self._boxes
        ]
        heapq.heapify(self._heap)
        #: program_id -> tuple of boxes, one per segment index.
        self._assignments: Dict[int, Tuple[SetTopBox, ...]] = {}

    @property
    def placed_programs(self) -> int:
        """Number of programs currently placed."""
        return len(self._assignments)

    def holder_of(self, program_id: int, segment_index: int) -> SetTopBox:
        """The peer assigned segment ``segment_index`` of ``program_id``.

        Raises
        ------
        PlacementError
            If the program is not placed or the index is out of range.
        """
        assignment = self._assignments.get(program_id)
        if assignment is None:
            raise PlacementError(f"program {program_id} is not placed")
        if not 0 <= segment_index < len(assignment):
            raise PlacementError(
                f"program {program_id} has {len(assignment)} segments, "
                f"requested index {segment_index}"
            )
        return assignment[segment_index]

    def is_placed(self, program_id: int) -> bool:
        """Whether ``program_id`` currently has a placement."""
        return program_id in self._assignments

    def holders(self, program_id: int):
        """Per-segment peer assignment tuple, or ``None`` if not placed.

        The hot-path combination of :meth:`is_placed` + :meth:`holder_of`
        as a single dict lookup with no range check -- callers index the
        returned tuple with segment indices they already validated.
        """
        return self._assignments.get(program_id)

    def place_program(self, program: Program) -> Tuple[SetTopBox, ...]:
        """Assign every segment of ``program`` to a least-loaded peer.

        All-or-nothing: either every segment is reserved or the placement
        fails with no side effects.

        Raises
        ------
        PlacementError
            If the program is already placed or no peer can take a
            segment (only possible when membership capacity accounting
            disagrees with physical capacity -- a caller bug).
        """
        if program.program_id in self._assignments:
            raise PlacementError(f"program {program.program_id} already placed")
        per_segment = segment_bytes()
        chosen: List[SetTopBox] = []
        try:
            for _ in range(program.num_segments):
                box = self._pop_roomiest(per_segment)
                box.reserve(program.program_id, per_segment)
                chosen.append(box)
                heapq.heappush(self._heap, (-box.free_bytes, next(self._counter), box))
        except PlacementError:
            for box in chosen:
                box.release(program.program_id)
            # Re-heapify lazily: stale entries are verified on pop.
            raise
        assignment = tuple(chosen)
        self._assignments[program.program_id] = assignment
        return assignment

    def _pop_roomiest(self, needed_bytes: float) -> SetTopBox:
        """Pop the peer with the most free space, verifying staleness.

        Heap entries carry a free-bytes snapshot; entries whose snapshot
        disagrees with the live value are re-pushed with current data.
        """
        while self._heap:
            neg_free, _, box = heapq.heappop(self._heap)
            if -neg_free != box.free_bytes:
                heapq.heappush(self._heap, (-box.free_bytes, next(self._counter), box))
                continue
            if box.free_bytes + 1e-6 < needed_bytes:
                # Roomiest peer cannot take a segment: physically full.
                heapq.heappush(self._heap, (neg_free, next(self._counter), box))
                raise PlacementError(
                    f"no peer has {needed_bytes:.0f} B free "
                    f"(roomiest: {box.free_bytes:.0f} B)"
                )
            return box
        raise PlacementError("placement heap exhausted")  # pragma: no cover

    def remove_program(self, program_id: int) -> None:
        """Release every reservation held for ``program_id``.

        Idempotent: removing an unplaced program is a no-op, because
        strategies may evict a program whose placement previously failed.
        """
        self.remove_programs((program_id,))

    def remove_programs(self, program_ids) -> None:
        """Release a whole decision's evictions in one batched call.

        Performs exactly the per-program release/heap-push sequence of
        :meth:`remove_program` in order -- placement tie-breaking, and
        therefore every downstream delivery, is bit-identical to the
        serial calls -- but hoists the heap, counter and assignment
        lookups out of the loop.  Multi-victim admissions and oracle
        recomputes hit this with dozens of programs per decision.
        """
        assignments = self._assignments
        heap = self._heap
        counter = self._counter
        heappush = heapq.heappush
        for program_id in program_ids:
            assignment = assignments.pop(program_id, None)
            if assignment is None:
                continue
            # dict.fromkeys deduplicates while preserving assignment
            # order; iterating a set here would vary with object identity
            # hashes and break run-to-run determinism of the placement
            # heap.
            for box in dict.fromkeys(assignment):
                box.release(program_id)
                heappush(heap, (-box.free_bytes, next(counter), box))
