"""The headend index server: request routing and cache orchestration.

Paper section IV-B.1 describes the two delivery flows this module
implements:

* **Cache miss** (Fig 4): the requester asks the index server; the index
  server fetches the segment from the central media server over fiber
  and broadcasts it on the coax; the requester reads it off the wire; if
  the program has been admitted to the cache, a designated peer reads
  the *same broadcast* and stores the segment (no extra traffic).
* **Cache hit** (Fig 5): the index server instructs the peer holding the
  segment to broadcast it; the requester reads it off the wire.  The
  serving peer occupies one of its two channels for the duration.

The index server also fields every session start, feeding the strategy's
popularity model and applying the resulting membership changes to the
physical placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro import units
from repro.cache.base import CacheStrategy, MembershipChange
from repro.cache.segments import PlacementMap
from repro.errors import CacheError, PlacementError
from repro.peers.settop import SetTopBox
from repro.topology.hfc import Neighborhood
from repro.trace.records import Catalog


class DeliveryOutcome:
    """How one segment request was satisfied.

    A plain ``__slots__`` value object rather than a dataclass: one is
    produced per segment request (hundreds of thousands per run), and
    the frozen-dataclass ``object.__setattr__`` constructor showed up in
    profiles.  Treat instances as immutable; server outcomes carry no
    per-request state and are shared singletons.

    Attributes
    ----------
    source:
        ``"peer"`` (cooperative-cache hit), ``"local"`` (segment already
        on the requester's own box -- no coax traffic), or ``"server"``
        (central media server over fiber).
    busy_miss:
        The segment *was* cached but its holder had no free channel, so
        the server had to serve it (the paper's section V-C miss rule).
    filled:
        A peer captured this broadcast, adding the segment to the cache.
    serving_box:
        Peer that served a hit (``None`` for server deliveries).
    """

    __slots__ = ("source", "busy_miss", "filled", "serving_box")

    def __init__(self, source: str, busy_miss: bool = False,
                 filled: bool = False, serving_box: Optional[int] = None) -> None:
        self.source = source
        self.busy_miss = busy_miss
        self.filled = filled
        self.serving_box = serving_box

    @property
    def from_server(self) -> bool:
        """True when the central server supplied the bits."""
        return self.source == "server"

    @property
    def on_coax(self) -> bool:
        """True when the delivery consumed coax broadcast bandwidth."""
        return self.source != "local"

    def _key(self):
        return (self.source, self.busy_miss, self.filled, self.serving_box)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DeliveryOutcome):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeliveryOutcome(source={self.source!r}, "
            f"busy_miss={self.busy_miss}, filled={self.filled}, "
            f"serving_box={self.serving_box})"
        )


#: Shared allocation-free outcomes for the server miss path (the most
#: common deliveries early in a run, and the only ones with no
#: per-request payload).
_SERVER_MISS = DeliveryOutcome("server")
_SERVER_MISS_FILLED = DeliveryOutcome("server", filled=True)
_SERVER_BUSY = DeliveryOutcome("server", busy_miss=True)

#: Integer outcome codes returned by :meth:`IndexServer.request_segment_code`
#: (the columnar engine's delivery path).  The columnar walk collects one
#: code per delivery and derives every counter :meth:`request_segment`
#: would have bumped in a single ``bincount`` per neighborhood, so the
#: per-request path sheds both the outcome object and the stat updates.
CODE_LOCAL = 0
CODE_PEER = 1
CODE_BUSY = 2
CODE_MISS = 3
CODE_MISS_FILL_SKIP = 4
CODE_MISS_FILLED = 5
N_OUTCOME_CODES = 6


@dataclass
class IndexServerStats:
    """Running totals the index server keeps for reporting."""

    sessions: int = 0
    segment_requests: int = 0
    peer_hits: int = 0
    local_hits: int = 0
    server_deliveries: int = 0
    busy_misses: int = 0
    cold_misses: int = 0
    fills: int = 0
    fill_skips: int = 0
    admissions: int = 0
    evictions: int = 0
    placement_failures: int = 0


class IndexServer:
    """Per-neighborhood cache orchestrator.

    Parameters
    ----------
    neighborhood:
        The coax segment this server manages.
    boxes:
        ``user_id -> SetTopBox`` for every subscriber in the neighborhood.
    strategy:
        The (already bound) membership policy.
    placement:
        The physical placement map over the same boxes.
    catalog:
        Program metadata (lengths drive segment counts).
    """

    __slots__ = ("neighborhood", "_boxes", "_strategy", "_placement",
                 "_catalog", "_stored", "_segment_counts", "_lengths",
                 "stats")

    def __init__(
        self,
        neighborhood: Neighborhood,
        boxes: Dict[int, SetTopBox],
        strategy: CacheStrategy,
        placement: PlacementMap,
        catalog: Catalog,
    ) -> None:
        missing = set(neighborhood.user_ids) - set(boxes)
        if missing:
            raise CacheError(
                f"neighborhood {neighborhood.neighborhood_id}: no box for "
                f"users {sorted(missing)[:5]}..."
            )
        self.neighborhood = neighborhood
        self._boxes = boxes
        self._strategy = strategy
        self._placement = placement
        self._catalog = catalog
        #: program_id -> set of segment indices physically captured.
        self._stored: Dict[int, Set[int]] = {}
        #: Per-program segment counts and lengths, flattened out of the
        #: catalog once: the fill path would otherwise recompute
        #: ``Program.num_segments`` (a divmod) per delivery.
        self._segment_counts: List[int] = [p.num_segments for p in catalog]
        self._lengths: List[float] = [p.length_seconds for p in catalog]
        self.stats = IndexServerStats()

    @property
    def strategy(self) -> CacheStrategy:
        """The membership policy this server consults."""
        return self._strategy

    def box_of(self, user_id: int) -> SetTopBox:
        """The requesting subscriber's own set-top box."""
        box = self._boxes.get(user_id)
        if box is None:
            raise CacheError(
                f"user {user_id} is not in neighborhood "
                f"{self.neighborhood.neighborhood_id}"
            )
        return box

    # ------------------------------------------------------------------
    # Session plumbing
    # ------------------------------------------------------------------

    def on_session_start(self, now: float, user_id: int, program_id: int) -> None:
        """Feed the popularity model and apply any membership changes."""
        self.stats.sessions += 1
        change = self._strategy.on_access(now, program_id)
        self._apply_change(change)

    def apply_initial_membership(self, change: MembershipChange) -> None:
        """Apply a strategy's bind-time membership (oracle pre-warm)."""
        self._apply_change(change)

    def _apply_change(self, change: MembershipChange) -> None:
        """Apply one decision's deltas to physical placement, batched.

        Evictions are released through one
        :meth:`~repro.cache.segments.PlacementMap.remove_programs` call
        per decision (the placement map hoists its heap bookkeeping
        across the whole batch) and stats are bumped once per batch --
        a multi-victim LFU admission or an oracle recompute used to pay
        the full per-program call chain for every delta.
        """
        if change.empty:
            return
        evicted = change.evicted
        if evicted:
            self._placement.remove_programs(evicted)
            stored = self._stored
            for program_id in evicted:
                stored.pop(program_id, None)
            self.stats.evictions += len(evicted)
        for program_id in change.admitted:
            try:
                program = self._catalog[program_id]
                self._placement.place_program(program)
                if self._strategy.instant_fill:
                    self._stored[program_id] = set(range(program.num_segments))
                else:
                    self._stored[program_id] = set()
                self.stats.admissions += 1
            except PlacementError:
                # Physical placement refused (can only happen if a caller
                # mis-sized capacity).  Roll the membership back so the
                # strategy's accounting matches reality.
                self.stats.placement_failures += 1
                self._strategy.force_evict(program_id)

    # ------------------------------------------------------------------
    # Segment delivery
    # ------------------------------------------------------------------

    def request_segment(
        self,
        now: float,
        user_id: int,
        program_id: int,
        segment_index: int,
        watch_seconds: float,
    ) -> DeliveryOutcome:
        """Serve one segment request, returning how it was delivered.

        ``watch_seconds`` is how long the viewer will actually consume
        this segment (the final segment of an abandoned session is
        partial); streams and bandwidth are charged for exactly that
        long.
        """
        self.stats.segment_requests += 1
        stored = self._stored.get(program_id)
        if stored is not None and segment_index in stored:
            assignment = self._placement.holders(program_id)
        else:
            assignment = None

        if assignment is not None:
            holder = assignment[segment_index]
            if holder.box_id == user_id:
                # The viewer's own disk: no broadcast, no channel use.
                self.stats.local_hits += 1
                return DeliveryOutcome(source="local", serving_box=holder.box_id)
            if holder.try_open_stream(now, watch_seconds):
                self.stats.peer_hits += 1
                return DeliveryOutcome(source="peer", serving_box=holder.box_id)
            # Holder saturated: the paper's rule is that this *is* a miss.
            self.stats.busy_misses += 1
            self.stats.server_deliveries += 1
            return _SERVER_BUSY

        # Not in cache: central server broadcast (Fig 4), with an
        # opportunistic fill if the program is admitted.
        self.stats.cold_misses += 1
        self.stats.server_deliveries += 1
        if self._try_fill(now, program_id, segment_index, watch_seconds):
            return _SERVER_MISS_FILLED
        return _SERVER_MISS

    def request_segment_code(
        self,
        now: float,
        user_id: int,
        program_id: int,
        segment_index: int,
        watch_seconds: float,
    ) -> int:
        """:meth:`request_segment` for the columnar walk.

        Performs the exact same sequence of state changes (channel
        leases, fill captures, membership-set bookkeeping) but returns
        one of the ``CODE_*`` integers and bumps **no** stats: the
        columnar engine derives every counter from the collected code
        stream after the walk (``core/system.py``).  Keep this method
        a line-for-line mirror of :meth:`request_segment` /
        :meth:`_try_fill` minus the stat updates.
        """
        stored = self._stored.get(program_id)
        if stored is not None and segment_index in stored:
            assignment = self._placement.holders(program_id)
        else:
            assignment = None

        if assignment is not None:
            holder = assignment[segment_index]
            if holder.box_id == user_id:
                return CODE_LOCAL
            if holder.try_open_stream(now, watch_seconds):
                return CODE_PEER
            return CODE_BUSY

        if program_id not in self._strategy:
            return CODE_MISS
        assignment = self._placement.holders(program_id)
        if assignment is None:
            return CODE_MISS
        stored = self._stored.setdefault(program_id, set())
        if segment_index in stored:  # pragma: no cover - guarded above
            return CODE_MISS
        if segment_index < self._segment_counts[program_id] - 1:
            play_seconds = units.SEGMENT_SECONDS
        else:
            play_seconds = (self._lengths[program_id]
                            - segment_index * units.SEGMENT_SECONDS)
        if watch_seconds + 1e-9 < play_seconds:
            return CODE_MISS_FILL_SKIP
        box = assignment[segment_index]
        if not box.try_open_stream(now, watch_seconds):
            return CODE_MISS_FILL_SKIP
        stored.add(segment_index)
        return CODE_MISS_FILLED

    def _try_fill(
        self, now: float, program_id: int, segment_index: int, watch_seconds: float
    ) -> bool:
        """Capture an in-flight broadcast onto the assigned peer.

        Succeeds only when the program is an admitted member, the viewer
        will watch the *whole* segment (a partial broadcast is a partial,
        unusable copy), and the assigned peer has a free channel to tune
        to the broadcast.
        """
        if program_id not in self._strategy:
            return False
        assignment = self._placement.holders(program_id)
        if assignment is None:
            return False
        stored = self._stored.setdefault(program_id, set())
        if segment_index in stored:  # pragma: no cover - guarded by caller
            return False
        # Inlined segment_play_seconds(): every segment holds a full
        # SEGMENT_SECONDS except the last, which holds the remainder --
        # same floats, minus a catalog lookup and divmod per delivery.
        if segment_index < self._segment_counts[program_id] - 1:
            play_seconds = units.SEGMENT_SECONDS
        else:
            play_seconds = (self._lengths[program_id]
                            - segment_index * units.SEGMENT_SECONDS)
        if watch_seconds + 1e-9 < play_seconds:
            self.stats.fill_skips += 1
            return False
        box = assignment[segment_index]
        if not box.try_open_stream(now, watch_seconds):
            self.stats.fill_skips += 1
            return False
        stored.add(segment_index)
        self.stats.fills += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stored_segment_count(self, program_id: int) -> int:
        """Segments of ``program_id`` physically captured so far."""
        return len(self._stored.get(program_id, ()))

    def cached_programs(self) -> Set[int]:
        """Programs currently admitted by the strategy."""
        return set(self._strategy.members)
