"""Cooperative-cache policy engine and the headend index server.

The paper's index server (section IV-B) decides *which programs* live
in a neighborhood's cooperative cache and *where their segments* sit
among the set-top peers.  Since PR 2 those concerns are layered as a
policy engine:

* :mod:`repro.cache.base` -- the strategy substrate:
  :class:`CacheStrategy` owns membership and byte accounting and emits
  :class:`MembershipChange` deltas for the index server to apply.
* :mod:`repro.cache.policies` -- the engine itself.  A policy is the
  composition of an *admission* side (may this program enter?) and an
  *eviction* side (who makes room?), driven through
  :class:`~repro.cache.policies.api.PolicyStrategy`.  Families:
  LRU, windowed LFU (deferred/compacted heap), global LFU, GDSF
  (size-aware frequency), ARC-style adaptive, and threshold-gated
  admission composable with any of them.  Every family registers in
  the decorator-based registry that ``spec_from_name`` and the CLI's
  ``list-strategies`` resolve dynamically.
* :mod:`repro.cache.lru` / :mod:`repro.cache.lfu` /
  :mod:`repro.cache.oracle` / :mod:`repro.cache.global_lfu` -- the
  classic pre-engine implementations.  The oracle (schedule-driven,
  future knowledge) still runs as-is; the others are retained as the
  bit-identical references the equivalence tests
  (:mod:`tests.cache.test_policy_engine`) compare the engine against.
  :class:`~repro.cache.lfu.WindowedCounts` also remains the shared
  sliding-window count source the engine's frequency policies build on.
* :mod:`repro.cache.segments` -- 5-minute segmentation and least-loaded
  placement across peers, with decision-batched release
  (:meth:`~repro.cache.segments.PlacementMap.remove_programs`).
* :mod:`repro.cache.index_server` -- the per-headend orchestrator that
  routes requests, fills segments from broadcasts, and applies
  membership changes to physical placement one batched decision at a
  time.
* :mod:`repro.cache.factory` -- config-level strategy specifications
  used by :class:`repro.core.config.SimulationConfig`, one registered
  spec per policy family.
"""

from repro.cache.base import CacheStrategy, MembershipChange, StrategyContext
from repro.cache.factory import (
    ARCSpec,
    FrequencySketchSpec,
    GDSFSpec,
    GlobalLFUSpec,
    LFUSpec,
    LRUSpec,
    NoCacheSpec,
    OracleSpec,
    StrategySpec,
    ThresholdSpec,
    spec_from_dict,
    spec_from_name,
    spec_to_dict,
)
from repro.cache.index_server import DeliveryOutcome, IndexServer
from repro.cache.lru import LRUStrategy
from repro.cache.lfu import LFUStrategy, WindowedCounts
from repro.cache.oracle import OracleStrategy
from repro.cache.global_lfu import GlobalLFUStrategy, GlobalPopularityFeed
from repro.cache.policies import (
    AdmissionPolicy,
    EvictionPolicy,
    PolicyStrategy,
    iter_policies,
    policy_names,
)

__all__ = [
    "CacheStrategy",
    "MembershipChange",
    "StrategyContext",
    "AdmissionPolicy",
    "EvictionPolicy",
    "PolicyStrategy",
    "WindowedCounts",
    "LRUStrategy",
    "LFUStrategy",
    "OracleStrategy",
    "GlobalLFUStrategy",
    "GlobalPopularityFeed",
    "IndexServer",
    "DeliveryOutcome",
    "StrategySpec",
    "NoCacheSpec",
    "LRUSpec",
    "LFUSpec",
    "OracleSpec",
    "GlobalLFUSpec",
    "GDSFSpec",
    "ARCSpec",
    "ThresholdSpec",
    "FrequencySketchSpec",
    "spec_from_name",
    "spec_from_dict",
    "spec_to_dict",
    "policy_names",
    "iter_policies",
]
