"""Cooperative-cache strategies and the headend index server.

The paper's index server (section IV-B) decides *which programs* live in
a neighborhood's cooperative cache and *where their segments* sit among
the set-top peers.  This package separates those concerns:

* :mod:`repro.cache.base` -- the strategy interface (membership decisions
  at program granularity) and shared context plumbing;
* :mod:`repro.cache.lru` / :mod:`repro.cache.lfu` /
  :mod:`repro.cache.oracle` / :mod:`repro.cache.global_lfu` -- the four
  policies the paper evaluates, plus the no-cache null policy;
* :mod:`repro.cache.segments` -- 5-minute segmentation and least-loaded
  placement across peers;
* :mod:`repro.cache.index_server` -- the per-headend orchestrator that
  routes requests, fills segments from broadcasts, and applies
  membership changes to physical placement;
* :mod:`repro.cache.factory` -- config-level strategy specifications
  used by :class:`repro.core.config.SimulationConfig`.
"""

from repro.cache.base import CacheStrategy, MembershipChange, StrategyContext
from repro.cache.factory import (
    GlobalLFUSpec,
    LFUSpec,
    LRUSpec,
    NoCacheSpec,
    OracleSpec,
    StrategySpec,
    spec_from_name,
)
from repro.cache.index_server import DeliveryOutcome, IndexServer
from repro.cache.lru import LRUStrategy
from repro.cache.lfu import LFUStrategy
from repro.cache.oracle import OracleStrategy
from repro.cache.global_lfu import GlobalLFUStrategy, GlobalPopularityFeed

__all__ = [
    "CacheStrategy",
    "MembershipChange",
    "StrategyContext",
    "LRUStrategy",
    "LFUStrategy",
    "OracleStrategy",
    "GlobalLFUStrategy",
    "GlobalPopularityFeed",
    "IndexServer",
    "DeliveryOutcome",
    "StrategySpec",
    "NoCacheSpec",
    "LRUSpec",
    "LFUSpec",
    "OracleSpec",
    "GlobalLFUSpec",
    "spec_from_name",
]
