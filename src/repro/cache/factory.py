"""Config-level strategy specifications.

A :class:`StrategySpec` is a small, immutable description of a caching
policy that a :class:`~repro.core.config.SimulationConfig` can carry
around, serialize into experiment labels, and instantiate once per
neighborhood at system-build time.  Specs isolate the simulator from
policy constructor signatures (the oracle needs future knowledge, the
global LFU needs a shared feed, ...).

Every spec registers itself in the policy registry
(:mod:`repro.cache.policies.registry`) via the ``@policy`` decorator;
:func:`spec_from_name` and the CLI's ``list-strategies`` subcommand
resolve that table dynamically, so adding a spec here is all it takes
to make a strategy runnable everywhere.

Default builds run on the policy engine
(:class:`~repro.cache.policies.api.PolicyStrategy`); the paper-era
specs also accept ``classic=True`` to build the original push-on-change
implementations, kept as the bit-identical reference the equivalence
tests compare against.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import units
from repro.cache.base import CacheStrategy, NullStrategy
from repro.cache.global_lfu import GlobalLFUStrategy, GlobalPopularityFeed
from repro.cache.lfu import LFUStrategy
from repro.cache.lru import LRUStrategy
from repro.cache.oracle import OracleStrategy
from repro.cache.policies import (
    ARCEviction,
    AlwaysAdmit,
    FrequencySketchAdmission,
    GDSFEviction,
    GlobalLFUEviction,
    LFUEviction,
    LRUEviction,
    PolicyStrategy,
    ThresholdAdmission,
    get_policy,
    named_eviction,
    policy,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BuildInputs:
    """Everything a spec may need to construct per-neighborhood strategies.

    Attributes
    ----------
    n_neighborhoods:
        How many strategy instances to build.
    future_accesses:
        Per-neighborhood ``program_id -> sorted session start times``;
        populated by the runner only when
        :attr:`StrategySpec.requires_future_knowledge` is set.
    """

    n_neighborhoods: int
    future_accesses: Optional[Sequence[Dict[int, List[float]]]] = None


@dataclass(frozen=True)
class BuiltStrategies:
    """Result of building a spec: one strategy per neighborhood.

    ``feed`` is the shared cross-neighborhood popularity feed, present
    only for global-LFU builds; the simulator must push *every* session
    into it.
    """

    strategies: List[CacheStrategy]
    feed: Optional[GlobalPopularityFeed] = None


class StrategySpec(ABC):
    """Immutable description of a caching policy."""

    __slots__ = ()

    #: Set by specs whose strategies need the full future access schedule.
    requires_future_knowledge: bool = False

    #: Set by specs whose strategies share one cross-neighborhood
    #: popularity feed (:class:`GlobalPopularityFeed`).  Such builds
    #: couple every neighborhood through mutable state, so a metro run
    #: cannot be partitioned into independent shards.
    uses_global_feed: bool = False

    @property
    @abstractmethod
    def label(self) -> str:
        """Short human-readable identifier for tables and legends."""

    @abstractmethod
    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        """Instantiate one strategy per neighborhood."""


@policy("none", summary="no cache: the paper's 17 Gb/s reference line")
@dataclass(frozen=True)
class NoCacheSpec(StrategySpec):
    """The paper's no-cache reference line."""

    @property
    def label(self) -> str:
        return "none"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([NullStrategy() for _ in range(inputs.n_neighborhoods)])


@policy("lru", summary="recency queue, unconditional admission (IV-B.2)")
@dataclass(frozen=True)
class LRUSpec(StrategySpec):
    """Least-recently-used membership (paper section IV-B.2)."""

    #: Build the pre-policy-engine implementation (equivalence reference).
    classic: bool = False

    @property
    def label(self) -> str:
        return "lru"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        if self.classic:
            return BuiltStrategies(
                [LRUStrategy() for _ in range(inputs.n_neighborhoods)]
            )
        return BuiltStrategies([
            PolicyStrategy(AlwaysAdmit(), LRUEviction())
            for _ in range(inputs.n_neighborhoods)
        ])


@policy("lfu", summary="windowed frequency ranking, LRU tie-break (IV-B.2)")
@dataclass(frozen=True)
class LFUSpec(StrategySpec):
    """Sliding-window LFU (paper section IV-B.2, swept in Fig 11)."""

    history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS
    #: Build the pre-policy-engine implementation (equivalence reference).
    classic: bool = False

    @property
    def label(self) -> str:
        if self.history_hours is None:
            return "lfu(inf)"
        return f"lfu({self.history_hours:g}h)"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        if self.classic:
            return BuiltStrategies(
                [LFUStrategy(self.history_hours) for _ in range(inputs.n_neighborhoods)]
            )
        return BuiltStrategies([
            PolicyStrategy(AlwaysAdmit(), LFUEviction(self.history_hours))
            for _ in range(inputs.n_neighborhoods)
        ])


@policy("oracle", summary="future-knowledge ideal benchmark (VI-A)")
@dataclass(frozen=True)
class OracleSpec(StrategySpec):
    """Future-knowledge benchmark (paper section VI-A)."""

    window_days: float = 3.0
    recompute_hours: float = 6.0
    requires_future_knowledge = True

    @property
    def label(self) -> str:
        return f"oracle({self.window_days:g}d)"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        if inputs.future_accesses is None:
            raise ConfigurationError(
                "OracleSpec.build needs per-neighborhood future access "
                "schedules; the runner must supply them"
            )
        if len(inputs.future_accesses) != inputs.n_neighborhoods:
            raise ConfigurationError(
                f"got futures for {len(inputs.future_accesses)} neighborhoods, "
                f"expected {inputs.n_neighborhoods}"
            )
        strategies: List[CacheStrategy] = [
            OracleStrategy(
                future_accesses=futures,
                window_days=self.window_days,
                recompute_hours=self.recompute_hours,
            )
            for futures in inputs.future_accesses
        ]
        return BuiltStrategies(strategies)


@policy("global-lfu", summary="LFU blending the system-wide feed (Fig 13)")
@dataclass(frozen=True)
class GlobalLFUSpec(StrategySpec):
    """LFU with system-wide popularity data (paper Fig 13).

    ``lag_seconds=0`` is the "Global" bar; 1,800 and 7,200 are the
    "30 minute lag" and "2 hour lag" bars.
    """

    history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS
    lag_seconds: float = 0.0
    #: Build the pre-policy-engine implementation (equivalence reference).
    classic: bool = False

    uses_global_feed = True

    @property
    def label(self) -> str:
        history = "inf" if self.history_hours is None else f"{self.history_hours:g}h"
        if self.lag_seconds:
            return f"global-lfu({history}, lag={self.lag_seconds / 60:g}m)"
        return f"global-lfu({history})"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        window = (
            None
            if self.history_hours is None
            else self.history_hours * units.SECONDS_PER_HOUR
        )
        feed = GlobalPopularityFeed(window_seconds=window, lag_seconds=self.lag_seconds)
        if self.classic:
            strategies: List[CacheStrategy] = [
                GlobalLFUStrategy(feed, neighborhood_id, self.history_hours)
                for neighborhood_id in range(inputs.n_neighborhoods)
            ]
        else:
            strategies = [
                PolicyStrategy(
                    AlwaysAdmit(),
                    GlobalLFUEviction(feed, neighborhood_id, self.history_hours),
                )
                for neighborhood_id in range(inputs.n_neighborhoods)
            ]
        return BuiltStrategies(strategies, feed=feed)


@policy("gdsf", summary="size-aware frequency: small-and-popular wins")
@dataclass(frozen=True)
class GDSFSpec(StrategySpec):
    """Greedy-Dual-Size-Frequency over the sliding history window."""

    history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS

    @property
    def label(self) -> str:
        if self.history_hours is None:
            return "gdsf(inf)"
        return f"gdsf({self.history_hours:g}h)"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([
            PolicyStrategy(AlwaysAdmit(), GDSFEviction(self.history_hours))
            for _ in range(inputs.n_neighborhoods)
        ])


@policy("arc", summary="adaptive recency/frequency split with ghost lists")
@dataclass(frozen=True)
class ARCSpec(StrategySpec):
    """ARC-style adaptive policy: no history-length knob to tune.

    ``ghost_budget`` caps each ghost list at that fraction of cache
    capacity (1.0 = canonical ARC); it is the family's one sweepable
    parameter (see ``examples/scenarios/arc_ghost_sweep.json``).
    """

    ghost_budget: float = 1.0

    @property
    def label(self) -> str:
        if self.ghost_budget == 1.0:
            return "arc"
        return f"arc(g={self.ghost_budget:g})"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([
            PolicyStrategy(AlwaysAdmit(), ARCEviction(self.ghost_budget))
            for _ in range(inputs.n_neighborhoods)
        ])


@policy("threshold", summary="popularity-gated admission over any eviction")
@dataclass(frozen=True)
class ThresholdSpec(StrategySpec):
    """Admission filtered by a popularity threshold, any eviction family.

    ``eviction`` names the family that owns the ranking (``lru``,
    ``lfu``, ``gdsf`` or ``arc``); admission waits for ``min_accesses``
    inside ``window_hours`` before a program may enter.
    """

    min_accesses: int = 2
    window_hours: Optional[float] = 24.0
    eviction: str = "lru"

    @property
    def label(self) -> str:
        window = "inf" if self.window_hours is None else f"{self.window_hours:g}h"
        return f"thr({self.min_accesses}@{window})+{self.eviction}"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([
            PolicyStrategy(
                ThresholdAdmission(self.min_accesses, self.window_hours),
                named_eviction(self.eviction),
            )
            for _ in range(inputs.n_neighborhoods)
        ])


@policy("frequency-sketch",
        summary="TinyLFU-style sketch-gated admission over any eviction")
@dataclass(frozen=True)
class FrequencySketchSpec(StrategySpec):
    """Admission gated by a count-min sketch estimate (TinyLFU-style).

    The O(1)-memory cousin of :class:`ThresholdSpec`: a program enters
    once its sketch estimate reaches ``min_estimate``; all counters
    halve every ``decay_accesses`` observations so stale popularity
    fades.  ``eviction`` names the family that owns the ranking.
    """

    min_estimate: int = 2
    width: int = 1024
    depth: int = 4
    decay_accesses: int = 8192
    eviction: str = "lru"

    @property
    def label(self) -> str:
        return f"sketch({self.min_estimate})+{self.eviction}"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([
            PolicyStrategy(
                FrequencySketchAdmission(
                    min_estimate=self.min_estimate,
                    width=self.width,
                    depth=self.depth,
                    decay_accesses=self.decay_accesses,
                ),
                named_eviction(self.eviction),
            )
            for _ in range(inputs.n_neighborhoods)
        ])


# ---------------------------------------------------------------------------
# Name / dict serialization (the scenario layer's strategy wire format)
# ---------------------------------------------------------------------------


def _spec_fields(spec_class: type) -> List[dataclasses.Field]:
    """The spec's tunable dataclass fields, in declaration order.

    ``classic`` (the pre-engine reference build used by the equivalence
    tests) is excluded exactly as the registry's parameter listing
    excludes it: it selects an implementation, not a policy.
    """
    return [
        field for field in dataclasses.fields(spec_class)
        if field.init and field.name != "classic"
    ]


def _coerce_arg(raw: str) -> object:
    """Interpret one ``name:arg`` token (int, float, None, or string)."""
    lowered = raw.lower()
    if lowered in ("none", "null", "inf"):
        return None
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def spec_from_name(name: str) -> StrategySpec:
    """Build a spec from a registered short name, with optional args.

    The accepted names are exactly the policy registry's contents (see
    ``repro-vod list-strategies``); unknown names raise with that list
    and a close-match suggestion.  A ``:`` introduces parameters --
    positional (in dataclass field order) or ``key=value``, comma
    separated::

        spec_from_name("lfu")                      # LFUSpec()
        spec_from_name("lfu:72")                   # LFUSpec(history_hours=72)
        spec_from_name("lfu:inf")                  # LFUSpec(history_hours=None)
        spec_from_name("threshold:3,24,gdsf")      # positional
        spec_from_name("threshold:eviction=gdsf")  # keyword
    """
    base, _, argstr = name.partition(":")
    info = get_policy(base.strip())
    if not argstr.strip():
        return info.spec_class()
    fields = _spec_fields(info.spec_class)
    names = [field.name for field in fields]
    kwargs: Dict[str, object] = {}
    for position, token in enumerate(argstr.split(",")):
        token = token.strip()
        if "=" in token:
            key, _, raw = token.partition("=")
            key = key.strip()
            if key not in names:
                raise ConfigurationError(
                    f"strategy {base!r} has no parameter {key!r} "
                    f"(have {names})"
                )
        else:
            if position >= len(fields):
                raise ConfigurationError(
                    f"strategy {base!r} takes at most {len(fields)} "
                    f"parameters ({names}), got extra {token!r}"
                )
            key, raw = fields[position].name, token
        if key in kwargs:
            raise ConfigurationError(
                f"strategy {base!r} parameter {key!r} given twice in {name!r}"
            )
        kwargs[key] = _coerce_arg(raw.strip())
    return info.spec_class(**kwargs)


def spec_to_dict(spec: StrategySpec) -> Dict[str, object]:
    """Serialize a spec to a plain dict: registry name + non-default fields.

    The inverse of :func:`spec_from_dict` (and of :func:`spec_from_name`
    for default parameters): reconstructing from the dict yields an
    equal spec for every registered family, which is what makes
    scenario/sweep JSON files lossless.
    """
    name = getattr(spec, "policy_name", None)
    if name is None:
        raise ConfigurationError(
            f"{type(spec).__name__} is not a registered policy spec; "
            f"register it with @policy to make it serializable"
        )
    payload: Dict[str, object] = {"name": name}
    for field in dataclasses.fields(spec):
        if not field.init:
            continue
        value = getattr(spec, field.name)
        if field.default is not dataclasses.MISSING and value == field.default:
            continue
        payload[field.name] = value
    return payload


def spec_from_dict(payload: Dict[str, object]) -> StrategySpec:
    """Rebuild a spec from its :func:`spec_to_dict` form."""
    if not isinstance(payload, dict) or "name" not in payload:
        raise ConfigurationError(
            f"a strategy dict needs a 'name' key, got {payload!r}"
        )
    params = dict(payload)
    info = get_policy(str(params.pop("name")))
    valid = {field.name for field in dataclasses.fields(info.spec_class)
             if field.init}
    unknown = sorted(set(params) - valid)
    if unknown:
        raise ConfigurationError(
            f"strategy {info.name!r} has no parameters {unknown} "
            f"(have {sorted(valid)})"
        )
    return info.spec_class(**params)
