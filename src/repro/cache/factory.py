"""Config-level strategy specifications.

A :class:`StrategySpec` is a small, immutable description of a caching
policy that a :class:`~repro.core.config.SimulationConfig` can carry
around, serialize into experiment labels, and instantiate once per
neighborhood at system-build time.  Specs isolate the simulator from
policy constructor signatures (the oracle needs future knowledge, the
global LFU needs a shared feed, ...).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import units
from repro.cache.base import CacheStrategy, NullStrategy
from repro.cache.global_lfu import GlobalLFUStrategy, GlobalPopularityFeed
from repro.cache.lfu import LFUStrategy
from repro.cache.lru import LRUStrategy
from repro.cache.oracle import OracleStrategy
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BuildInputs:
    """Everything a spec may need to construct per-neighborhood strategies.

    Attributes
    ----------
    n_neighborhoods:
        How many strategy instances to build.
    future_accesses:
        Per-neighborhood ``program_id -> sorted session start times``;
        populated by the runner only when
        :attr:`StrategySpec.requires_future_knowledge` is set.
    """

    n_neighborhoods: int
    future_accesses: Optional[Sequence[Dict[int, List[float]]]] = None


@dataclass(frozen=True)
class BuiltStrategies:
    """Result of building a spec: one strategy per neighborhood.

    ``feed`` is the shared cross-neighborhood popularity feed, present
    only for global-LFU builds; the simulator must push *every* session
    into it.
    """

    strategies: List[CacheStrategy]
    feed: Optional[GlobalPopularityFeed] = None


class StrategySpec(ABC):
    """Immutable description of a caching policy."""

    #: Set by specs whose strategies need the full future access schedule.
    requires_future_knowledge: bool = False

    @property
    @abstractmethod
    def label(self) -> str:
        """Short human-readable identifier for tables and legends."""

    @abstractmethod
    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        """Instantiate one strategy per neighborhood."""


@dataclass(frozen=True)
class NoCacheSpec(StrategySpec):
    """The paper's no-cache reference line."""

    @property
    def label(self) -> str:
        return "none"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([NullStrategy() for _ in range(inputs.n_neighborhoods)])


@dataclass(frozen=True)
class LRUSpec(StrategySpec):
    """Least-recently-used membership (paper section IV-B.2)."""

    @property
    def label(self) -> str:
        return "lru"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies([LRUStrategy() for _ in range(inputs.n_neighborhoods)])


@dataclass(frozen=True)
class LFUSpec(StrategySpec):
    """Sliding-window LFU (paper section IV-B.2, swept in Fig 11)."""

    history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS

    @property
    def label(self) -> str:
        if self.history_hours is None:
            return "lfu(inf)"
        return f"lfu({self.history_hours:g}h)"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        return BuiltStrategies(
            [LFUStrategy(self.history_hours) for _ in range(inputs.n_neighborhoods)]
        )


@dataclass(frozen=True)
class OracleSpec(StrategySpec):
    """Future-knowledge benchmark (paper section VI-A)."""

    window_days: float = 3.0
    recompute_hours: float = 6.0
    requires_future_knowledge = True

    @property
    def label(self) -> str:
        return f"oracle({self.window_days:g}d)"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        if inputs.future_accesses is None:
            raise ConfigurationError(
                "OracleSpec.build needs per-neighborhood future access "
                "schedules; the runner must supply them"
            )
        if len(inputs.future_accesses) != inputs.n_neighborhoods:
            raise ConfigurationError(
                f"got futures for {len(inputs.future_accesses)} neighborhoods, "
                f"expected {inputs.n_neighborhoods}"
            )
        strategies: List[CacheStrategy] = [
            OracleStrategy(
                future_accesses=futures,
                window_days=self.window_days,
                recompute_hours=self.recompute_hours,
            )
            for futures in inputs.future_accesses
        ]
        return BuiltStrategies(strategies)


@dataclass(frozen=True)
class GlobalLFUSpec(StrategySpec):
    """LFU with system-wide popularity data (paper Fig 13).

    ``lag_seconds=0`` is the "Global" bar; 1,800 and 7,200 are the
    "30 minute lag" and "2 hour lag" bars.
    """

    history_hours: Optional[float] = LFUStrategy.DEFAULT_HISTORY_HOURS
    lag_seconds: float = 0.0

    @property
    def label(self) -> str:
        history = "inf" if self.history_hours is None else f"{self.history_hours:g}h"
        if self.lag_seconds:
            return f"global-lfu({history}, lag={self.lag_seconds / 60:g}m)"
        return f"global-lfu({history})"

    def build(self, inputs: BuildInputs) -> BuiltStrategies:
        window = (
            None
            if self.history_hours is None
            else self.history_hours * units.SECONDS_PER_HOUR
        )
        feed = GlobalPopularityFeed(window_seconds=window, lag_seconds=self.lag_seconds)
        strategies: List[CacheStrategy] = [
            GlobalLFUStrategy(feed, neighborhood_id, self.history_hours)
            for neighborhood_id in range(inputs.n_neighborhoods)
        ]
        return BuiltStrategies(strategies, feed=feed)


def spec_from_name(name: str) -> StrategySpec:
    """Build a default-parameter spec from a short name.

    Accepted names: ``none``, ``lru``, ``lfu``, ``oracle``,
    ``global-lfu``.  Used by the CLI.
    """
    table = {
        "none": NoCacheSpec,
        "lru": LRUSpec,
        "lfu": LFUSpec,
        "oracle": OracleSpec,
        "global-lfu": GlobalLFUSpec,
    }
    try:
        return table[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; choose from {sorted(table)}"
        ) from None
