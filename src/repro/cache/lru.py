"""Least-Recently-Used cache membership.

Paper section IV-B.2: "This strategy maintains a queue of each file
sorted by when it was last accessed.  When a file is accessed, it is
located in the queue, updated, and moved to the front.  If it is not in
the cache already, it is added immediately.  When the cache is full the
program at the end of the queue is discarded."

Implementation: an ``OrderedDict`` as the recency queue (most recent at
the end).  Admission is unconditional on access; eviction pops from the
front until the newcomer fits.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.base import CacheStrategy, MembershipChange


class LRUStrategy(CacheStrategy):
    """Least-recently-used, program-granularity cache policy."""

    name = "lru"

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        super().__init__()
        self._queue: "OrderedDict[int, None]" = OrderedDict()

    def on_access(self, now: float, program_id: int) -> MembershipChange:
        change = MembershipChange()
        if program_id in self._queue:
            self._queue.move_to_end(program_id)
            return change

        footprint = self.context.footprint_of(program_id)
        if footprint > self.context.capacity_bytes:
            # A program that can never fit is simply not cacheable; the
            # paper's 1 TB neighborhoods hold ~165 programs, so this only
            # matters for deliberately tiny test configurations.
            return change

        while footprint > self.free_bytes:
            victim, _ = self._queue.popitem(last=False)
            self._evict(victim)
            change.evicted.append(victim)

        self._admit(program_id)
        self._queue[program_id] = None
        change.admitted.append(program_id)
        return change

    def _on_force_evict(self, program_id: int) -> None:
        self._queue.pop(program_id, None)
