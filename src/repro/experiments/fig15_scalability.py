"""Fig 15 / Table 16(a) -- scalability in population and catalog size.

The paper's capstone: scale the trace multiplicatively (section V-A) in
user population (x1-x5, up to ~2M subscribers) and catalog size (x1-x5)
and measure the LFU-cached server load in 1,000-peer, 10 GB-per-peer
neighborhoods.  Table 16(a) reports 2.14 Gb/s at (1,1) rising to
45.64 Gb/s at (5,5); the 17 Gb/s no-cache line is crossed only when both
dimensions grow together.  Fig 16(b)/(c) are the first column and first
row of the same grid and are served from this module's memoized grid.

Since the capstone migration this module is a declarative
:class:`~repro.scenario.Sweep`: two *workload* axes (``population_x``
x ``catalog_x`` trace transforms) over one base scenario with the
``no_cache`` baseline column, executed through the parallel task runner
-- each grid cell's transformed trace is regenerated inside whichever
worker runs it, so ``--workers`` fans the 25 cells out across CPUs.
``repro-vod describe fig15`` prints the grid as JSON.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig15"
TITLE = "Server load under population x catalog scaling (Table 16a)"
PAPER_EXPECTATION = (
    "load linear in population at fixed catalog (constant ~88% saving); "
    "catalog penalty diminishing; no-cache threshold (17 Gb/s at x1 "
    "population) crossed only by combined growth"
)

NOMINAL_NEIGHBORHOOD = 1_000
PER_PEER_GB = 10.0
FACTORS = (1, 2, 3, 4, 5)

#: Scalability sweeps shorten the window: the grid multiplies event
#: volume by up to 25x, and rates are stationary in window length.
GRID_DAYS = 13.0
GRID_WARMUP_DAYS = 8.0

COLUMNS = (
    "population_x",
    "catalog_x",
    "server_gbps",
    "no_cache_gbps",
    "reduction_pct",
    "hit_pct",
)

#: Memoized grids, keyed by the *full* profile identity plus the factor
#: set -- profiles are frozen dataclasses, so two profiles sharing a
#: name and scale but differing in ``days``/``warmup_days`` (e.g. via
#: ``with_days``) get distinct entries instead of a stale grid.
_GRID_CACHE: Dict[
    Tuple[ExperimentProfile, Tuple[int, ...]],
    Dict[Tuple[int, int], Dict[str, float]],
] = {}


def _grid_profile(profile: ExperimentProfile) -> ExperimentProfile:
    """The profile's shortened measurement window for grid runs."""
    return profile.with_days(
        min(profile.days, GRID_DAYS),
        min(profile.warmup_days, GRID_WARMUP_DAYS),
    )


def _check_factors(factors: Tuple[int, ...]) -> Tuple[int, ...]:
    """Grid factor sets must contain the x1 anchor cell.

    Every derived quantity -- the no-cache threshold, Fig 16b's
    ``ratio_vs_x1``, Fig 16c's first-row extract -- is anchored at
    (1, 1), so a factor set without 1 fails eagerly instead of with a
    KeyError deep in row reshaping.
    """
    if 1 not in factors:
        raise ConfigurationError(
            f"scalability factors must include the x1 anchor, got "
            f"{list(factors)}"
        )
    return factors


def base_scenario(profile: ExperimentProfile) -> Scenario:
    """The grid's shared operating point (also Fig 16b/c's base)."""
    grid_profile = _grid_profile(profile)
    return Scenario(
        trace=grid_profile.model(),
        config=SimulationConfig(
            neighborhood_size=grid_profile.neighborhood_size(
                NOMINAL_NEIGHBORHOOD),
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(),
            warmup_days=grid_profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=grid_profile.scale,
        baselines=("no_cache",),
    )


def sweep(profile: Optional[ExperimentProfile] = None,
          factors: Sequence[int] = FACTORS) -> Sweep:
    """The Table 16(a) grid as a declarative sweep over trace transforms."""
    profile = profile or get_profile()
    factors = _check_factors(tuple(factors))
    return Sweep(
        base=base_scenario(profile),
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "population_x": [
                {"value": factor, "cols": {"population_x": factor}}
                for factor in factors
            ],
            "catalog_x": [
                {"value": factor, "cols": {"catalog_x": factor}}
                for factor in factors
            ],
        },
    )


def scalability_grid(
    profile: Optional[ExperimentProfile] = None,
    factors: Sequence[int] = FACTORS,
) -> Dict[Tuple[int, int], Dict[str, float]]:
    """The (population, catalog) -> metrics grid, memoized per profile."""
    profile = profile or get_profile()
    factors = tuple(factors)
    key = (profile, factors)
    cached = _GRID_CACHE.get(key)
    if cached is not None:
        return cached

    grid: Dict[Tuple[int, int], Dict[str, float]] = {}
    for row in run_sweep(sweep(profile, factors)):
        grid[(row["population_x"], row["catalog_x"])] = {
            "server_gbps": row["server_gbps"],
            "no_cache_gbps": row["no_cache_gbps"],
            "reduction_pct": row["reduction_pct"],
            "hit_pct": row["hit_pct"],
        }
    _GRID_CACHE[key] = grid
    return grid


def run(profile: Optional[ExperimentProfile] = None,
        factors: Sequence[int] = FACTORS) -> ExperimentResult:
    """Regenerate the full Table 16(a) grid."""
    profile = profile or get_profile()
    factors = tuple(factors)
    grid = scalability_grid(profile, factors)
    rows = [
        {
            "population_x": population_factor,
            "catalog_x": catalog_factor,
            **{k: round(v, 3) for k, v in metrics.items()},
        }
        for (population_factor, catalog_factor), metrics in sorted(grid.items())
    ]
    threshold = grid[(1, 1)]["no_cache_gbps"]
    over = sum(1 for r in rows if r["server_gbps"] > threshold)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "population_x",
            "catalog_x",
            "server_gbps",
            "no_cache_gbps",
            "reduction_pct",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"{over}/{len(rows)} grid cells exceed the x1-population "
            f"no-cache threshold of {threshold:.1f} Gb/s"
        ),
        extras={"grid": grid, "threshold_gbps": threshold},
    )
