"""Fig 15 / Table 16(a) -- scalability in population and catalog size.

The paper's capstone: scale the trace multiplicatively (section V-A) in
user population (x1-x5, up to ~2M subscribers) and catalog size (x1-x5)
and measure the LFU-cached server load in 1,000-peer, 10 GB-per-peer
neighborhoods.  Table 16(a) reports 2.14 Gb/s at (1,1) rising to
45.64 Gb/s at (5,5); the 17 Gb/s no-cache line is crossed only when both
dimensions grow together.  Fig 16(b)/(c) are the first column and first
row of the same grid and are served from this module's memoized grid.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.baselines.no_cache import no_cache_peak_gbps
from repro.trace.scaling import scale_catalog, scale_population

EXPERIMENT_ID = "fig15"
TITLE = "Server load under population x catalog scaling (Table 16a)"
PAPER_EXPECTATION = (
    "load linear in population at fixed catalog (constant ~88% saving); "
    "catalog penalty diminishing; no-cache threshold (17 Gb/s at x1 "
    "population) crossed only by combined growth"
)

NOMINAL_NEIGHBORHOOD = 1_000
PER_PEER_GB = 10.0
FACTORS = (1, 2, 3, 4, 5)

#: Scalability sweeps shorten the window: the grid multiplies event
#: volume by up to 25x, and rates are stationary in window length.
GRID_DAYS = 13.0
GRID_WARMUP_DAYS = 8.0

_GRID_CACHE: Dict[Tuple[str, float], Dict[Tuple[int, int], Dict[str, float]]] = {}


def scalability_grid(
    profile: Optional[ExperimentProfile] = None,
) -> Dict[Tuple[int, int], Dict[str, float]]:
    """The (population, catalog) -> metrics grid, memoized per profile."""
    profile = profile or get_profile()
    key = (profile.name, profile.scale)
    cached = _GRID_CACHE.get(key)
    if cached is not None:
        return cached

    grid_profile = profile.with_days(
        min(profile.days, GRID_DAYS),
        min(profile.warmup_days, GRID_WARMUP_DAYS),
    )
    trace = base_trace(grid_profile)
    size = grid_profile.neighborhood_size(NOMINAL_NEIGHBORHOOD)
    warmup_seconds = grid_profile.warmup_days * 86_400.0

    grid: Dict[Tuple[int, int], Dict[str, float]] = {}
    for population_factor in FACTORS:
        population_trace = scale_population(trace, population_factor)
        for catalog_factor in FACTORS:
            scaled = scale_catalog(population_trace, catalog_factor)
            config = SimulationConfig(
                neighborhood_size=size,
                per_peer_storage_gb=PER_PEER_GB,
                strategy=LFUSpec(),
                warmup_days=grid_profile.warmup_days,
            )
            result = run_simulation(scaled, config)
            grid[(population_factor, catalog_factor)] = {
                "server_gbps": grid_profile.extrapolate(result.peak_server_gbps()),
                "no_cache_gbps": grid_profile.extrapolate(
                    no_cache_peak_gbps(scaled, warmup_seconds=warmup_seconds)
                ),
                "reduction_pct": 100.0 * result.peak_reduction(),
                "hit_pct": 100.0 * result.counters.hit_ratio,
            }
    _GRID_CACHE[key] = grid
    return grid


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the full Table 16(a) grid."""
    profile = profile or get_profile()
    grid = scalability_grid(profile)
    rows = [
        {
            "population_x": population_factor,
            "catalog_x": catalog_factor,
            **{k: round(v, 3) for k, v in metrics.items()},
        }
        for (population_factor, catalog_factor), metrics in sorted(grid.items())
    ]
    threshold = grid[(1, 1)]["no_cache_gbps"]
    over = sum(1 for r in rows if r["server_gbps"] > threshold)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "population_x",
            "catalog_x",
            "server_gbps",
            "no_cache_gbps",
            "reduction_pct",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"{over}/25 grid cells exceed the x1-population no-cache "
            f"threshold of {threshold:.1f} Gb/s"
        ),
        extras={"grid": grid, "threshold_gbps": threshold},
    )
