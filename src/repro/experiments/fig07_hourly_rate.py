"""Fig 7 -- most popular hours for VoD usage.

The paper plots the average delivered data rate per hour of day over the
whole trace: a 19:00-23:00 prime-time bulge reaching ~17-20 Gb/s, the
window every subsequent load figure is reported against.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.trace.stats import PEAK_HOURS, hourly_data_rate

EXPERIMENT_ID = "fig07"
TITLE = "Average delivered data rate per hour of day"
PAPER_EXPECTATION = (
    "prime-time bulge between 19:00 and 23:00 peaking near 17-20 Gb/s at "
    "full scale, with a deep overnight trough"
)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the 24-point Fig 7 series (extrapolated to full scale)."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    rates = hourly_data_rate(trace)
    rows = [
        {
            "hour": hour,
            "gbps_full_scale": profile.extrapolate(units.to_gbps(rate)),
            "peak_window": hour in PEAK_HOURS,
        }
        for hour, rate in enumerate(rates)
    ]
    peak = sum(rows[h]["gbps_full_scale"] for h in PEAK_HOURS) / len(PEAK_HOURS)
    trough = min(row["gbps_full_scale"] for row in rows)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["hour", "gbps_full_scale", "peak_window"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"peak-window mean {peak:.1f} Gb/s (paper anchor 17); "
            f"overnight trough {trough:.1f} Gb/s"
        ),
    )
