"""Fig 12 -- changes in file popularity in the days after introduction.

Paper: "A week after introduction, programs are accessed 80% less often
than the first day."  This dynamic is why over-long LFU histories hurt
(Fig 11): week-old observations describe programs whose moment has
passed.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.trace.stats import decay_ratio, popularity_decay

EXPERIMENT_ID = "fig12"
TITLE = "Program popularity in the days after introduction"
PAPER_EXPECTATION = "sessions/day fall ~80% between day 0 and day 7"

MAX_DAYS = 8


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 12 decay curve."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    max_days = min(MAX_DAYS, int(trace.span_days) - 1)
    curve = popularity_decay(trace, max_days=max_days, min_first_day_sessions=5)
    rows = [
        {
            "days_since_introduction": day,
            "mean_sessions_per_day": value,
            "relative_to_day0": value / curve[0] if curve[0] else 0.0,
        }
        for day, value in enumerate(curve)
    ]
    drop_day = min(7, len(curve) - 1)
    drop = decay_ratio(curve, day=drop_day)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["days_since_introduction", "mean_sessions_per_day", "relative_to_day0"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=f"measured drop by day {drop_day}: {drop:.0%} (paper: ~80% by day 7)",
        extras={"curve": curve, "drop": drop},
    )
