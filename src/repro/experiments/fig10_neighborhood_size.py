"""Fig 10 -- strategy comparison at fixed 1 TB cache, varying neighborhoods.

The paper holds the total cache at 1 TB while the neighborhood grows
from 100 to 1,000 peers (so per-peer storage shrinks 10 GB -> 1 GB).
More peers means more request observations for the LFU popularity
estimator, so LFU improves with neighborhood size even though the cache
cannot hold anything more -- the paper's evidence that popularity
prediction quality matters.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.factory import LFUSpec, LRUSpec, OracleSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult, strategy_rows
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile

EXPERIMENT_ID = "fig10"
TITLE = "Server load for varying neighborhood sizes (total cache fixed at 1 TB)"
PAPER_EXPECTATION = (
    "LFU improves as the neighborhood grows (10x the usage data at 1,000 "
    "peers); LRU stays flat; Oracle best throughout"
)

#: (nominal neighborhood size, per-peer GB) pairs keeping the total at 1 TB.
SWEEP = ((100, 10.0), (500, 2.0), (1_000, 1.0))


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 10 bars."""
    profile = profile or get_profile()
    trace = base_trace(profile)

    configs: List[SimulationConfig] = []
    for nominal, per_peer_gb in SWEEP:
        for spec in (OracleSpec(), LFUSpec(), LRUSpec()):
            configs.append(
                SimulationConfig(
                    neighborhood_size=profile.neighborhood_size(nominal),
                    per_peer_storage_gb=per_peer_gb,
                    strategy=spec,
                    warmup_days=profile.warmup_days,
                )
            )
    rows = strategy_rows(trace, configs, profile, trace_model=profile.model())
    index = 0
    for nominal, _ in SWEEP:
        for _ in range(3):
            rows[index]["nominal_neighborhood"] = nominal
            index += 1
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "nominal_neighborhood",
            "strategy",
            "server_gbps",
            "server_gbps_p5",
            "server_gbps_p95",
            "reduction_pct",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
