"""Fig 10 -- strategy comparison at fixed 1 TB cache, varying neighborhoods.

The paper holds the total cache at 1 TB while the neighborhood grows
from 100 to 1,000 peers (so per-peer storage shrinks 10 GB -> 1 GB).
More peers means more request observations for the LFU popularity
estimator, so LFU improves with neighborhood size even though the cache
cannot hold anything more -- the paper's evidence that popularity
prediction quality matters.

Declarative since the scenario API redesign: the neighborhood axis
moves *two* config fields per point (size up, per-peer storage down),
which is exactly what a sweep point's ``set`` mapping expresses.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.factory import LFUSpec, LRUSpec, OracleSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig10"
TITLE = "Server load for varying neighborhood sizes (total cache fixed at 1 TB)"
PAPER_EXPECTATION = (
    "LFU improves as the neighborhood grows (10x the usage data at 1,000 "
    "peers); LRU stays flat; Oracle best throughout"
)

#: (nominal neighborhood size, per-peer GB) pairs keeping the total at 1 TB.
SWEEP = ((100, 10.0), (500, 2.0), (1_000, 1.0))

COLUMNS = (
    "nominal_neighborhood",
    "strategy",
    "server_gbps",
    "server_gbps_p5",
    "server_gbps_p95",
    "reduction_pct",
)


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The Fig 10 grid as a declarative sweep."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(SWEEP[0][0]),
            per_peer_storage_gb=SWEEP[0][1],
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "nominal_neighborhood": [
                {"set": {"config.neighborhood_size":
                         profile.neighborhood_size(nominal),
                         "config.per_peer_storage_gb": per_peer_gb},
                 "cols": {"nominal_neighborhood": nominal}}
                for nominal, per_peer_gb in SWEEP
            ],
            "config.strategy": [OracleSpec(), LFUSpec(), LRUSpec()],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 10 bars."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
