"""Fig 13 -- using global popularity data for the LFU strategy.

The paper compares four popularity feeds for a 500-peer neighborhood
across per-peer storage of 1-10 GB: complete global data used instantly,
global data batched with 30-minute and 2-hour lags, and purely local
data.  Finding: global knowledge helps, lag variants land in between,
but "the improvement in all cases is small".
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.factory import GlobalLFUSpec, LFUSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult, strategy_rows
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile

EXPERIMENT_ID = "fig13"
TITLE = "Global vs. local popularity data for LFU (500-peer neighborhoods)"
PAPER_EXPECTATION = (
    "global <= global+30min <= global+2h <= local in server load, with "
    "small absolute differences"
)

NOMINAL_NEIGHBORHOOD = 500
PER_PEER_GB_SWEEP = (1.0, 3.0, 5.0, 10.0)

#: (label, spec factory) in the paper's bar order.
VARIANTS = (
    ("global", lambda: GlobalLFUSpec(lag_seconds=0.0)),
    ("global+30min", lambda: GlobalLFUSpec(lag_seconds=1_800.0)),
    ("global+2h", lambda: GlobalLFUSpec(lag_seconds=7_200.0)),
    ("local", lambda: LFUSpec()),
)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 13 bars."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    size = profile.neighborhood_size(NOMINAL_NEIGHBORHOOD)

    configs: List[SimulationConfig] = []
    labels: List[str] = []
    for per_peer_gb in PER_PEER_GB_SWEEP:
        for label, make_spec in VARIANTS:
            labels.append(label)
            configs.append(
                SimulationConfig(
                    neighborhood_size=size,
                    per_peer_storage_gb=per_peer_gb,
                    strategy=make_spec(),
                    warmup_days=profile.warmup_days,
                )
            )
    rows = strategy_rows(trace, configs, profile, trace_model=profile.model())
    for row, label in zip(rows, labels):
        row["feed"] = label
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["per_peer_gb", "feed", "server_gbps", "reduction_pct", "hit_pct"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
