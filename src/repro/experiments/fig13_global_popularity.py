"""Fig 13 -- using global popularity data for the LFU strategy.

The paper compares four popularity feeds for a 500-peer neighborhood
across per-peer storage of 1-10 GB: complete global data used instantly,
global data batched with 30-minute and 2-hour lags, and purely local
data.  Finding: global knowledge helps, lag variants land in between,
but "the improvement in all cases is small".

Declarative since the scenario API redesign: a storage axis crossed
with a feed axis whose points set the strategy spec and tag the row
with the paper's bar label.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.factory import GlobalLFUSpec, LFUSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig13"
TITLE = "Global vs. local popularity data for LFU (500-peer neighborhoods)"
PAPER_EXPECTATION = (
    "global <= global+30min <= global+2h <= local in server load, with "
    "small absolute differences"
)

NOMINAL_NEIGHBORHOOD = 500
PER_PEER_GB_SWEEP = (1.0, 3.0, 5.0, 10.0)

#: (label, spec factory) in the paper's bar order.
VARIANTS = (
    ("global", lambda: GlobalLFUSpec(lag_seconds=0.0)),
    ("global+30min", lambda: GlobalLFUSpec(lag_seconds=1_800.0)),
    ("global+2h", lambda: GlobalLFUSpec(lag_seconds=7_200.0)),
    ("local", lambda: LFUSpec()),
)

COLUMNS = ("per_peer_gb", "feed", "server_gbps", "reduction_pct", "hit_pct")


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The Fig 13 grid as a declarative sweep."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOOD),
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "config.per_peer_storage_gb": list(PER_PEER_GB_SWEEP),
            "feed": [
                {"set": {"config.strategy": make_spec()},
                 "cols": {"feed": label}}
                for label, make_spec in VARIANTS
            ],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 13 bars."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
