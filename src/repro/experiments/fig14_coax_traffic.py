"""Fig 14 -- traffic on the coaxial network with varying neighborhood sizes.

The feasibility check (paper section VI-B): coax traffic grows strictly
linearly with neighborhood size, reaching ~450 Mb/s on average (650 Mb/s
in poor cases) at 1,000 subscribers -- under 17% of the coax line even
in extreme cases.  Broadcast delivery means a peer-served file costs the
same coax bandwidth as a server-served one, so caching cannot and need
not reduce this number.
"""

from __future__ import annotations

from typing import List, Optional

from repro import units
from repro.analysis.feasibility import assess_feasibility
from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile

EXPERIMENT_ID = "fig14"
TITLE = "Coax traffic vs. neighborhood size"
PAPER_EXPECTATION = (
    "strictly linear growth; ~450 Mb/s mean and ~650 Mb/s p95 at 1,000 "
    "subscribers; <17% of coax capacity in extreme cases"
)

NOMINAL_NEIGHBORHOODS = (200, 400, 600, 800, 1_000)
PER_PEER_GB = 10.0


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 14 curve (coax Mb/s per nominal neighborhood)."""
    profile = profile or get_profile()
    trace = base_trace(profile)

    rows: List[dict] = []
    for nominal in NOMINAL_NEIGHBORHOODS:
        config = SimulationConfig(
            neighborhood_size=profile.neighborhood_size(nominal),
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(),
            warmup_days=profile.warmup_days,
        )
        result = run_simulation(trace, config)
        feasibility = assess_feasibility(result)
        rows.append(
            {
                "nominal_neighborhood": nominal,
                "coax_mean_mbps": profile.extrapolate(result.coax_peak_mean_mbps()),
                "coax_p95_mbps": profile.extrapolate(result.coax_peak_quantile_mbps()),
                "utilization_pct": 100.0
                * profile.extrapolate(feasibility.worst_case_utilization),
                "feasible": profile.extrapolate(feasibility.worst_coax_mbps)
                <= units.to_mbps(units.COAX_VOD_CAPACITY_BPS),
            }
        )
    largest = rows[-1]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "nominal_neighborhood",
            "coax_mean_mbps",
            "coax_p95_mbps",
            "utilization_pct",
            "feasible",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"at 1,000 subscribers: mean {largest['coax_mean_mbps']:.0f} Mb/s, "
            f"p95 {largest['coax_p95_mbps']:.0f} Mb/s, worst-case "
            f"{largest['utilization_pct']:.1f}% of the VoD coax budget"
        ),
    )
