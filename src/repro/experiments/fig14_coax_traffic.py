"""Fig 14 -- traffic on the coaxial network with varying neighborhood sizes.

The feasibility check (paper section VI-B): coax traffic grows strictly
linearly with neighborhood size, reaching ~450 Mb/s on average (650 Mb/s
in poor cases) at 1,000 subscribers -- under 17% of the coax line even
in extreme cases.  Broadcast delivery means a peer-served file costs the
same coax bandwidth as a server-served one, so caching cannot and need
not reduce this number.

Since the capstone migration this module is a declarative
:class:`~repro.scenario.Sweep`: one neighborhood-size axis over a base
scenario that requests the ``coax`` metric set
(:mod:`repro.scenario.metrics`), which merges the coax rates and the
feasibility verdict into every row.  ``repro-vod describe fig14``
prints it as JSON.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig14"
TITLE = "Coax traffic vs. neighborhood size"
PAPER_EXPECTATION = (
    "strictly linear growth; ~450 Mb/s mean and ~650 Mb/s p95 at 1,000 "
    "subscribers; <17% of coax capacity in extreme cases"
)

NOMINAL_NEIGHBORHOODS = (200, 400, 600, 800, 1_000)
PER_PEER_GB = 10.0

COLUMNS = (
    "nominal_neighborhood",
    "coax_mean_mbps",
    "coax_p95_mbps",
    "utilization_pct",
    "feasible",
)


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The Fig 14 curve as a declarative sweep with coax metrics."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(
                NOMINAL_NEIGHBORHOODS[-1]),
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(),
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
        metrics=("coax",),
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "config.neighborhood_size": [
                {"value": profile.neighborhood_size(nominal),
                 "cols": {"nominal_neighborhood": nominal}}
                for nominal in NOMINAL_NEIGHBORHOODS
            ],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 14 curve (coax Mb/s per nominal neighborhood)."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    largest = rows[-1]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"at 1,000 subscribers: mean {largest['coax_mean_mbps']:.0f} Mb/s, "
            f"p95 {largest['coax_p95_mbps']:.0f} Mb/s, worst-case "
            f"{largest['utilization_pct']:.1f}% of the VoD coax budget"
        ),
    )
