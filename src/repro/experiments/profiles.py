"""Experiment scale profiles.

The paper simulates 41,698 users against an 8,278-program catalog for
seven months.  A pure-Python event simulator cannot sweep dozens of
configurations at that scale in CI, so experiments run at a *scaled*
operating point chosen to preserve every ratio the results depend on:

* **population, catalog, and neighborhood sizes all scale by the same
  factor ``f``** -- so each (scaled) neighborhood still sees the paper's
  per-program demand density, and the cache-to-catalog size ratio at
  every sweep point is unchanged (per-peer storage stays nominal);
* **rates extrapolate linearly** -- the paper itself demonstrates server
  load is linear in population (Fig 16b), so full-scale load is the
  measured load divided by ``f``.  Per-neighborhood coax traffic
  likewise scales with neighborhood size and is extrapolated the same
  way when quoted for nominal sizes.

``REPRO_PROFILE`` selects the profile for benchmarks and the CLI:
``fast`` (default), ``medium``, or ``paper`` (full scale -- hours).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.trace.records import Trace
from repro.trace.synthetic import (
    POWERINFO_PROGRAMS,
    POWERINFO_USERS,
    PowerInfoModel,
    cached_trace,
)


@dataclass(frozen=True)
class ExperimentProfile:
    """A scale point for running the paper's experiments.

    Attributes
    ----------
    name:
        Identifier used in reports and the ``REPRO_PROFILE`` variable.
    scale:
        The common factor ``f`` applied to population, catalog, and
        neighborhood sizes.
    days / warmup_days:
        Simulated window and the cold-cache prefix excluded from rates.
    seed:
        Workload seed (same across profiles so traces nest predictably).
    """

    name: str
    scale: float
    days: float
    warmup_days: float
    seed: int = 2007

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1], got {self.scale}")
        if self.days <= self.warmup_days:
            raise ConfigurationError(
                f"days ({self.days}) must exceed warmup_days ({self.warmup_days})"
            )

    # ------------------------------------------------------------------
    # Scaled dimensions
    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        """Scaled subscriber population."""
        return max(50, round(POWERINFO_USERS * self.scale))

    @property
    def n_programs(self) -> int:
        """Scaled catalog size."""
        return max(20, round(POWERINFO_PROGRAMS * self.scale))

    def neighborhood_size(self, nominal: int) -> int:
        """Scaled peer count for a paper-nominal neighborhood size."""
        if nominal <= 0:
            raise ConfigurationError(
                f"nominal neighborhood size must be positive, got {nominal}"
            )
        return max(5, round(nominal * self.scale))

    # ------------------------------------------------------------------
    # Extrapolation back to paper scale
    # ------------------------------------------------------------------

    def extrapolate(self, measured: float) -> float:
        """Full-scale equivalent of a measured, population-linear rate."""
        return measured / self.scale

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------

    def model(self) -> PowerInfoModel:
        """The workload model at this profile's operating point."""
        return PowerInfoModel(
            n_users=self.n_users,
            n_programs=self.n_programs,
            days=self.days,
            seed=self.seed,
        )

    def with_days(self, days: float, warmup_days: Optional[float] = None
                  ) -> "ExperimentProfile":
        """Copy with a different window (used by heavyweight sweeps)."""
        return replace(
            self,
            days=days,
            warmup_days=self.warmup_days if warmup_days is None else warmup_days,
        )


#: Default profile: ~3,300 users, ~660 programs, 80-peer scaled
#: neighborhoods; 20 simulated days with a 12-day warm-up so metering
#: sees a steady-state cache.  Each simulator run takes seconds.
FAST = ExperimentProfile(name="fast", scale=0.08, days=20.0, warmup_days=12.0)

#: Higher-fidelity profile for reported numbers (~12,500 users).
MEDIUM = ExperimentProfile(name="medium", scale=0.20, days=24.0, warmup_days=14.0)

#: Full paper scale over a two-week window.  Hours of wall time.
PAPER = ExperimentProfile(name="paper", scale=1.0, days=28.0, warmup_days=16.0)

_BY_NAME = {p.name: p for p in (FAST, MEDIUM, PAPER)}


def get_profile(name: Optional[str] = None) -> ExperimentProfile:
    """Resolve a profile by name, falling back to ``REPRO_PROFILE``."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "fast")
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown profile {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def base_trace(profile: ExperimentProfile) -> Trace:
    """The (memoized) base workload trace for a profile.

    Every experiment at a given profile shares this trace, mirroring how
    the paper drives every configuration from the same PowerInfo data.
    The memo lives in :func:`repro.trace.synthetic.cached_trace`, keyed
    by the workload model itself, so scenario runs of the same model
    share it too.
    """
    return cached_trace(profile.model())
