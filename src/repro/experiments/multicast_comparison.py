"""Section IV-A -- the quantitative "why not multicast" comparison.

Not a numbered figure, but the paper's design argument deserves its own
regenerable exhibit: measure what a generous batching+patching multicast
could save on the same workload, alongside the skew and attrition facts,
and contrast with the cooperative cache's saving.

Since the capstone migration the measurement is a one-point
:class:`~repro.scenario.Sweep` whose scenario requests the
``multicast`` baseline (:mod:`repro.baselines.registry`): the
cooperative-cache run and the multicast bound land in one row, and
:func:`run` reshapes that row into the two-approach table.  ``repro-vod
describe multicast`` prints the scenario as JSON.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.analysis.multicast import why_not_multicast
from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "multicast"
TITLE = "Why not multicast: achievable savings vs. the cooperative cache"
PAPER_EXPECTATION = (
    "outside the head program, concurrent audiences are too small for "
    "trees; >50% of sessions abandon within minutes; the cache's saving "
    "should comfortably beat the multicast bound"
)

NOMINAL_NEIGHBORHOOD = 1_000
PER_PEER_GB = 10.0

COLUMNS = (
    "strategy",
    "server_gbps",
    "reduction_pct",
    "hit_pct",
    "multicast_saving_pct",
    "multicast_mean_group",
    "multicast_singleton_pct",
)


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The comparison as a one-point sweep with the multicast baseline."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOOD),
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(),
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
        baselines=("multicast",),
    )
    return Sweep(base=base, sweep_id=EXPERIMENT_ID, title=TITLE,
                 columns=COLUMNS)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Compare multicast and cooperative-cache savings on one workload.

    The notes need the full section IV-A case (skew + attrition + the
    multicast report), so the report is taken from
    :func:`why_not_multicast` and the sweep executes *without* the
    ``multicast`` baseline -- evaluating the model once, exactly like
    the pre-migration loop.  File-driven runs of :func:`sweep` get the
    baseline columns instead (proven equal to the case's report in the
    capstone equivalence tests).
    """
    profile = profile or get_profile()
    declared = sweep(profile)
    base = dataclasses.replace(declared.base, baselines=())
    row = run_sweep(dataclasses.replace(declared, base=base))[0]
    case = why_not_multicast(base_trace(profile))

    rows = [
        {
            "approach": "batching+patching multicast",
            "server_saving_pct": 100.0 * case.multicast.savings_fraction,
            "detail": (
                f"mean group {case.multicast.mean_group_size:.1f}, "
                f"{case.multicast.fraction_singleton_groups:.0%} "
                f"singleton streams"
            ),
        },
        {
            "approach": "cooperative cache (LFU, 10 TB)",
            "server_saving_pct": row["reduction_pct"],
            "detail": f"hit ratio {row['hit_pct']:.0f}%",
        },
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["approach", "server_saving_pct", "detail"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=case.summary(),
        extras={"case": case},
    )
