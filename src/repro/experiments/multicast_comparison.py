"""Section IV-A -- the quantitative "why not multicast" comparison.

Not a numbered figure, but the paper's design argument deserves its own
regenerable exhibit: measure what a generous batching+patching multicast
could save on the same workload, alongside the skew and attrition facts,
and contrast with the cooperative cache's saving.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.multicast import why_not_multicast
from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile

EXPERIMENT_ID = "multicast"
TITLE = "Why not multicast: achievable savings vs. the cooperative cache"
PAPER_EXPECTATION = (
    "outside the head program, concurrent audiences are too small for "
    "trees; >50% of sessions abandon within minutes; the cache's saving "
    "should comfortably beat the multicast bound"
)

NOMINAL_NEIGHBORHOOD = 1_000
PER_PEER_GB = 10.0


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Compare multicast and cooperative-cache savings on one workload."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    case = why_not_multicast(trace)

    cache_result = run_simulation(
        trace,
        SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOOD),
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(),
            warmup_days=profile.warmup_days,
        ),
    )

    rows = [
        {
            "approach": "batching+patching multicast",
            "server_saving_pct": 100.0 * case.multicast.savings_fraction,
            "detail": (
                f"mean group {case.multicast.mean_group_size:.1f}, "
                f"{case.multicast.fraction_singleton_groups:.0%} singleton streams"
            ),
        },
        {
            "approach": "cooperative cache (LFU, 10 TB)",
            "server_saving_pct": 100.0 * cache_result.peak_reduction(),
            "detail": f"hit ratio {cache_result.counters.hit_ratio:.0%}",
        },
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["approach", "server_saving_pct", "detail"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=case.summary(),
        extras={"case": case},
    )
