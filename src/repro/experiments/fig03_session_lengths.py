"""Fig 3 -- CDF of session lengths for the most popular program.

Paper: "For this 100 minute program, we see that 50% of the sessions
last less than 8 minutes.  Only 13% of all sessions surpass the half way
mark."  Short attention spans are the paper's second strike against
multicast trees.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.trace.stats import attrition_summary, session_length_cdf

EXPERIMENT_ID = "fig03"
TITLE = "Session-length CDF of the most popular program"
PAPER_EXPECTATION = (
    "median session < ~8 min; only ~13% of sessions pass the halfway mark "
    "of a ~100-minute program"
)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 3 CDF checkpoints for the head program."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    program_id = trace.most_popular_program()
    cdf = session_length_cdf(trace, program_id)
    attrition = attrition_summary(trace, program_id)

    checkpoint_minutes = (2, 4, 8, 15, 30, 50, 75, 100)
    rows = [
        {
            "minutes": minutes,
            "cdf": cdf.probability_at(minutes * units.SECONDS_PER_MINUTE),
        }
        for minutes in checkpoint_minutes
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["minutes", "cdf"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"program {program_id}: length "
            f"{attrition.program_length_seconds / units.SECONDS_PER_MINUTE:.0f} min, "
            f"median session {attrition.median_session_seconds / units.SECONDS_PER_MINUTE:.1f} min, "
            f"{attrition.fraction_past_halfway:.0%} pass halfway, "
            f"{attrition.fraction_completing:.0%} complete"
        ),
        extras={"cdf": cdf, "attrition": attrition},
    )
