"""Fig 16(b) -- server load under population increase alone.

The first column of Table 16(a): with the catalog fixed, doubling the
population doubles the cached server load while the *percentage* saving
stays pinned at ~88% -- the paper's demonstration that peer-to-peer
capacity grows with the subscriber base.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentResult
from repro.experiments.fig15_scalability import FACTORS, scalability_grid
from repro.experiments.profiles import ExperimentProfile, get_profile

EXPERIMENT_ID = "fig16b"
TITLE = "Server load vs. population increase (catalog fixed)"
PAPER_EXPECTATION = (
    "linear: load at xN is ~N times the x1 load; reduction stays ~constant"
)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Extract the population column from the scalability grid."""
    profile = profile or get_profile()
    grid = scalability_grid(profile)
    base = grid[(1, 1)]["server_gbps"]
    rows = []
    for factor in FACTORS:
        metrics = grid[(factor, 1)]
        rows.append(
            {
                "population_x": factor,
                "server_gbps": metrics["server_gbps"],
                "ratio_vs_x1": metrics["server_gbps"] / base if base else 0.0,
                "reduction_pct": metrics["reduction_pct"],
            }
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["population_x", "server_gbps", "ratio_vs_x1", "reduction_pct"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
