"""Fig 16(b) -- server load under population increase alone.

The first column of Table 16(a): with the catalog fixed, doubling the
population doubles the cached server load while the *percentage* saving
stays pinned at ~88% -- the paper's demonstration that peer-to-peer
capacity grows with the subscriber base.

Scenario-backed: :func:`sweep` is the standalone population column (a
one-axis ``population_x`` sweep, describable and runnable from a file);
:func:`run` extracts that column from Fig 15's memoized scenario grid so
``repro-vod all`` never simulates a cell twice.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.fig15_scalability import (
    FACTORS,
    base_scenario,
    scalability_grid,
)
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Sweep

EXPERIMENT_ID = "fig16b"
TITLE = "Server load vs. population increase (catalog fixed)"
PAPER_EXPECTATION = (
    "linear: load at xN is ~N times the x1 load; reduction stays ~constant"
)

COLUMNS = ("population_x", "server_gbps", "no_cache_gbps",
           "reduction_pct", "hit_pct")


def sweep(profile: Optional[ExperimentProfile] = None,
          factors: Sequence[int] = FACTORS) -> Sweep:
    """The population column as a standalone declarative sweep."""
    profile = profile or get_profile()
    return Sweep(
        base=base_scenario(profile).with_label(EXPERIMENT_ID),
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "population_x": [
                {"value": factor, "cols": {"population_x": factor}}
                for factor in tuple(factors)
            ],
        },
    )


def run(profile: Optional[ExperimentProfile] = None,
        factors: Sequence[int] = FACTORS) -> ExperimentResult:
    """Extract the population column from the scalability grid."""
    profile = profile or get_profile()
    factors = tuple(factors)
    grid = scalability_grid(profile, factors)
    base = grid[(1, 1)]["server_gbps"]
    rows = []
    for factor in factors:
        metrics = grid[(factor, 1)]
        rows.append(
            {
                "population_x": factor,
                "server_gbps": metrics["server_gbps"],
                "ratio_vs_x1": metrics["server_gbps"] / base if base else 0.0,
                "reduction_pct": metrics["reduction_pct"],
            }
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["population_x", "server_gbps", "ratio_vs_x1", "reduction_pct"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
