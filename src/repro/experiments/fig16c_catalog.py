"""Fig 16(c) -- server load under catalog increase alone.

The first row of Table 16(a): growing the catalog dilutes per-program
popularity and so erodes the cache's coverage of the head, but the most
popular files still dominate, so the penalty *diminishes* with each
additional factor -- unlike the linear population column.

Scenario-backed: :func:`sweep` is the standalone catalog row (a one-axis
``catalog_x`` sweep, describable and runnable from a file); :func:`run`
extracts that row from Fig 15's memoized scenario grid so ``repro-vod
all`` never simulates a cell twice.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.base import ExperimentResult
from repro.experiments.fig15_scalability import (
    FACTORS,
    base_scenario,
    scalability_grid,
)
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Sweep

EXPERIMENT_ID = "fig16c"
TITLE = "Server load vs. catalog increase (population fixed)"
PAPER_EXPECTATION = (
    "sub-linear, diminishing increments (paper row: 2.14, 5.07, 6.98, "
    "8.23, 9.16 Gb/s); stays below the 17 Gb/s no-cache threshold"
)

COLUMNS = ("catalog_x", "server_gbps", "no_cache_gbps",
           "reduction_pct", "hit_pct")


def sweep(profile: Optional[ExperimentProfile] = None,
          factors: Sequence[int] = FACTORS) -> Sweep:
    """The catalog row as a standalone declarative sweep."""
    profile = profile or get_profile()
    return Sweep(
        base=base_scenario(profile).with_label(EXPERIMENT_ID),
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "catalog_x": [
                {"value": factor, "cols": {"catalog_x": factor}}
                for factor in tuple(factors)
            ],
        },
    )


def run(profile: Optional[ExperimentProfile] = None,
        factors: Sequence[int] = FACTORS) -> ExperimentResult:
    """Extract the catalog row from the scalability grid."""
    profile = profile or get_profile()
    factors = tuple(factors)
    grid = scalability_grid(profile, factors)
    rows = []
    previous = None
    for factor in factors:
        metrics = grid[(1, factor)]
        increment = (
            metrics["server_gbps"] - previous if previous is not None else 0.0
        )
        rows.append(
            {
                "catalog_x": factor,
                "server_gbps": metrics["server_gbps"],
                "increment_gbps": increment,
                "reduction_pct": metrics["reduction_pct"],
            }
        )
        previous = metrics["server_gbps"]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["catalog_x", "server_gbps", "increment_gbps", "reduction_pct"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
