"""Ablation -- how much does the two-channel set-top limit cost?

The paper's section V-C imposes the constraint that a set-top box "can
only be active on two streams", and makes busy peers a miss source.  The
paper asserts the limit matters but never quantifies it.  This ablation
sweeps the per-box channel budget: 1 (a box can either serve or view,
not both), the paper's 2, and a hypothetical 4-tuner box, measuring how
busy-miss traffic and peak server load respond.

Expected shape: the jump from 1 to 2 channels removes most busy misses
(with one channel a viewing box can never serve); 2 to 4 buys little,
because segment placement already spreads a program's segments across
many peers.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile

EXPERIMENT_ID = "ablation-tuners"
TITLE = "Ablation: set-top channel budget (paper fixes this at 2)"
PAPER_EXPECTATION = (
    "not evaluated in the paper; the V-C design discussion predicts the "
    "two-channel limit is workable, i.e. busy misses stay a small share"
)

NOMINAL_NEIGHBORHOOD = 1_000
PER_PEER_GB = 10.0
CHANNEL_SWEEP = (1, 2, 4)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Sweep the per-box stream budget and report busy-miss pressure."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    size = profile.neighborhood_size(NOMINAL_NEIGHBORHOOD)

    rows: List[dict] = []
    for channels in CHANNEL_SWEEP:
        config = SimulationConfig(
            neighborhood_size=size,
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(),
            max_streams_per_peer=channels,
            warmup_days=profile.warmup_days,
        )
        result = run_simulation(trace, config)
        counters = result.counters
        busy_share = (
            counters.busy_misses / counters.segment_requests
            if counters.segment_requests
            else 0.0
        )
        rows.append(
            {
                "channels": channels,
                "server_gbps": profile.extrapolate(result.peak_server_gbps()),
                "reduction_pct": 100.0 * result.peak_reduction(),
                "busy_miss_pct": 100.0 * busy_share,
                "fill_skips": counters.fill_skips,
            }
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["channels", "server_gbps", "reduction_pct", "busy_miss_pct",
                 "fill_skips"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes="channels=1 forbids serve-while-view; 2 is the paper's set-top",
    )
