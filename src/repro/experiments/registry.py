"""Experiment registry: look up paper exhibits by id.

Every exhibit registers its implementing module; modules that expose a
declarative ``sweep(profile)`` (since the capstone migration that is
the whole config-sweeping family -- fig08-fig11, fig13-fig16c,
``policies``, and ``multicast``) are additionally *describable*:
``repro-vod describe <id>`` prints their scenario/sweep JSON.
"""

from __future__ import annotations

from types import ModuleType
from typing import Dict, List

from repro.errors import ConfigurationError, suggest
from repro.experiments import (
    ablation_tuners,
    fig02_popularity_skew,
    fig03_session_lengths,
    fig06_program_length,
    fig07_hourly_rate,
    fig08_cache_size,
    fig09_cache_size_by_neighborhood,
    fig10_neighborhood_size,
    fig11_history_length,
    fig12_popularity_decay,
    fig13_global_popularity,
    fig14_coax_traffic,
    fig15_scalability,
    fig16b_population,
    fig16c_catalog,
    multicast_comparison,
    policy_matchup,
)

_MODULES: List[ModuleType] = [
    fig02_popularity_skew,
    fig03_session_lengths,
    fig06_program_length,
    fig07_hourly_rate,
    fig08_cache_size,
    fig09_cache_size_by_neighborhood,
    fig10_neighborhood_size,
    fig11_history_length,
    fig12_popularity_decay,
    fig13_global_popularity,
    fig14_coax_traffic,
    fig15_scalability,
    fig16b_population,
    fig16c_catalog,
    multicast_comparison,
    ablation_tuners,
    policy_matchup,
]


def all_experiments() -> Dict[str, ModuleType]:
    """Experiment id -> implementing module, in paper order."""
    return {module.EXPERIMENT_ID: module for module in _MODULES}


def get_experiment(experiment_id: str) -> ModuleType:
    """The module regenerating one exhibit.

    Raises
    ------
    ConfigurationError
        For unknown ids (with the list of valid ones).
    """
    table = all_experiments()
    try:
        return table[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}"
            f"{suggest(experiment_id, sorted(table))} "
            f"(choose from {sorted(table)})"
        ) from None


def describable_experiments() -> List[str]:
    """Experiment ids that expose a declarative ``sweep(profile)``."""
    return [
        experiment_id
        for experiment_id, module in all_experiments().items()
        if hasattr(module, "sweep")
    ]
