"""Fig 6 -- inferring program lengths from the session-length ECDF jump.

The PowerInfo trace lacks program running times; the paper recovers them
from the pronounced ECDF jump contributed by viewers who watch to the
end ("We extrapolated the program lengths by manually inspecting the
ECDFs for every program").  This experiment runs the automated version
of that inspection over the busiest programs and scores it against the
generator's ground truth -- something the paper could not do.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.trace.stats import infer_program_length

EXPERIMENT_ID = "fig06"
TITLE = "Program-length inference from session-length ECDF jumps"
PAPER_EXPECTATION = (
    "every program's ECDF shows a jump at the true running time "
    "(e.g. ~1 hour for the Fig 6 program); lengths are recoverable from it"
)

#: How many of the busiest programs to score.
TOP_PROGRAMS = 25

#: Tolerance for calling an inference correct (one segment).
TOLERANCE_SECONDS = units.SEGMENT_SECONDS


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Infer lengths for the busiest programs and score vs. ground truth."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    counts = trace.sessions_per_program()
    busiest = sorted(counts, key=lambda pid: (-counts[pid], pid))[:TOP_PROGRAMS]

    durations_by_program = {pid: [] for pid in busiest}
    for record in trace:
        bucket = durations_by_program.get(record.program_id)
        if bucket is not None:
            bucket.append(record.duration_seconds)

    rows = []
    correct = 0
    for program_id in busiest:
        true_length = trace.catalog[program_id].length_seconds
        inferred = infer_program_length(durations_by_program[program_id])
        ok = abs(inferred - true_length) <= TOLERANCE_SECONDS
        correct += ok
        rows.append(
            {
                "program_id": program_id,
                "sessions": counts[program_id],
                "true_min": true_length / units.SECONDS_PER_MINUTE,
                "inferred_min": inferred / units.SECONDS_PER_MINUTE,
                "correct": ok,
            }
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["program_id", "sessions", "true_min", "inferred_min", "correct"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"{correct}/{len(busiest)} of the busiest programs inferred "
            f"within one segment ({TOLERANCE_SECONDS:.0f} s)"
        ),
    )
