"""Fig 9 -- server load vs. total cache size (per-peer storage fixed).

The companion of Fig 8: per-peer storage is pinned to the paper's 10 GB
ceiling and the total cache grows with the neighborhood instead
(100 peers = 1 TB ... 1,000 peers = 10 TB).  The paper finds the same
load curve as Fig 8, showing total cache size is what matters, however
it is assembled.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.factory import LFUSpec, LRUSpec, OracleSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult, strategy_rows
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile

EXPERIMENT_ID = "fig09"
TITLE = "Server load vs. total cache size (10 GB per peer, growing neighborhoods)"
PAPER_EXPECTATION = (
    "same curve as Fig 8: the total cache size drives the saving, whether "
    "built from more peers or bigger disks"
)

PER_PEER_GB = 10.0
#: Nominal neighborhood sizes giving 1/3/5/10 TB totals at 10 GB per peer.
NOMINAL_NEIGHBORHOODS = (100, 300, 500, 1_000)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 9 bars."""
    profile = profile or get_profile()
    trace = base_trace(profile)

    configs: List[SimulationConfig] = []
    for nominal in NOMINAL_NEIGHBORHOODS:
        for spec in (OracleSpec(), LFUSpec(), LRUSpec()):
            configs.append(
                SimulationConfig(
                    neighborhood_size=profile.neighborhood_size(nominal),
                    per_peer_storage_gb=PER_PEER_GB,
                    strategy=spec,
                    warmup_days=profile.warmup_days,
                )
            )
    rows = strategy_rows(trace, configs, profile, trace_model=profile.model())
    index = 0
    for nominal in NOMINAL_NEIGHBORHOODS:
        for _ in range(3):
            rows[index]["nominal_neighborhood"] = nominal
            rows[index]["total_cache_tb"] = nominal * PER_PEER_GB / 1_000.0
            index += 1
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "total_cache_tb",
            "nominal_neighborhood",
            "strategy",
            "server_gbps",
            "server_gbps_p5",
            "server_gbps_p95",
            "reduction_pct",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
