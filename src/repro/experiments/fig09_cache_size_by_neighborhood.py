"""Fig 9 -- server load vs. total cache size (per-peer storage fixed).

The companion of Fig 8: per-peer storage is pinned to the paper's 10 GB
ceiling and the total cache grows with the neighborhood instead
(100 peers = 1 TB ... 1,000 peers = 10 TB).  The paper finds the same
load curve as Fig 8, showing total cache size is what matters, however
it is assembled.

Declarative since the scenario API redesign: a neighborhood axis
(tagged with the nominal size and total TB it represents) crossed with
the strategy axis.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.factory import LFUSpec, LRUSpec, OracleSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig09"
TITLE = "Server load vs. total cache size (10 GB per peer, growing neighborhoods)"
PAPER_EXPECTATION = (
    "same curve as Fig 8: the total cache size drives the saving, whether "
    "built from more peers or bigger disks"
)

PER_PEER_GB = 10.0
#: Nominal neighborhood sizes giving 1/3/5/10 TB totals at 10 GB per peer.
NOMINAL_NEIGHBORHOODS = (100, 300, 500, 1_000)

COLUMNS = (
    "total_cache_tb",
    "nominal_neighborhood",
    "strategy",
    "server_gbps",
    "server_gbps_p5",
    "server_gbps_p95",
    "reduction_pct",
)


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The Fig 9 grid as a declarative sweep."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOODS[0]),
            per_peer_storage_gb=PER_PEER_GB,
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "nominal_neighborhood": [
                {"set": {"config.neighborhood_size":
                         profile.neighborhood_size(nominal)},
                 "cols": {"nominal_neighborhood": nominal,
                          "total_cache_tb": nominal * PER_PEER_GB / 1_000.0}}
                for nominal in NOMINAL_NEIGHBORHOODS
            ],
            "config.strategy": [OracleSpec(), LFUSpec(), LRUSpec()],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 9 bars."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
    )
