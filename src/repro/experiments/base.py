"""Shared experiment result container and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.parallel import (
    get_default_workers,
    resolve_workers,
    run_many,
    set_default_workers,
)
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.errors import ConfigurationError
from repro.experiments.profiles import ExperimentProfile
from repro.scenario.runner import result_row
from repro.trace.records import Trace
from repro.trace.synthetic import PowerInfoModel

__all__ = [
    "ExperimentResult",
    "format_cell",
    "run_config",
    "strategy_rows",
    # Re-exported from repro.core.parallel (their home since the
    # scenario layer also honors them); kept here for callers that
    # learned the names when they lived in this module.
    "set_default_workers",
    "get_default_workers",
]


def format_cell(value: Any) -> str:
    """One table cell, the repo-wide display rule: floats as ``.2f``.

    Shared by :meth:`ExperimentResult.format_table` and the CLI's
    streaming sweep rows so the two renderings cannot drift.
    """
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentResult:
    """Rows regenerating one paper exhibit, plus provenance.

    ``rows`` are dictionaries keyed by ``columns`` so callers can consume
    them programmatically; :meth:`format_table` renders the paper-style
    text table.
    """

    experiment_id: str
    title: str
    profile_name: str
    columns: List[str]
    rows: List[Dict[str, Any]]
    paper_expectation: str = ""
    notes: str = ""
    extras: Dict[str, Any] = field(default_factory=dict)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ConfigurationError(
                f"{self.experiment_id}: unknown column {name!r} "
                f"(have {self.columns})"
            )
        return [row.get(name) for row in self.rows]

    def format_table(self) -> str:
        """Render the rows as an aligned text table."""
        fmt = format_cell
        widths = {
            name: max(len(name), *(len(fmt(row.get(name, ""))) for row in self.rows))
            if self.rows
            else len(name)
            for name in self.columns
        }
        header = "  ".join(name.ljust(widths[name]) for name in self.columns)
        divider = "  ".join("-" * widths[name] for name in self.columns)
        lines = [
            f"{self.experiment_id}: {self.title}  [profile={self.profile_name}]",
            header,
            divider,
        ]
        for row in self.rows:
            lines.append(
                "  ".join(fmt(row.get(name, "")).ljust(widths[name]) for name in self.columns)
            )
        if self.paper_expectation:
            lines.append(f"paper: {self.paper_expectation}")
        if self.notes:
            lines.append(f"note : {self.notes}")
        return "\n".join(lines)


def run_config(trace: Trace, config: SimulationConfig) -> SimulationResult:
    """Alias of :func:`~repro.core.runner.run_simulation` for experiments."""
    return run_simulation(trace, config)


def strategy_rows(
    trace: Trace,
    configs: Sequence[SimulationConfig],
    profile: ExperimentProfile,
    workers: Optional[int] = None,
    trace_model: Optional[PowerInfoModel] = None,
) -> List[Dict[str, Any]]:
    """Run a list of configs, returning standard per-run result rows.

    Each row carries the extrapolated peak server load with its 5%/95%
    quantile band, the reduction vs. no cache, and the hit ratio --
    the quantities the paper's bar charts encode.

    Parameters
    ----------
    workers:
        Sweep parallelism; defaults to :func:`get_default_workers` (the
        CLI's ``--workers`` flag).  Parallel execution requires
        ``trace_model`` -- workers regenerate the trace from the seeded
        model rather than pickling it -- and produces bit-identical
        rows in identical order to the serial path.
    trace_model:
        The seeded model ``trace`` was generated from.  Only pass it
        when that is literally true (experiments that replay a
        *transformed* trace must stay serial).
    """
    if workers is None:
        workers = get_default_workers()
    configs = list(configs)
    # Resolve "0 = one per CPU" up front: if that lands on one worker
    # (single-CPU host), stay serial against the caller's (memoized)
    # trace instead of having run_many regenerate it.
    effective_workers = min(resolve_workers(workers), len(configs))
    if effective_workers > 1 and trace_model is not None:
        results = run_many(trace_model, configs, workers=effective_workers)
    else:
        results = [run_simulation(trace, config) for config in configs]
    return [
        result_row(config, result, scale=profile.scale)
        for config, result in zip(configs, results)
    ]
