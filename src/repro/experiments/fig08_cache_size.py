"""Fig 8 -- server load vs. total cache size (neighborhood fixed at 1,000).

The paper fixes neighborhoods at 1,000 peers and sweeps per-peer storage
so the total neighborhood cache is 1, 3, 5 and 10 TB, comparing Oracle,
LFU and LRU.  Expected shape: monotone decreasing load; ~35% reduction
at 1 TB rising to ~88% at 10 TB; Oracle <= LFU <= LRU with the gap
collapsing as the cache grows.

Since the scenario API redesign this module is a declarative
:class:`~repro.scenario.Sweep`: two axes (per-peer storage x strategy)
over one base scenario.  ``repro-vod describe fig08`` prints it as JSON.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.no_cache import no_cache_peak_gbps
from repro.cache.factory import LFUSpec, LRUSpec, OracleSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig08"
TITLE = "Server load vs. total cache size (1,000-peer neighborhoods)"
PAPER_EXPECTATION = (
    "17 Gb/s no-cache; ~35% reduction at 1 TB, ~88% at 10 TB; "
    "Oracle <= LFU <= LRU, differences largest at small caches"
)

#: Paper sweep: per-peer GB -> total TB in 1,000-peer neighborhoods.
PER_PEER_GB_SWEEP = (1.0, 3.0, 5.0, 10.0)
NOMINAL_NEIGHBORHOOD = 1_000

COLUMNS = (
    "total_cache_tb",
    "strategy",
    "server_gbps",
    "server_gbps_p5",
    "server_gbps_p95",
    "reduction_pct",
    "hit_pct",
)


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The Fig 8 grid as a declarative sweep."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOOD),
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "config.per_peer_storage_gb": [
                {"value": per_peer_gb,
                 "cols": {"total_cache_tb":
                          per_peer_gb * NOMINAL_NEIGHBORHOOD / 1_000.0}}
                for per_peer_gb in PER_PEER_GB_SWEEP
            ],
            "config.strategy": [OracleSpec(), LFUSpec(), LRUSpec()],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 8 bars."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    baseline = profile.extrapolate(
        no_cache_peak_gbps(base_trace(profile),
                           warmup_seconds=profile.warmup_days * 86_400.0)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=f"no-cache baseline (extrapolated): {baseline:.1f} Gb/s",
        extras={"no_cache_gbps": baseline},
    )
