"""Fig 8 -- server load vs. total cache size (neighborhood fixed at 1,000).

The paper fixes neighborhoods at 1,000 peers and sweeps per-peer storage
so the total neighborhood cache is 1, 3, 5 and 10 TB, comparing Oracle,
LFU and LRU.  Expected shape: monotone decreasing load; ~35% reduction
at 1 TB rising to ~88% at 10 TB; Oracle <= LFU <= LRU with the gap
collapsing as the cache grows.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.factory import LFUSpec, LRUSpec, OracleSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult, strategy_rows
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.baselines.no_cache import no_cache_peak_gbps

EXPERIMENT_ID = "fig08"
TITLE = "Server load vs. total cache size (1,000-peer neighborhoods)"
PAPER_EXPECTATION = (
    "17 Gb/s no-cache; ~35% reduction at 1 TB, ~88% at 10 TB; "
    "Oracle <= LFU <= LRU, differences largest at small caches"
)

#: Paper sweep: per-peer GB -> total TB in 1,000-peer neighborhoods.
PER_PEER_GB_SWEEP = (1.0, 3.0, 5.0, 10.0)
NOMINAL_NEIGHBORHOOD = 1_000


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 8 bars."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    size = profile.neighborhood_size(NOMINAL_NEIGHBORHOOD)

    configs: List[SimulationConfig] = []
    for per_peer_gb in PER_PEER_GB_SWEEP:
        for spec in (OracleSpec(), LFUSpec(), LRUSpec()):
            configs.append(
                SimulationConfig(
                    neighborhood_size=size,
                    per_peer_storage_gb=per_peer_gb,
                    strategy=spec,
                    warmup_days=profile.warmup_days,
                )
            )
    rows = strategy_rows(trace, configs, profile, trace_model=profile.model())
    for row in rows:
        row["total_cache_tb"] = row["per_peer_gb"] * NOMINAL_NEIGHBORHOOD / 1_000.0
    baseline = profile.extrapolate(
        no_cache_peak_gbps(trace, warmup_seconds=profile.warmup_days * 86_400.0)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "total_cache_tb",
            "strategy",
            "server_gbps",
            "server_gbps_p5",
            "server_gbps_p95",
            "reduction_pct",
            "hit_pct",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=f"no-cache baseline (extrapolated): {baseline:.1f} Gb/s",
        extras={"no_cache_gbps": baseline},
    )
