"""Policy matchup -- every registered cache policy on one workload.

Not a paper exhibit: this is the scenario-diversity experiment the
policy engine unlocks.  Every strategy in the registry (the paper's
five plus GDSF, ARC and the threshold/sketch-gated families) runs
against the same trace and neighborhood configuration, so one table
answers "which policy family wins at this cache size?".

Declarative since the scenario API redesign: one axis whose points are
generated straight from the policy registry -- register a new spec and
it appears in this table (and in ``repro-vod describe policies``)
without touching this module.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.no_cache import no_cache_peak_gbps
from repro.cache.policies import iter_policies
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "policies"
TITLE = "Policy matchup: every registered strategy, one workload"
PAPER_EXPECTATION = (
    "not a paper exhibit; expect oracle best, LFU/GDSF close, "
    "LRU/ARC mid-pack, threshold gating near its inner policy, none worst"
)

NOMINAL_NEIGHBORHOOD = 1_000

COLUMNS = (
    "policy",
    "strategy",
    "server_gbps",
    "server_gbps_p5",
    "server_gbps_p95",
    "reduction_pct",
    "hit_pct",
)


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The registry matchup as a declarative sweep."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOOD),
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "policy": [
                {"set": {"config.strategy": info.spec_class()},
                 "cols": {"policy": info.name}}
                for info in iter_policies()
            ],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Run every registered policy at default parameters."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    baseline = profile.extrapolate(
        no_cache_peak_gbps(base_trace(profile),
                           warmup_seconds=profile.warmup_days * 86_400.0)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=f"no-cache baseline (extrapolated): {baseline:.1f} Gb/s",
        extras={"no_cache_gbps": baseline},
    )
