"""Policy matchup -- every registered cache policy on one workload.

Not a paper exhibit: this is the scenario-diversity experiment the
policy engine unlocks.  Every strategy in the registry (the paper's
five plus the new GDSF, ARC and threshold-gated families) runs against
the same trace and neighborhood configuration, so one table answers
"which policy family wins at this cache size?" -- and, because rows are
independent simulator executions, the sweep parallelizes across workers
like any figure sweep.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.policies import iter_policies
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult, strategy_rows
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.baselines.no_cache import no_cache_peak_gbps

EXPERIMENT_ID = "policies"
TITLE = "Policy matchup: every registered strategy, one workload"
PAPER_EXPECTATION = (
    "not a paper exhibit; expect oracle best, LFU/GDSF close, "
    "LRU/ARC mid-pack, threshold gating near its inner policy, none worst"
)

NOMINAL_NEIGHBORHOOD = 1_000


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Run every registered policy at default parameters."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    size = profile.neighborhood_size(NOMINAL_NEIGHBORHOOD)

    configs: List[SimulationConfig] = [
        SimulationConfig(
            neighborhood_size=size,
            strategy=info.spec_class(),
            warmup_days=profile.warmup_days,
        )
        for info in iter_policies()
    ]
    rows = strategy_rows(trace, configs, profile, trace_model=profile.model())
    for info, row in zip(iter_policies(), rows):
        row["policy"] = info.name
    baseline = profile.extrapolate(
        no_cache_peak_gbps(trace, warmup_seconds=profile.warmup_days * 86_400.0)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "policy",
            "strategy",
            "server_gbps",
            "server_gbps_p5",
            "server_gbps_p95",
            "reduction_pct",
            "hit_pct",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=f"no-cache baseline (extrapolated): {baseline:.1f} Gb/s",
        extras={"no_cache_gbps": baseline},
    )
