"""Fig 11 -- effect of history length on the LFU strategy.

Paper (500-peer, 2 TB configuration): "With a history size of 0, the LFU
is simply an LRU strategy.  As the history size increases up to 24
hours, we see little improvement over the LRU method, but after the 24
hour mark we begin to see significant savings with longer histories.
However, this improvement tapers off with history sizes over one week"
-- because week-old data mis-predicts current popularity (Fig 12).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.core.runner import run_simulation

EXPERIMENT_ID = "fig11"
TITLE = "Effect of LFU history length (500-peer neighborhoods, 2 TB)"
PAPER_EXPECTATION = (
    "flat (LRU-equivalent) below ~24 h of history, improving to ~1 week, "
    "tapering beyond as stale data pollutes the popularity estimate"
)

NOMINAL_NEIGHBORHOOD = 500
PER_PEER_GB = 4.0  # 500 peers x 4 GB = the paper's 2 TB configuration

#: History sweep in hours (the paper's x-axis runs 0-12 days).
HISTORY_HOURS = (0.0, 12.0, 24.0, 48.0, 72.0, 120.0, 168.0, 240.0, 288.0)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 11 curve."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    size = profile.neighborhood_size(NOMINAL_NEIGHBORHOOD)

    rows: List[dict] = []
    for history_hours in HISTORY_HOURS:
        config = SimulationConfig(
            neighborhood_size=size,
            per_peer_storage_gb=PER_PEER_GB,
            strategy=LFUSpec(history_hours=history_hours),
            warmup_days=profile.warmup_days,
        )
        result = run_simulation(trace, config)
        rows.append(
            {
                "history_days": history_hours / 24.0,
                "history_hours": history_hours,
                "server_gbps": profile.extrapolate(result.peak_server_gbps()),
                "reduction_pct": 100.0 * result.peak_reduction(),
                "hit_pct": 100.0 * result.counters.hit_ratio,
            }
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=["history_days", "server_gbps", "reduction_pct", "hit_pct"],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            "history 0 should match an LRU run exactly; the window length "
            "bounds how much of the sweep a short profile can resolve"
        ),
    )
