"""Fig 11 -- effect of history length on the LFU strategy.

Paper (500-peer, 2 TB configuration): "With a history size of 0, the LFU
is simply an LRU strategy.  As the history size increases up to 24
hours, we see little improvement over the LRU method, but after the 24
hour mark we begin to see significant savings with longer histories.
However, this improvement tapers off with history sizes over one week"
-- because week-old data mis-predicts current popularity (Fig 12).

Declarative since the scenario API redesign: one strategy axis sweeping
the LFU history parameter, each point tagged with its history columns.
This is the blueprint for the per-family parameter sweeps shipped under
``examples/scenarios/`` (GDSF history depth, ARC ghost budget).
"""

from __future__ import annotations

from typing import Optional

from repro.cache.factory import LFUSpec
from repro.core.config import SimulationConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, get_profile
from repro.scenario import Scenario, Sweep, run_sweep

EXPERIMENT_ID = "fig11"
TITLE = "Effect of LFU history length (500-peer neighborhoods, 2 TB)"
PAPER_EXPECTATION = (
    "flat (LRU-equivalent) below ~24 h of history, improving to ~1 week, "
    "tapering beyond as stale data pollutes the popularity estimate"
)

NOMINAL_NEIGHBORHOOD = 500
PER_PEER_GB = 4.0  # 500 peers x 4 GB = the paper's 2 TB configuration

#: History sweep in hours (the paper's x-axis runs 0-12 days).
HISTORY_HOURS = (0.0, 12.0, 24.0, 48.0, 72.0, 120.0, 168.0, 240.0, 288.0)

COLUMNS = ("history_days", "server_gbps", "reduction_pct", "hit_pct")


def sweep(profile: Optional[ExperimentProfile] = None) -> Sweep:
    """The Fig 11 history curve as a declarative sweep."""
    profile = profile or get_profile()
    base = Scenario(
        trace=profile.model(),
        config=SimulationConfig(
            neighborhood_size=profile.neighborhood_size(NOMINAL_NEIGHBORHOOD),
            per_peer_storage_gb=PER_PEER_GB,
            warmup_days=profile.warmup_days,
        ),
        label=EXPERIMENT_ID,
        scale=profile.scale,
    )
    return Sweep(
        base=base,
        sweep_id=EXPERIMENT_ID,
        title=TITLE,
        columns=COLUMNS,
        axes={
            "config.strategy": [
                {"value": LFUSpec(history_hours=history_hours),
                 "cols": {"history_days": history_hours / 24.0,
                          "history_hours": history_hours}}
                for history_hours in HISTORY_HOURS
            ],
        },
    )


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 11 curve."""
    profile = profile or get_profile()
    rows = run_sweep(sweep(profile))
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=list(COLUMNS),
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            "history 0 should match an LRU run exactly; the window length "
            "bounds how much of the sweep a short profile can resolve"
        ),
    )
