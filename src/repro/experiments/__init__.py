"""One module per paper exhibit.

Every ``figXX_*`` module exposes:

* ``EXPERIMENT_ID`` / ``TITLE`` -- which paper exhibit it regenerates;
* ``PAPER_EXPECTATION`` -- the shape the paper reports, as prose;
* ``run(profile=None) -> ExperimentResult`` -- regenerate the exhibit's
  rows at the given :class:`~repro.experiments.profiles.ExperimentProfile`
  (default: the ``REPRO_PROFILE`` environment variable, else ``fast``).

Profiles scale the PowerInfo population, catalog, and neighborhood sizes
by a common factor so cache-vs-catalog geometry and per-program demand
density match the paper at any scale; measured rates are extrapolated
back to full scale (see :mod:`repro.experiments.profiles`).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import (
    FAST,
    MEDIUM,
    PAPER,
    ExperimentProfile,
    base_trace,
    get_profile,
)
from repro.experiments.registry import all_experiments, get_experiment

__all__ = [
    "ExperimentResult",
    "ExperimentProfile",
    "FAST",
    "MEDIUM",
    "PAPER",
    "base_trace",
    "get_profile",
    "all_experiments",
    "get_experiment",
]
