"""Fig 2 -- skew in file popularity during peak hours.

The paper plots, over a seven-day stretch, the number of sessions
initiated in 15-minute windows for the most popular program versus the
programs at the 99% and 95% popularity quantiles.  The point is the gap:
the head program peaks above 150 sessions/window while the 99% quantile
manages ~13 and the 95% quantile ~5 -- multicast trees cannot form
outside the head.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.experiments.base import ExperimentResult
from repro.experiments.profiles import ExperimentProfile, base_trace, get_profile
from repro.trace.stats import popularity_timeseries

EXPERIMENT_ID = "fig02"
TITLE = "Skew in file popularity (sessions initiated per 15-minute window)"
PAPER_EXPECTATION = (
    "most popular program peaks >100 sessions/window; 99%-quantile ~13; "
    "95%-quantile ~5 (orders of magnitude of separation)"
)


def run(profile: Optional[ExperimentProfile] = None) -> ExperimentResult:
    """Regenerate the Fig 2 series and summarize their peaks."""
    profile = profile or get_profile()
    trace = base_trace(profile)
    window_days = min(7.0, trace.span_days)
    start = max(trace.start_time, trace.end_time - window_days * units.SECONDS_PER_DAY)
    skew = popularity_timeseries(trace, start=start, end=trace.end_time)

    rows = []
    for label, program_id, series in (
        ("max", skew.max_program, skew.max_series),
        ("q99", skew.q99_program, skew.q99_series),
        ("q95", skew.q95_program, skew.q95_series),
    ):
        rows.append(
            {
                "program_class": label,
                "program_id": program_id,
                "peak_per_window": max(series, default=0),
                "mean_per_window": sum(series) / len(series) if series else 0.0,
                "total_sessions": sum(series),
            }
        )
    max_peak = rows[0]["peak_per_window"]
    q95_peak = max(rows[2]["peak_per_window"], 1)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        profile_name=profile.name,
        columns=[
            "program_class",
            "program_id",
            "peak_per_window",
            "mean_per_window",
            "total_sessions",
        ],
        rows=rows,
        paper_expectation=PAPER_EXPECTATION,
        notes=(
            f"head-to-95%-quantile peak ratio: {max_peak / q95_peak:.0f}x "
            f"over the final {window_days:.0f} days"
        ),
        extras={"series": skew},
    )
