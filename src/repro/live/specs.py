"""Config-level specs for the live admission policies.

Mirrors :mod:`repro.cache.factory`'s strategy-spec surface for the
admission side of the live headend: each spec is a frozen dataclass
registered by short name in the policy registry
(:func:`repro.cache.policies.registry.live_admission`), serializable to
and from plain dicts (``{"name": ..., **non_default_fields}``) and
buildable from ``name:args`` CLI strings -- so ``throttle`` / ``vtc``
knobs round-trip through scenario JSON exactly like cache strategies
do.

The *defaults are deliberately no-ops*: a default
:class:`ThrottleSpec` has unlimited windows and a default
:class:`FairnessSpec` has an unlimited virtual-time lead, so a live run
configured with them admits every request -- the configuration the
bit-identity property test pins against the offline ``bucket`` engine.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.cache.factory import _coerce_arg, _spec_fields
from repro.cache.policies.registry import get_live_admission, live_admission
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LiveAdmissionSpec:
    """Base class for live admission-side policy specs.

    Subclasses are frozen dataclasses whose fields are the tunable
    knobs; registration (``@live_admission``) attaches the short
    ``policy_name`` the serializers key on.
    """

    @property
    def label(self) -> str:
        """``name`` or ``name:key=value,...`` over non-default fields."""
        name = getattr(self, "policy_name", type(self).__name__)
        args = []
        for field in _spec_fields(type(self)):
            value = getattr(self, field.name)
            if field.default is not dataclasses.MISSING and value == field.default:
                continue
            args.append(f"{field.name}={value}")
        return f"{name}:{','.join(args)}" if args else name


@live_admission(
    "throttle",
    summary="sliding-window overload throttle (per-user / per-program "
            "session budgets)",
)
@dataclass(frozen=True)
class ThrottleSpec(LiveAdmissionSpec):
    """Sliding-window overload throttle over session-start requests.

    FAIRSERVE's OIT idea applied to the headend: a subscriber (and,
    independently, a program) may start at most ``budget`` sessions per
    trailing ``window_seconds``.  A request over budget is *deferred*
    with a retry-after equal to the time until the oldest in-window
    start ages out; after ``max_defers`` unsuccessful retries (or once
    the viewer's own session window has passed) it is *denied*.

    ``None`` budgets are unlimited -- the all-default spec admits
    everything and is the no-op half of the bit-identity guarantee.
    """

    user_budget: Optional[int] = None
    user_window_seconds: float = 3600.0
    program_budget: Optional[int] = None
    program_window_seconds: float = 3600.0
    max_defers: int = 2

    def __post_init__(self) -> None:
        if self.user_budget is not None and self.user_budget < 1:
            raise ConfigurationError(
                f"user_budget must be >= 1 or None, got {self.user_budget}"
            )
        if self.program_budget is not None and self.program_budget < 1:
            raise ConfigurationError(
                f"program_budget must be >= 1 or None, got {self.program_budget}"
            )
        if self.user_window_seconds <= 0 or self.program_window_seconds <= 0:
            raise ConfigurationError(
                "throttle windows must be positive, got "
                f"{self.user_window_seconds} / {self.program_window_seconds}"
            )
        if self.max_defers < 0:
            raise ConfigurationError(
                f"max_defers must be >= 0, got {self.max_defers}"
            )

    @property
    def is_noop(self) -> bool:
        """True when no budget can ever block a request."""
        return self.user_budget is None and self.program_budget is None


@live_admission(
    "vtc",
    summary="virtual-counter fairness over consumed coax bits and "
            "peer-storage fills",
)
@dataclass(frozen=True)
class FairnessSpec(LiveAdmissionSpec):
    """Virtual-counter (VTC) fairness scheduling of session starts.

    Every subscriber carries a virtual counter of the weighted service
    they have consumed, in *stream-seconds*: each coax delivery on
    their behalf adds ``coax_weight x watch-seconds`` and each
    peer-storage fill their request triggered adds ``fill_weight x one
    segment's stream-seconds``.  The neighborhood's virtual clock is
    the equal share of everything it has served (total weighted cost /
    subscribers), and a session start is admitted only while the
    requester's counter leads that clock by at most ``lead_seconds``
    -- competing starts are thereby ordered by virtual time: users
    behind the clock always pass, users too far ahead are deferred
    ``retry_seconds`` and, after ``max_defers`` retries, denied.

    ``lead_seconds=None`` is unlimited (the no-op half of the
    bit-identity guarantee); the two weights are the sweepable
    "fairness weight" axis -- how heavily coax bits vs. peer-storage
    admissions count toward a subscriber's share.
    """

    lead_seconds: Optional[float] = None
    coax_weight: float = 1.0
    fill_weight: float = 1.0
    retry_seconds: float = 300.0
    max_defers: int = 2

    def __post_init__(self) -> None:
        if self.lead_seconds is not None and self.lead_seconds < 0:
            raise ConfigurationError(
                f"lead_seconds must be >= 0 or None, got {self.lead_seconds}"
            )
        if self.coax_weight < 0 or self.fill_weight < 0:
            raise ConfigurationError(
                "fairness weights must be >= 0, got "
                f"coax_weight={self.coax_weight} fill_weight={self.fill_weight}"
            )
        if self.retry_seconds <= 0:
            raise ConfigurationError(
                f"retry_seconds must be positive, got {self.retry_seconds}"
            )
        if self.max_defers < 0:
            raise ConfigurationError(
                f"max_defers must be >= 0, got {self.max_defers}"
            )

    @property
    def is_noop(self) -> bool:
        """True when no lead bound can ever block a request."""
        return self.lead_seconds is None


# --------------------------------------------------------------------------
# Serialization (the live mirror of factory.spec_from_name & friends)
# --------------------------------------------------------------------------


def live_spec_from_name(name: str) -> LiveAdmissionSpec:
    """Build a live admission spec from ``name`` or ``name:args``.

    Same grammar as :func:`repro.cache.factory.spec_from_name`, resolved
    against the live admission table::

        live_spec_from_name("throttle")
        live_spec_from_name("throttle:6,86400")          # positional
        live_spec_from_name("vtc:lead_seconds=1800")     # keyword
    """
    base, _, argstr = name.partition(":")
    info = get_live_admission(base.strip())
    if not argstr.strip():
        return info.spec_class()
    fields = _spec_fields(info.spec_class)
    names = [field.name for field in fields]
    kwargs: Dict[str, object] = {}
    for position, token in enumerate(argstr.split(",")):
        token = token.strip()
        if "=" in token:
            key, _, raw = token.partition("=")
            key = key.strip()
            if key not in names:
                raise ConfigurationError(
                    f"live admission policy {base!r} has no parameter "
                    f"{key!r} (have {names})"
                )
        else:
            if position >= len(fields):
                raise ConfigurationError(
                    f"live admission policy {base!r} takes at most "
                    f"{len(fields)} parameters ({names}), got extra {token!r}"
                )
            key, raw = fields[position].name, token
        if key in kwargs:
            raise ConfigurationError(
                f"live admission policy {base!r} parameter {key!r} "
                f"given twice in {name!r}"
            )
        kwargs[key] = _coerce_arg(raw.strip())
    return info.spec_class(**kwargs)


def live_spec_to_dict(spec: LiveAdmissionSpec) -> Dict[str, object]:
    """Serialize a live spec: registry name + non-default fields."""
    name = getattr(spec, "policy_name", None)
    if name is None:
        raise ConfigurationError(
            f"{type(spec).__name__} is not a registered live admission "
            f"spec; register it with @live_admission to make it "
            f"serializable"
        )
    payload: Dict[str, object] = {"name": name}
    for field in dataclasses.fields(spec):
        if not field.init:
            continue
        value = getattr(spec, field.name)
        if field.default is not dataclasses.MISSING and value == field.default:
            continue
        payload[field.name] = value
    return payload


def live_spec_from_dict(payload: Dict[str, object]) -> LiveAdmissionSpec:
    """Rebuild a live spec from its :func:`live_spec_to_dict` form."""
    if not isinstance(payload, dict) or "name" not in payload:
        raise ConfigurationError(
            f"a live admission dict needs a 'name' key, got {payload!r}"
        )
    params = dict(payload)
    info = get_live_admission(str(params.pop("name")))
    valid = {field.name for field in dataclasses.fields(info.spec_class)
             if field.init}
    unknown = sorted(set(params) - valid)
    if unknown:
        raise ConfigurationError(
            f"live admission policy {info.name!r} has no parameters "
            f"{unknown} (have {sorted(valid)})"
        )
    return info.spec_class(**params)


def coerce_live_spec(
    value: Union[None, str, Dict[str, object], LiveAdmissionSpec],
    expected: Optional[type] = None,
) -> Optional[LiveAdmissionSpec]:
    """Normalize a scenario-level admission knob to a spec (or ``None``).

    Accepts ``None`` (policy off), a registered spec instance, a
    ``name[:args]`` string, or a ``{"name": ...}`` dict.  ``expected``
    optionally pins the spec class a scenario field must carry (the
    ``throttle`` knob takes a :class:`ThrottleSpec`, ``fairness`` a
    :class:`FairnessSpec`) so a typo'd name fails at construction, not
    mid-run.
    """
    if value is None:
        spec: Optional[LiveAdmissionSpec] = None
    elif isinstance(value, LiveAdmissionSpec):
        spec = value
    elif isinstance(value, str):
        spec = live_spec_from_name(value)
    elif isinstance(value, dict):
        spec = live_spec_from_dict(value)
    else:
        raise ConfigurationError(
            f"cannot interpret {value!r} as a live admission policy "
            f"(want None, a name, a dict, or a spec)"
        )
    if spec is not None and expected is not None and not isinstance(spec, expected):
        raise ConfigurationError(
            f"expected a {getattr(expected, 'policy_name', expected.__name__)!r} "
            f"policy here, got {spec.label!r}"
        )
    return spec
