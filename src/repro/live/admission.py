"""Runtime admission layer for the live headend drain.

Built from the frozen specs in :mod:`repro.live.specs`, the
:class:`AdmissionController` sits between the arrival-order request
stream and the index server: every session start passes through
:meth:`AdmissionController.decide` and comes back with an
:data:`ADMIT` / :data:`DEFER` / :data:`DENY` verdict (deferrals carry a
retry-after); every segment delivery reports back through
:meth:`AdmissionController.on_delivery` so the fairness scheduler's
virtual counters -- and the per-user served/denied accounting the
exhibit metrics read -- track consumed coax bits and peer-storage
fills.

Determinism: all state is plain dict/deque bookkeeping updated in
event order, so a live run is exactly as reproducible as the offline
replay it wraps.  A controller built from all-default (no-op) specs
never blocks and never perturbs the simulation -- the property the
bit-identity test pins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from repro import units
from repro.live.specs import FairnessSpec, ThrottleSpec

#: Verdict actions.  Plain strings (they end up in reports and logs).
ADMIT = "admit"
DEFER = "defer"
DENY = "deny"


@dataclass(frozen=True)
class Verdict:
    """One admission decision: the action plus retry-after accounting."""

    action: str
    retry_after: float = 0.0
    reason: str = ""


class SlidingWindowThrottle:
    """Per-user and per-program session budgets over trailing windows."""

    __slots__ = ("spec", "_user_hits", "_program_hits")

    def __init__(self, spec: ThrottleSpec) -> None:
        self.spec = spec
        self._user_hits: Dict[int, Deque[float]] = {}
        self._program_hits: Dict[int, Deque[float]] = {}

    @staticmethod
    def _retry(hits: Dict[int, Deque[float]], key: int, now: float,
               budget: Optional[int], window: float) -> float:
        """Seconds until ``key`` is back under budget (0.0 = admissible)."""
        if budget is None:
            return 0.0
        queue = hits.get(key)
        if queue is None:
            return 0.0
        floor = now - window
        while queue and queue[0] <= floor:
            queue.popleft()
        if len(queue) < budget:
            return 0.0
        # The oldest surviving start is strictly newer than ``floor``,
        # so the wait below is strictly positive.
        return queue[0] + window - now

    def check(self, now: float, user_id: int, program_id: int) -> float:
        """Retry-after for this request; ``0.0`` means within budget."""
        spec = self.spec
        user_wait = self._retry(self._user_hits, user_id, now,
                                spec.user_budget, spec.user_window_seconds)
        program_wait = self._retry(self._program_hits, program_id, now,
                                   spec.program_budget,
                                   spec.program_window_seconds)
        return max(user_wait, program_wait)

    def commit(self, now: float, user_id: int, program_id: int) -> None:
        """Record an admitted start against both budgets."""
        spec = self.spec
        if spec.user_budget is not None:
            self._user_hits.setdefault(user_id, deque()).append(now)
        if spec.program_budget is not None:
            self._program_hits.setdefault(program_id, deque()).append(now)


class VirtualCounterScheduler:
    """Weighted virtual-time fairness over coax bits and storage fills.

    Each user's virtual counter accumulates the weighted stream-seconds
    served on their behalf; each neighborhood's virtual clock is the
    equal share of its total.  Admission requires the requester's
    counter to lead their neighborhood's clock by at most
    ``spec.lead_seconds``.
    """

    __slots__ = ("spec", "_vt", "_neighborhood_cost", "_neighborhood_users")

    def __init__(self, spec: FairnessSpec,
                 neighborhood_users: Sequence[int]) -> None:
        self.spec = spec
        self._vt: Dict[int, float] = {}
        self._neighborhood_cost: List[float] = [0.0] * len(neighborhood_users)
        self._neighborhood_users = [max(1, n) for n in neighborhood_users]

    def check(self, now: float, user_id: int, neighborhood: int) -> float:
        """Retry-after for this request; ``0.0`` means within the lead."""
        lead = self.spec.lead_seconds
        if lead is None:
            return 0.0
        clock = (self._neighborhood_cost[neighborhood]
                 / self._neighborhood_users[neighborhood])
        if self._vt.get(user_id, 0.0) - clock > lead:
            return self.spec.retry_seconds
        return 0.0

    def charge(self, user_id: int, neighborhood: int,
               stream_seconds: float) -> None:
        """Add weighted cost to the user counter and neighborhood clock."""
        self._vt[user_id] = self._vt.get(user_id, 0.0) + stream_seconds
        self._neighborhood_cost[neighborhood] += stream_seconds


@dataclass
class LiveReport:
    """Per-user served/denied/deferred accounting of one live run.

    All dicts are keyed by user id and hold only users with activity.
    ``user_coax_bits`` counts bits that crossed the neighborhood coax
    for the user (peer and server deliveries alike);  ``user_fills``
    counts the peer-storage fills the user's requests triggered --
    the two resources the fairness scheduler arbitrates.
    """

    admitted: int = 0
    denied: int = 0
    deferrals: int = 0
    user_requests: Dict[int, int] = field(default_factory=dict)
    user_admitted: Dict[int, int] = field(default_factory=dict)
    user_denied: Dict[int, int] = field(default_factory=dict)
    user_deferrals: Dict[int, int] = field(default_factory=dict)
    user_coax_bits: Dict[int, float] = field(default_factory=dict)
    user_fills: Dict[int, int] = field(default_factory=dict)
    user_served_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def requests(self) -> int:
        """Distinct session requests (admitted + denied)."""
        return self.admitted + self.denied

    def total_coax_bits(self) -> float:
        return sum(self.user_coax_bits.values())

    def total_fills(self) -> int:
        return sum(self.user_fills.values())

    def coax_share(self, user_ids: Iterable[int]) -> float:
        """Fraction of coax bits consumed by ``user_ids`` (0.0 if none)."""
        total = self.total_coax_bits()
        if total <= 0.0:
            return 0.0
        bits = self.user_coax_bits
        return sum(bits.get(uid, 0.0) for uid in user_ids) / total

    def fill_share(self, user_ids: Iterable[int]) -> float:
        """Fraction of peer-storage fills triggered by ``user_ids``."""
        total = self.total_fills()
        if total <= 0:
            return 0.0
        fills = self.user_fills
        return sum(fills.get(uid, 0) for uid in user_ids) / total

    def admit_rate(self, user_ids: Optional[Iterable[int]] = None) -> float:
        """Admitted / requested, overall or for ``user_ids`` (1.0 if idle)."""
        if user_ids is None:
            total = self.requests
            granted = self.admitted
        else:
            requests = self.user_requests
            admitted = self.user_admitted
            ids = list(user_ids)
            total = sum(requests.get(uid, 0) for uid in ids)
            granted = sum(admitted.get(uid, 0) for uid in ids)
        return granted / total if total else 1.0

    def served_seconds(self, user_ids: Iterable[int]) -> float:
        """Stream-seconds delivered (any source) to ``user_ids``."""
        served = self.user_served_seconds
        return sum(served.get(uid, 0.0) for uid in user_ids)


class AdmissionController:
    """The composed admission layer one live run drains through.

    Policies are optional and composable: a request must pass every
    configured policy; the largest retry-after among the blocking ones
    drives the deferral.  ``max_defers`` is taken from the blocking
    policies (the strictest -- smallest -- bound wins).
    """

    __slots__ = ("throttle_spec", "fairness_spec", "_throttle", "_fairness",
                 "report")

    def __init__(self, throttle: Optional[ThrottleSpec] = None,
                 fairness: Optional[FairnessSpec] = None) -> None:
        self.throttle_spec = throttle
        self.fairness_spec = fairness
        self._throttle: Optional[SlidingWindowThrottle] = None
        self._fairness: Optional[VirtualCounterScheduler] = None
        self.report = LiveReport()

    def bind(self, neighborhood_users: Sequence[int]) -> None:
        """Build runtime state for a plant of the given neighborhood sizes.

        Called by ``run_live`` once the plant layout is known; a
        controller is single-run (its report accumulates one drain).
        """
        if self.throttle_spec is not None:
            self._throttle = SlidingWindowThrottle(self.throttle_spec)
        if self.fairness_spec is not None:
            self._fairness = VirtualCounterScheduler(self.fairness_spec,
                                                     neighborhood_users)

    # ------------------------------------------------------------------
    # The decision path
    # ------------------------------------------------------------------

    def decide(self, now: float, user_id: int, program_id: int,
               neighborhood: int, attempts: int,
               deadline: float = float("inf")) -> Verdict:
        """Verdict for a session-start request on its ``attempts``-th try.

        ``deadline`` is the end of the viewer's own session window: a
        deferral whose retry would land past it is a walk-away and is
        denied outright instead of scheduled.
        """
        retry = 0.0
        allowed_defers: Optional[int] = None
        reason = ""
        if self._throttle is not None:
            wait = self._throttle.check(now, user_id, program_id)
            if wait > 0.0:
                retry = wait
                allowed_defers = self._throttle.spec.max_defers
                reason = "throttle"
        if self._fairness is not None:
            wait = self._fairness.check(now, user_id, neighborhood)
            if wait > 0.0:
                defers = self._fairness.spec.max_defers
                if allowed_defers is None or defers < allowed_defers:
                    allowed_defers = defers
                if wait > retry:
                    retry = wait
                reason = "fairness" if not reason else "throttle+fairness"
        report = self.report
        if retry == 0.0:
            if self._throttle is not None:
                self._throttle.commit(now, user_id, program_id)
            report.admitted += 1
            _bump(report.user_requests, user_id, attempts == 0)
            report.user_admitted[user_id] = (
                report.user_admitted.get(user_id, 0) + 1)
            return _ADMIT_VERDICT
        if attempts >= allowed_defers or now + retry >= deadline:
            report.denied += 1
            _bump(report.user_requests, user_id, attempts == 0)
            report.user_denied[user_id] = (
                report.user_denied.get(user_id, 0) + 1)
            return Verdict(DENY, 0.0, reason)
        report.deferrals += 1
        _bump(report.user_requests, user_id, attempts == 0)
        report.user_deferrals[user_id] = (
            report.user_deferrals.get(user_id, 0) + 1)
        return Verdict(DEFER, retry, reason)

    # ------------------------------------------------------------------
    # Delivery feedback (the system's ``_deliver_segment`` hook)
    # ------------------------------------------------------------------

    def on_delivery(self, user_id: int, neighborhood: int, source: str,
                    filled: bool, watch_seconds: float) -> None:
        """Account one segment delivery against the requesting user."""
        report = self.report
        report.user_served_seconds[user_id] = (
            report.user_served_seconds.get(user_id, 0.0) + watch_seconds)
        cost = 0.0
        fairness = self._fairness
        if source != "local":
            report.user_coax_bits[user_id] = (
                report.user_coax_bits.get(user_id, 0.0)
                + watch_seconds * units.STREAM_RATE_BPS)
            if fairness is not None:
                cost += fairness.spec.coax_weight * watch_seconds
        if filled:
            report.user_fills[user_id] = report.user_fills.get(user_id, 0) + 1
            if fairness is not None:
                cost += fairness.spec.fill_weight * units.SEGMENT_SECONDS
        if fairness is not None and cost > 0.0 and fairness.spec.lead_seconds is not None:
            fairness.charge(user_id, neighborhood, cost)


def _bump(requests: Dict[int, int], user_id: int, first_attempt: bool) -> None:
    """Count the user's request once, on its first attempt only."""
    if first_attempt:
        requests[user_id] = requests.get(user_id, 0) + 1


_ADMIT_VERDICT = Verdict(ADMIT)
