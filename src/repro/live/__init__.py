"""Live headend mode: online request serving under admission control.

Where the rest of :mod:`repro` *replays* a trace offline, this package
turns the headend into something shaped like a service: the simulator
consumes a request stream in arrival order through an admission layer
in front of the index server --

* :class:`~repro.live.specs.ThrottleSpec` / ``"throttle"`` -- a
  sliding-window overload throttle (per-user and per-program session
  budgets over configurable windows, deny/defer verdicts with
  retry-after accounting);
* :class:`~repro.live.specs.FairnessSpec` / ``"vtc"`` -- a
  virtual-counter fairness scheduler ordering competing session starts
  by weighted virtual time over consumed coax bits and peer-storage
  fills.

Both are registered by name in the policy registry
(``repro.cache.policies``), serialize into the scenario schema
(``live`` / ``throttle`` / ``fairness`` knobs, ``--live --throttle
--fairness`` CLI flags), and compose inside one
:class:`~repro.live.admission.AdmissionController` that
:meth:`~repro.core.system.CableVoDSystem.run_live` drains through.
With no-op policies (unlimited windows, unlimited lead) the live drain
is bit-identical to the offline ``bucket`` engine.
"""

from __future__ import annotations

from repro.live.admission import (
    ADMIT,
    DEFER,
    DENY,
    AdmissionController,
    LiveReport,
    SlidingWindowThrottle,
    Verdict,
    VirtualCounterScheduler,
)
from repro.live.specs import (
    FairnessSpec,
    LiveAdmissionSpec,
    ThrottleSpec,
    coerce_live_spec,
    live_spec_from_dict,
    live_spec_from_name,
    live_spec_to_dict,
)

__all__ = [
    "ADMIT",
    "DEFER",
    "DENY",
    "AdmissionController",
    "FairnessSpec",
    "LiveAdmissionSpec",
    "LiveReport",
    "SlidingWindowThrottle",
    "ThrottleSpec",
    "Verdict",
    "VirtualCounterScheduler",
    "coerce_live_spec",
    "live_spec_from_dict",
    "live_spec_from_name",
    "live_spec_to_dict",
]
