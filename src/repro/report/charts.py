"""ASCII bar charts for experiment results.

The paper communicates its results as bar charts (Figs 8-11, 13-16); a
table of numbers hides the shape.  :func:`bar_chart` renders labeled
horizontal bars scaled to the terminal, and :func:`chart_for_result`
picks sensible label/value columns from an
:class:`~repro.experiments.base.ExperimentResult` automatically so the
CLI can append a figure under every table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult

#: Value columns preferred by :func:`chart_for_result`, best first.
PREFERRED_VALUE_COLUMNS = (
    "server_gbps",
    "coax_mean_mbps",
    "gbps_full_scale",
    "mean_sessions_per_day",
    "server_saving_pct",
    "cdf",
    "peak_per_window",
)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Render labeled horizontal bars, scaled to the largest value.

    Negative values are clamped to zero (they cannot occur in any of the
    metrics this library charts; clamping beats a confusing inverted
    bar).
    """
    if len(labels) != len(values):
        raise ConfigurationError(
            f"labels ({len(labels)}) and values ({len(values)}) differ in length"
        )
    if not labels:
        raise ConfigurationError("cannot chart zero rows")
    if width < 8:
        raise ConfigurationError(f"chart width must be at least 8, got {width}")
    clamped = [max(0.0, float(v)) for v in values]
    peak = max(clamped)
    scale = (width / peak) if peak > 0 else 0.0
    label_width = max(len(str(label)) for label in labels)
    lines: List[str] = []
    for label, value in zip(labels, clamped):
        bar = "#" * max(1 if value > 0 else 0, round(value * scale))
        lines.append(
            f"{str(label).rjust(label_width)} | {bar.ljust(width)} "
            f"{value:,.2f}{unit}"
        )
    return "\n".join(lines)


def _label_for_row(row: dict, columns: Sequence[str], value_column: str) -> str:
    """Compose a row label from every non-value, non-noise column."""
    skip = {value_column, "server_gbps_p5", "server_gbps_p95", "detail",
            "notes", "peak_window", "correct", "feasible"}
    # Prefer identity-like columns (strings/ints) over other metrics.
    identity = [
        f"{row[name]:g}" if isinstance(row.get(name), float) else str(row[name])
        for name in columns
        if name in row and name not in skip
        and not isinstance(row.get(name), float)
    ]
    if identity:
        return " ".join(identity[:3])
    numeric = [
        f"{name}={row[name]:g}"
        for name in columns
        if name in row and name not in skip
    ]
    return " ".join(numeric[:2]) if numeric else "row"


def chart_for_result(result: ExperimentResult, width: int = 48) -> Optional[str]:
    """Best-effort bar chart for an experiment's rows.

    Returns ``None`` when no suitable numeric column exists (the caller
    simply omits the chart).  Charts are capped at 30 rows so the grid
    experiments stay readable.
    """
    value_column = next(
        (name for name in PREFERRED_VALUE_COLUMNS if name in result.columns),
        None,
    )
    if value_column is None:
        for name in result.columns:
            if all(isinstance(row.get(name), (int, float)) for row in result.rows):
                value_column = name
                break
    if value_column is None or not result.rows:
        return None

    rows = result.rows[:30]
    labels = [_label_for_row(row, result.columns, value_column) for row in rows]
    values = [float(row.get(value_column) or 0.0) for row in rows]
    header = f"[{value_column}]"
    try:
        body = bar_chart(labels, values, width=width)
    except ConfigurationError:
        return None
    return f"{header}\n{body}"
