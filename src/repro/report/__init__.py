"""Terminal-friendly presentation of experiment results.

:mod:`repro.report.charts` renders experiment rows as ASCII bar charts
so the CLI can show the *shape* of each exhibit (the thing the paper's
figures communicate) without a plotting dependency.
"""

from repro.report.charts import bar_chart, chart_for_result

__all__ = ["bar_chart", "chart_for_result"]
