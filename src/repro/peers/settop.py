"""Set-top box resource model: disk budget and the two-channel limit.

Paper constraints (section V-C):

* "Set-top boxes have limited disk space ... we assume that set-top boxes
  will not be able to contribute more than 10 GB."
* "Typical set top boxes cannot receive data on more than two logical
  channels of the coaxial line ... we limit each set top box so that it
  can only be active on two streams.  The cache will trigger a miss if a
  segment is requested from a peer that has more than two active streams
  in either direction."

Stream occupancy is tracked as a list of lease end-times purged lazily
against the querying clock -- cheaper than scheduling a release event per
segment, and exact, because occupancy only matters at the instant a new
request arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro import units
from repro.errors import CapacityError


@dataclass(frozen=True)
class StreamLease:
    """A claim on one of the box's logical channels until ``end_time``."""

    end_time: float


class SetTopBox:
    """One subscriber's set-top box acting as a cooperative-cache peer.

    Parameters
    ----------
    box_id:
        The owning subscriber's user id.
    storage_bytes:
        Disk space contributed to the neighborhood cache (default: the
        paper's 10 GB ceiling).
    max_streams:
        Concurrent logical channels (default 2, per the paper).
    """

    __slots__ = ("box_id", "storage_bytes", "max_streams", "_used_bytes",
                 "_stored", "_lease_ends")

    def __init__(
        self,
        box_id: int,
        storage_bytes: float = units.DEFAULT_PEER_STORAGE_BYTES,
        max_streams: int = units.MAX_STREAMS_PER_PEER,
    ) -> None:
        if storage_bytes < 0:
            raise CapacityError(
                f"box {box_id}: storage_bytes must be non-negative, got {storage_bytes}"
            )
        if max_streams < 1:
            raise CapacityError(
                f"box {box_id}: max_streams must be at least 1, got {max_streams}"
            )
        self.box_id = box_id
        self.storage_bytes = float(storage_bytes)
        self.max_streams = int(max_streams)
        self._used_bytes = 0.0
        #: program_id -> bytes reserved on this box for that program.
        self._stored: Dict[int, float] = {}
        self._lease_ends: List[float] = []

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> float:
        """Bytes currently reserved on this box."""
        return self._used_bytes

    @property
    def free_bytes(self) -> float:
        """Remaining contributable disk space."""
        return self.storage_bytes - self._used_bytes

    def stored_bytes_for(self, program_id: int) -> float:
        """Bytes this box holds for ``program_id`` (0.0 if none)."""
        return self._stored.get(program_id, 0.0)

    def reserve(self, program_id: int, n_bytes: float) -> None:
        """Reserve ``n_bytes`` for segments of ``program_id``.

        Raises
        ------
        CapacityError
            If the reservation would exceed the contributed disk space.
            The index server must never over-commit a peer; treating it
            as an error (rather than clamping) surfaces placement bugs.
        """
        if n_bytes <= 0:
            raise CapacityError(
                f"box {self.box_id}: reservation must be positive, got {n_bytes}"
            )
        if n_bytes > self.free_bytes + 1e-6:
            raise CapacityError(
                f"box {self.box_id}: cannot reserve {n_bytes:.0f} B with only "
                f"{self.free_bytes:.0f} B free of {self.storage_bytes:.0f} B"
            )
        self._used_bytes += n_bytes
        self._stored[program_id] = self._stored.get(program_id, 0.0) + n_bytes

    def release(self, program_id: int) -> float:
        """Free everything stored for ``program_id``; returns bytes freed."""
        freed = self._stored.pop(program_id, 0.0)
        self._used_bytes -= freed
        if self._used_bytes < 0:  # pragma: no cover - accounting invariant
            raise CapacityError(
                f"box {self.box_id}: negative used bytes after releasing "
                f"program {program_id}"
            )
        return freed

    # ------------------------------------------------------------------
    # Stream (channel) accounting
    # ------------------------------------------------------------------

    def active_streams(self, now: float) -> int:
        """Streams still active at time ``now`` (expired leases purged).

        The lease list never exceeds a couple of entries (the channel
        limit plus the viewer's own stream), so an in-place sweep beats
        rebuilding the list -- this is called several times per segment
        delivery on the simulation hot path.
        """
        leases = self._lease_ends
        count = len(leases)
        if not count:
            return 0
        kept = 0
        for end in leases:
            if end > now:
                leases[kept] = end
                kept += 1
        if kept != count:
            del leases[kept:]
        return kept

    def can_open_stream(self, now: float) -> bool:
        """Whether a new stream may be opened without exceeding the limit."""
        return self.active_streams(now) < self.max_streams

    def try_open_stream(self, now: float, duration_seconds: float) -> bool:
        """Open a stream if a channel is free; one lease sweep total.

        The delivery hot path used to pay two sweeps per decision --
        ``can_open_stream`` followed by ``open_stream`` re-checking the
        limit it had just verified.  No simulated time passes between
        the two, so the second sweep can never change the answer; this
        fuses them.  Returns whether the lease was granted.
        """
        if duration_seconds <= 0:
            raise CapacityError(
                f"box {self.box_id}: stream duration must be positive, "
                f"got {duration_seconds}"
            )
        if self.active_streams(now) >= self.max_streams:
            return False
        self._lease_ends.append(now + duration_seconds)
        return True

    def grant_playback_lease(self, end_time: float) -> None:
        """Unconditionally lease a channel until ``end_time``.

        The columnar walk's spelling of
        ``open_stream(now, duration, enforce_limit=False)`` for the
        viewer's own playback stream, with the ``now + duration`` sum
        hoisted into the engine's precomputed session-end column: the
        index server never denies a subscriber their own session, so no
        sweep and no limit check are needed.
        """
        self._lease_ends.append(end_time)

    def open_stream(self, now: float, duration_seconds: float,
                    enforce_limit: bool = True) -> float:
        """Occupy one channel for ``duration_seconds`` starting at ``now``.

        Returns the lease end time.  (Callers never retained the old
        :class:`StreamLease` wrapper, and allocating one per delivery
        showed up in profiles.)

        Parameters
        ----------
        enforce_limit:
            When ``True`` (serving and cache-fill reads), exceeding the
            channel budget raises :class:`~repro.errors.CapacityError`.
            When ``False`` (the subscriber's own playback -- the index
            server never denies a viewer their stream), the lease is
            granted regardless and simply counted.
        """
        if duration_seconds <= 0:
            raise CapacityError(
                f"box {self.box_id}: stream duration must be positive, "
                f"got {duration_seconds}"
            )
        if enforce_limit and not self.can_open_stream(now):
            raise CapacityError(
                f"box {self.box_id}: all {self.max_streams} channels busy at t={now:.1f}"
            )
        end_time = now + duration_seconds
        self._lease_ends.append(end_time)
        return end_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SetTopBox(id={self.box_id}, used={self._used_bytes / 1e9:.2f}GB"
            f"/{self.storage_bytes / 1e9:.0f}GB, leases={len(self._lease_ends)})"
        )
