"""Set-top box peers.

Each cable subscriber's set-top box contributes disk space and two
coaxial channels to the neighborhood's cooperative cache (paper sections
IV-B.3 and V-C).  :mod:`repro.peers.settop` models those two scarce
resources -- storage bytes and concurrent streams -- with strict
accounting.
"""

from repro.peers.settop import SetTopBox, StreamLease

__all__ = ["SetTopBox", "StreamLease"]
