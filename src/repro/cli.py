"""Command-line interface: regenerate any paper exhibit.

Usage::

    repro-vod list
    repro-vod list-strategies
    repro-vod fig08 [--profile fast|medium|paper]
    repro-vod all --profile medium
    repro-vod policies --workers 0
    python -m repro.cli fig15

Each experiment prints its paper-style table plus the paper's expected
shape for eyeball comparison.  ``list-strategies`` prints every cache
policy registered in the policy engine (name, label, parameters);
sweeps parallelize automatically (``REPRO_WORKERS`` or one worker per
CPU) unless ``--workers`` pins a count.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import all_experiments, get_experiment, get_profile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description=(
            "Regenerate the tables and figures of 'Deploying Video-on-Demand "
            "Services on Cable Networks' (ICDCS 2007)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig08), 'all', 'list', or 'list-strategies'",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="scale profile: fast (default), medium, or paper",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII bar chart under each table",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run config sweeps across N worker processes (0 = one per "
            "CPU; 1 = serial; default: the REPRO_WORKERS environment "
            "variable, else one per CPU). Results are bit-identical to "
            "a serial run."
        ),
    )
    return parser


def _print_strategies() -> None:
    """Render the policy registry as an aligned table."""
    from repro.cache.policies import iter_policies

    rows = []
    for info in iter_policies():
        params = ", ".join(
            f"{name}={default!r}" for name, default in info.parameters()
        ) or "-"
        rows.append((info.name, info.label, params, info.summary))
    name_width = max(len(row[0]) for row in rows)
    label_width = max(len(row[1]) for row in rows)
    param_width = max(len(row[2]) for row in rows)
    for name, label, params, summary in rows:
        print(f"{name:<{name_width}}  {label:<{label_width}}  "
              f"{params:<{param_width}}  {summary}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for experiment_id, module in all_experiments().items():
            print(f"{experiment_id:10s} {module.TITLE}")
        return 0

    if args.experiment == "list-strategies":
        _print_strategies()
        return 0

    try:
        if args.workers is not None:
            from repro.experiments.base import set_default_workers

            set_default_workers(args.workers)
        profile = get_profile(args.profile)
        if args.experiment == "all":
            targets = list(all_experiments().values())
        else:
            targets = [get_experiment(args.experiment)]
        for module in targets:
            started = time.perf_counter()
            result = module.run(profile)
            print(result.format_table())
            if args.chart:
                from repro.report.charts import chart_for_result

                chart = chart_for_result(result)
                if chart:
                    print(chart)
            print(f"({time.perf_counter() - started:.1f}s)")
            print()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
