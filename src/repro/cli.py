"""Command-line interface: regenerate any paper exhibit.

Usage::

    repro-vod list
    repro-vod fig08 [--profile fast|medium|paper]
    repro-vod all --profile medium
    python -m repro.cli fig15

Each experiment prints its paper-style table plus the paper's expected
shape for eyeball comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import all_experiments, get_experiment, get_profile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description=(
            "Regenerate the tables and figures of 'Deploying Video-on-Demand "
            "Services on Cable Networks' (ICDCS 2007)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig08), 'all', or 'list'",
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="scale profile: fast (default), medium, or paper",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII bar chart under each table",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run config sweeps across N worker processes "
            "(0 = one per CPU; default 1 = serial). Results are "
            "bit-identical to a serial run."
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for experiment_id, module in all_experiments().items():
            print(f"{experiment_id:10s} {module.TITLE}")
        return 0

    try:
        if args.workers != 1:
            from repro.experiments.base import set_default_workers

            set_default_workers(args.workers)
        profile = get_profile(args.profile)
        if args.experiment == "all":
            targets = list(all_experiments().values())
        else:
            targets = [get_experiment(args.experiment)]
        for module in targets:
            started = time.perf_counter()
            result = module.run(profile)
            print(result.format_table())
            if args.chart:
                from repro.report.charts import chart_for_result

                chart = chart_for_result(result)
                if chart:
                    print(chart)
            print(f"({time.perf_counter() - started:.1f}s)")
            print()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
