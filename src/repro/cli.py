"""Command-line interface: paper exhibits and scenario files.

Usage::

    repro-vod list
    repro-vod list-strategies
    repro-vod list-families
    repro-vod fig08 [--profile fast|medium|paper]
    repro-vod all --profile medium
    repro-vod policies --workers 0
    repro-vod run examples/scenarios/quickstart.json
    repro-vod sweep examples/scenarios/gdsf_history_sweep.json --out rows.csv
    repro-vod describe fig08 --profile fast
    repro-vod describe fig15 --flat > fig15_grid.json
    repro-vod fig08 --trace-backend python
    repro-vod run examples/scenarios/quickstart.json --engine columnar
    python -m repro.cli fig15

Experiments print their paper-style table plus the paper's expected
shape for eyeball comparison.  ``run`` and ``sweep`` execute scenario /
sweep JSON files (see :mod:`repro.scenario`); sweep rows *stream* --
each row prints as its result lands, in stable expansion order, so long
grids (the 25-cell fig15 grid, parameter scans) show live progress.
``describe`` prints any scenario-backed built-in experiment in that
same JSON schema -- the fastest way to start a custom sweep is to
describe the nearest figure and edit the file.  ``list-strategies`` prints every cache policy
registered in the policy engine (name, label, parameters); sweeps
parallelize automatically (``REPRO_WORKERS`` or one worker per CPU)
unless ``--workers`` pins a count.
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.experiments import all_experiments, get_experiment, get_profile

#: Scenario-file subcommands (everything else is an experiment id).
_SUBCOMMANDS = ("run", "sweep", "describe", "lint")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vod",
        description=(
            "Regenerate the tables and figures of 'Deploying Video-on-Demand "
            "Services on Cable Networks' (ICDCS 2007), or run declarative "
            "scenario/sweep JSON files."
        ),
        epilog=(
            "subcommands: run <scenario.json>, sweep <sweep.json> "
            "[--out rows.csv], describe <experiment-id>"
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (e.g. fig08), 'all', 'list', 'list-strategies', "
            "'list-families', or a subcommand: run / sweep / describe"
        ),
    )
    parser.add_argument(
        "--profile",
        default=None,
        help="scale profile: fast (default), medium, or paper",
    )
    parser.add_argument(
        "--chart",
        action="store_true",
        help="append an ASCII bar chart under each table",
    )
    _add_workers_flag(parser)
    _add_trace_backend_flag(parser)
    return parser


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "run config sweeps across N worker processes (0 = one per "
            "CPU; 1 = serial; default: the REPRO_WORKERS environment "
            "variable, else one per CPU). Results are bit-identical to "
            "a serial run."
        ),
    )


def _add_trace_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-backend",
        default=None,
        choices=("auto", "python", "numpy"),
        help=(
            "synthetic-trace generator backend (default: the "
            "REPRO_TRACE_BACKEND environment variable, else auto: numpy "
            "when importable, pure python otherwise). Backends agree on "
            "every modeled distribution but draw different random "
            "streams, so switching changes individual records."
        ),
    )


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default=None,
        choices=("auto", "columnar", "bucket", "heap", "python"),
        help=(
            "event-engine override for the loaded file: columnar "
            "(vectorized, needs numpy), bucket (scalar reference), heap "
            "(legacy), auto (columnar when available, else bucket), or "
            "python (alias for bucket). All engines produce bit-identical "
            "results, so this only affects speed."
        ),
    )


def _apply_workers(workers: Optional[int]) -> None:
    if workers is not None:
        from repro.core.parallel import set_default_workers

        set_default_workers(workers)


def _apply_trace_backend(backend: Optional[str]) -> None:
    if backend is not None:
        from repro.trace.synthetic import set_trace_backend

        set_trace_backend(backend)


def _print_strategies() -> None:
    """Render the policy registry as an aligned table."""
    from repro.cache.policies import iter_policies

    rows = []
    for info in iter_policies():
        params = ", ".join(
            f"{name}={default!r}" for name, default in info.parameters()
        ) or "-"
        rows.append((info.name, info.label, params, info.summary))
    name_width = max(len(row[0]) for row in rows)
    label_width = max(len(row[1]) for row in rows)
    param_width = max(len(row[2]) for row in rows)
    for name, label, params, summary in rows:
        print(f"{name:<{name_width}}  {label:<{label_width}}  "
              f"{params:<{param_width}}  {summary}")
    _print_live_admissions()


def _print_live_admissions() -> None:
    """Append the live admission-side policies to the registry listing."""
    from repro.cache.policies import iter_live_admissions

    rows = []
    for info in iter_live_admissions():
        params = ", ".join(
            f"{name}={default!r}" for name, default in info.parameters()
        ) or "-"
        rows.append((info.name, params, info.summary))
    if not rows:
        return
    print()
    print("live admission policies (repro-vod run --live "
          "[--throttle SPEC] [--fairness SPEC]):")
    name_width = max(len(row[0]) for row in rows)
    param_width = max(len(row[1]) for row in rows)
    for name, params, summary in rows:
        print(f"{name:<{name_width}}  {params:<{param_width}}  {summary}")


def _print_families() -> None:
    """Render the workload-family registry as an aligned table."""
    from repro.trace.families import iter_families

    rows = []
    for info in iter_families():
        names = [name for name, _ in info.parameters()]
        # powerinfo carries ~23 calibration knobs; keep the table
        # readable and point at the spec class for the full surface.
        if len(names) > 8:
            names = names[:8] + [f"... +{len(names) - 8} more"]
        params = ", ".join(names) or "-"
        rows.append((info.name, info.capabilities(), params, info.summary))
    name_width = max(len(row[0]) for row in rows)
    caps_width = max(len(row[1]) for row in rows)
    param_width = max(len(row[2]) for row in rows)
    for name, caps, params, summary in rows:
        print(f"{name:<{name_width}}  {caps:<{caps_width}}  "
              f"{params:<{param_width}}  {summary}")


# ---------------------------------------------------------------------------
# Scenario-file subcommands
# ---------------------------------------------------------------------------


def _row_table(title: str, columns: Sequence[str],
               rows: List[Dict[str, Any]]) -> str:
    """Render rows through the standard experiment table formatter."""
    from repro.experiments.base import ExperimentResult

    ordered = list(columns)
    for row in rows:
        for key in row:
            if key not in ordered:
                ordered.append(key)
    result = ExperimentResult(
        experiment_id=title or "scenario",
        title="",
        profile_name="file",
        columns=ordered,
        rows=rows,
    )
    return result.format_table()


def _write_csv(path: str, rows: List[Dict[str, Any]]) -> None:
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    try:
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
    except OSError as error:
        raise ReproError(f"cannot write CSV {path!r}: {error}") from None


def _stream_sweep_rows(sweep: Any) -> List[Dict[str, Any]]:
    """Run a sweep, printing each row as its result lands.

    Results stream back in expansion order (the runner uses ordered
    ``imap``), so long grids show live, stable progress instead of
    minutes of silence followed by one table.  Column widths come from
    the header names (values wider than their column overflow rather
    than buffering the whole table); keys a later point introduces are
    appended as ``key=value`` suffixes.  Returns all rows for CSV
    export.
    """
    from repro.experiments.base import format_cell
    from repro.scenario import iter_sweep_rows

    title = f"{sweep.sweep_id}: {sweep.title}  [{len(sweep)} points]"
    print(title, flush=True)
    rows: List[Dict[str, Any]] = []
    columns: List[str] = []
    widths: Dict[str, int] = {}
    for row in iter_sweep_rows(sweep):
        if not rows:
            columns = list(sweep.columns)
            for key in row:
                if key not in columns:
                    columns.append(key)
            widths = {name: max(len(name), 12) for name in columns}
            print("  ".join(name.ljust(widths[name]) for name in columns))
            print("  ".join("-" * widths[name] for name in columns),
                  flush=True)
        line = "  ".join(
            format_cell(row.get(name, "")).ljust(widths[name]) for name in columns
        )
        extras = [f"{key}={format_cell(value)}" for key, value in row.items()
                  if key not in columns]
        if extras:
            line = f"{line}  {' '.join(extras)}"
        print(line.rstrip(), flush=True)
        rows.append(row)
    return rows


def _cmd_run_or_sweep(subcommand: str, argv: List[str]) -> int:
    """``run``/``sweep``: execute a scenario or sweep JSON file."""
    parser = argparse.ArgumentParser(
        prog=f"repro-vod {subcommand}",
        description=(
            "Execute a scenario or sweep JSON file and print the standard "
            "result table (sweep rows stream as they finish; see repro-vod "
            "describe for the schema)."
        ),
    )
    parser.add_argument("file", help="path to a scenario/sweep JSON file")
    parser.add_argument("--out", default=None, metavar="CSV",
                        help="also write the result rows as CSV")
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "cut each replay into N per-neighborhood-group shard tasks "
            "(bit-identical to the monolithic run; parallelizes across "
            "--workers). Overrides the file's 'shards' field."
        ),
    )
    parser.add_argument(
        "--streaming", action="store_true",
        help=(
            "generate each trace lazily and replay it chunk by chunk "
            "(bounded memory; bit-identical to the materialized run). "
            "Overrides the file's 'streaming' field."
        ),
    )
    parser.add_argument(
        "--live", action="store_true",
        help=(
            "drain each workload through the live headend mode (online "
            "request stream behind admission control; bit-identical to "
            "the offline replay when no admission policy is set). "
            "Overrides the file's 'live' field."
        ),
    )
    parser.add_argument(
        "--throttle", default=None, metavar="SPEC",
        help=(
            "live sliding-window overload throttle, e.g. "
            "'throttle:4,86400' or "
            "'throttle:user_budget=4,program_budget=60' (implies --live). "
            "Overrides the file's 'throttle' field."
        ),
    )
    parser.add_argument(
        "--fairness", default=None, metavar="SPEC",
        help=(
            "live virtual-counter fairness scheduler, e.g. "
            "'vtc:1800' or 'vtc:lead_seconds=1800,fill_weight=2' "
            "(implies --live). Overrides the file's 'fairness' field."
        ),
    )
    _add_workers_flag(parser)
    _add_trace_backend_flag(parser)
    _add_engine_flag(parser)
    args = parser.parse_args(argv)

    from repro.scenario import Scenario, load, run_sweep

    _apply_workers(args.workers)
    _apply_trace_backend(args.trace_backend)
    loaded = load(args.file)

    overrides: Dict[str, Any] = {}
    if args.engine is not None:
        # Scenarios carry an explicit engine field, so a process-level
        # default would never reach them; rewrite the loaded object with
        # the flag's choice instead (aliases resolved to a concrete
        # engine first, since the scenario schema only accepts those).
        from repro.core.runner import resolve_engine

        overrides["engine"] = resolve_engine(args.engine)
    if args.shards is not None:
        overrides["shards"] = args.shards
    if args.streaming:
        overrides["streaming"] = True
    if args.live or args.throttle is not None or args.fairness is not None:
        overrides["live"] = True
    if args.throttle is not None:
        # Strings are fine: Scenario coerces name[:args] specs on
        # construction, so the flag reuses the schema's own grammar.
        overrides["throttle"] = args.throttle
    if args.fairness is not None:
        overrides["fairness"] = args.fairness
    if overrides:
        from dataclasses import replace

        if isinstance(loaded, Scenario):
            loaded = replace(loaded, **overrides)
        else:
            loaded = replace(loaded, base=replace(loaded.base, **overrides))
    started = time.perf_counter()
    if isinstance(loaded, Scenario):
        rows = run_sweep(loaded)
        points = 1
        print(_row_table(loaded.label or "scenario", (), rows))
    else:
        points = len(loaded)
        rows = _stream_sweep_rows(loaded)
    elapsed = time.perf_counter() - started
    print(f"({points} run{'s' if points != 1 else ''}, {elapsed:.1f}s)")
    if args.out:
        _write_csv(args.out, rows)
        print(f"wrote {len(rows)} rows to {args.out}")
    return 0


def _cmd_describe(argv: List[str]) -> int:
    """``describe``: print a built-in experiment as scenario/sweep JSON."""
    parser = argparse.ArgumentParser(
        prog="repro-vod describe",
        description=(
            "Print a scenario-backed experiment's sweep as JSON -- a "
            "ready-made starting point for custom scenario files."
        ),
    )
    parser.add_argument("experiment", help="experiment id (e.g. fig08)")
    parser.add_argument("--profile", default=None,
                        help="scale profile the JSON is snapshotted at")
    parser.add_argument(
        "--flat",
        action="store_true",
        help=(
            "inline the profile-scaled grid: emit one fully specified "
            "point per run (single 'point' axis, no cartesian product), "
            "row-identical to the nested form but portable to consumers "
            "that know nothing about experiment profiles"
        ),
    )
    args = parser.parse_args(argv)

    from repro.experiments.registry import describable_experiments

    module = get_experiment(args.experiment)
    if not hasattr(module, "sweep"):
        raise ReproError(
            f"experiment {args.experiment!r} is not scenario-backed; "
            f"describable ids: {describable_experiments()}"
        )
    profile = get_profile(args.profile)
    sweep = module.sweep(profile)
    if args.flat:
        sweep = sweep.flattened()
    print(sweep.to_json())
    return 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] in _SUBCOMMANDS:
            if argv[0] == "describe":
                return _cmd_describe(argv[1:])
            if argv[0] == "lint":
                from repro.devtools.lint import main as lint_main

                return lint_main(argv[1:])
            return _cmd_run_or_sweep(argv[0], argv[1:])
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for experiment_id, module in all_experiments().items():
            print(f"{experiment_id:10s} {module.TITLE}")
        return 0

    if args.experiment == "list-strategies":
        _print_strategies()
        return 0

    if args.experiment == "list-families":
        _print_families()
        return 0

    try:
        _apply_workers(args.workers)
        _apply_trace_backend(args.trace_backend)
        profile = get_profile(args.profile)
        if args.experiment == "all":
            targets = list(all_experiments().values())
        else:
            targets = [get_experiment(args.experiment)]
        for module in targets:
            started = time.perf_counter()
            result = module.run(profile)
            print(result.format_table())
            if args.chart:
                from repro.report.charts import chart_for_result

                chart = chart_for_result(result)
                if chart:
                    print(chart)
            print(f"({time.perf_counter() - started:.1f}s)")
            print()
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
