"""The quantitative "why not multicast" case (paper section IV-A).

Combines three trace facts into one report:

1. **Skew** -- per-15-minute session-initiation peaks for the most
   popular vs. 99%/95%-quantile programs (Fig 2): outside the head, too
   few concurrent viewers exist to form trees.
2. **Attrition** -- the session-length distribution of the most popular
   program (Fig 3): most viewers leave within minutes, churning any tree
   they joined.
3. **Achievable savings** -- the generous batching+patching bound from
   :mod:`repro.baselines.multicast`, compared against what the
   cooperative cache achieves on the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.baselines.multicast import MulticastModel, MulticastReport
from repro.trace.records import Trace
from repro.trace.stats import AttritionSummary, attrition_summary, popularity_timeseries


@dataclass(frozen=True)
class MulticastCaseReport:
    """Everything section IV-A asserts, measured on one trace."""

    peak_sessions_max_program: int
    peak_sessions_q99_program: int
    peak_sessions_q95_program: int
    attrition: AttritionSummary
    multicast: MulticastReport

    @property
    def median_session_minutes(self) -> float:
        """Median watch time of the most popular program, in minutes."""
        return self.attrition.median_session_seconds / units.SECONDS_PER_MINUTE

    def summary(self) -> str:
        """The paper's argument, with this trace's numbers filled in."""
        lines = [
            "Why not multicast:",
            f"  peak 15-min sessions: most popular program {self.peak_sessions_max_program}, "
            f"99% quantile {self.peak_sessions_q99_program}, "
            f"95% quantile {self.peak_sessions_q95_program}",
            f"  most popular program: median session "
            f"{self.median_session_minutes:.1f} min, "
            f"{self.attrition.fraction_past_halfway:.0%} of sessions pass halfway",
            f"  batching+patching multicast saves "
            f"{self.multicast.savings_fraction:.0%} of server bits; "
            f"{self.multicast.fraction_singleton_groups:.0%} of streams never "
            f"find a second member (mean group size "
            f"{self.multicast.mean_group_size:.1f})",
        ]
        return "\n".join(lines)


def why_not_multicast(
    trace: Trace,
    join_window_seconds: float = 10 * units.SECONDS_PER_MINUTE,
) -> MulticastCaseReport:
    """Measure the section IV-A argument on ``trace``."""
    skew = popularity_timeseries(trace)
    max_peak, q99_peak, q95_peak = skew.peak_counts()
    return MulticastCaseReport(
        peak_sessions_max_program=max_peak,
        peak_sessions_q99_program=q99_peak,
        peak_sessions_q95_program=q95_peak,
        attrition=attrition_summary(trace),
        multicast=MulticastModel(join_window_seconds).evaluate(trace),
    )
