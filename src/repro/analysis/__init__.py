"""Figure-level analyses over traces and simulation results.

Mostly thin, well-named wrappers over :mod:`repro.trace.stats`,
:mod:`repro.baselines` and :class:`repro.core.results.SimulationResult`,
grouped here so experiment modules and examples read declaratively.
"""

from repro.analysis.feasibility import FeasibilityReport, assess_feasibility
from repro.analysis.multicast import MulticastCaseReport, why_not_multicast

__all__ = [
    "FeasibilityReport",
    "assess_feasibility",
    "MulticastCaseReport",
    "why_not_multicast",
]
