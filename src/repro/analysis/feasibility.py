"""Coax feasibility assessment (paper section VI-B).

The paper's feasibility argument: even in 1,000-subscriber
neighborhoods, peak VoD traffic on the shared coax averages ~450 Mb/s
and stays under ~650 Mb/s in poor cases -- "less than 17% of the
capacity of the coaxial line in extreme cases".  This module turns a
:class:`~repro.core.results.SimulationResult` into that judgment, and
additionally checks the upstream budget, which the paper notes is the
scarcer direction (215 Mb/s shared).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.results import SimulationResult


@dataclass(frozen=True)
class FeasibilityReport:
    """Peak coax demands of one simulated deployment vs. plant capacity."""

    mean_coax_mbps: float
    p95_coax_mbps: float
    worst_coax_mbps: float
    coax_vod_capacity_mbps: float
    upstream_capacity_mbps: float
    peer_served_fraction: float
    #: Measured mean peak-hour peer-broadcast traffic (Mb/s); the load
    #: that exists only because of the bidirectional-amplifier upgrade.
    mean_peer_broadcast_mbps: float = 0.0

    @property
    def worst_case_utilization(self) -> float:
        """Worst peak-hour coax traffic over the VoD-usable capacity."""
        return self.worst_coax_mbps / self.coax_vod_capacity_mbps

    @property
    def feasible(self) -> bool:
        """The paper's bar: worst-case coax demand fits the VoD budget."""
        return self.worst_coax_mbps <= self.coax_vod_capacity_mbps

    @property
    def worst_upstream_mbps(self) -> float:
        """Upper bound on upstream demand: the peer-served share of traffic.

        Only peer-to-peer serves traverse the upstream direction (the
        headend injects server misses downstream), and with bidirectional
        amplifiers (section IV-B.4) peers broadcast on the same plant.
        """
        return self.worst_coax_mbps * self.peer_served_fraction

    @property
    def needs_bidirectional_amplifiers(self) -> bool:
        """Whether peer traffic exceeds the legacy upstream allocation.

        The paper mandates bidirectional amplifiers outright; this check
        quantifies the mandate -- once peer broadcasts exceed the 215 Mb/s
        legacy upstream budget, the upgrade is load-bearing, not optional.
        """
        return self.mean_peer_broadcast_mbps > self.upstream_capacity_mbps

    def summary(self) -> str:
        """One-paragraph verdict in the paper's terms."""
        return (
            f"peak coax: mean {self.mean_coax_mbps:.0f} Mb/s, "
            f"p95 {self.p95_coax_mbps:.0f} Mb/s, worst {self.worst_coax_mbps:.0f} Mb/s "
            f"= {self.worst_case_utilization:.1%} of the "
            f"{self.coax_vod_capacity_mbps:.0f} Mb/s VoD budget -> "
            f"{'feasible' if self.feasible else 'INFEASIBLE'}"
        )


def assess_feasibility(result: SimulationResult) -> FeasibilityReport:
    """Build a :class:`FeasibilityReport` from a simulation result."""
    samples = result.coax_peak_samples()
    worst = max(samples) if samples else 0.0
    counters = result.counters
    served = counters.peer_hits + counters.server_deliveries
    peer_fraction = counters.peer_hits / served if served else 0.0
    return FeasibilityReport(
        mean_coax_mbps=result.coax_peak_mean_mbps(),
        p95_coax_mbps=result.coax_peak_quantile_mbps(0.95),
        worst_coax_mbps=units.to_mbps(worst),
        coax_vod_capacity_mbps=units.to_mbps(units.COAX_VOD_CAPACITY_BPS),
        upstream_capacity_mbps=units.to_mbps(units.COAX_UPSTREAM_CAPACITY_BPS),
        peer_served_fraction=peer_fraction,
        mean_peer_broadcast_mbps=result.upstream_peak_mean_mbps(),
    )
