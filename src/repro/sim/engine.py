"""The discrete-event simulation loop.

:class:`Simulator` owns the clock and the event queue.  Model components
schedule callbacks (absolute via :meth:`Simulator.at`, relative via
:meth:`Simulator.after`) and the loop executes them in chronological order.

Design notes
------------
* The clock only moves forward.  Scheduling an event in the past raises
  :class:`~repro.errors.SimulationError` immediately -- time travel is
  always a model bug and silently clamping it would corrupt results.
* The engine is callback-based rather than coroutine-based.  Trace-driven
  simulations are dominated by millions of tiny events (one per video
  segment); plain callbacks avoid generator overhead and keep per-event
  cost to a couple of dict operations.
* ``run(until=...)`` supports horizons so experiments can meter a warm
  window and stop.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventCallback, EventQueue


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in simulated seconds (default ``0.0``).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.after(10.0, fired.append, "a")
    >>> _ = sim.at(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time: float, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, clock is already "
                f"at t={self._now:.6f}"
            )
        return self._queue.push(time, callback, *args)

    def after(self, delay: float, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback, *args)

    def cancel(self, event: Event) -> None:
        """Retract a scheduled event before it fires (idempotent)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if the queue
        was empty (clock unchanged).
        """
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:  # pragma: no cover - guarded by at()
            raise SimulationError(
                f"event queue returned past event t={event.time} < now={self._now}"
            )
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the queue drains or the horizon.

        Parameters
        ----------
        until:
            Optional absolute time horizon.  Events at exactly ``until``
            are executed; later events remain queued and the clock is
            advanced to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant: run() called from a callback")
        self._running = True
        try:
            if until is None:
                while self.step():
                    pass
                return
            if until < self._now:
                raise SimulationError(
                    f"horizon t={until} precedes current time t={self._now}"
                )
            while True:
                next_time = self._queue.peek_time()
                if next_time is None or next_time > until:
                    break
                self.step()
            self._now = max(self._now, until)
        finally:
            self._running = False
