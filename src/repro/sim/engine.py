"""The discrete-event simulation loop.

:class:`Simulator` owns the clock and two complementary event stores:

* a binary heap (:class:`~repro.sim.events.EventQueue`) for arbitrary
  events scheduled with :meth:`Simulator.at` / :meth:`Simulator.after`,
  which return cancellable :class:`~repro.sim.events.Event` handles;
* a tick-bucketed calendar queue
  (:class:`~repro.sim.tickqueue.TickBucketQueue`) for the hot path:
  fire-and-forget entries (:meth:`Simulator.at_fast`) and *session
  arcs* (:meth:`Simulator.start_arc`) whose steps land on the fixed
  ``SEGMENT_SECONDS`` grid.  These are stored as plain tuples -- no
  per-event object allocation, no per-event heap sift.

Both stores draw sequence numbers from one shared counter and the run
loop merges them by ``(time, seq)``, so the execution order is exactly
what a single global heap would produce: chronological with FIFO
tie-breaking within an instant.  A simulation may freely mix both APIs.

Design notes
------------
* The clock only moves forward.  Scheduling an event in the past raises
  :class:`~repro.errors.SimulationError` immediately -- time travel is
  always a model bug and silently clamping it would corrupt results.
* The engine is callback-based rather than coroutine-based.  Trace-driven
  simulations are dominated by millions of tiny events (one per video
  segment); plain callbacks avoid generator overhead and keep per-event
  cost to a couple of dict operations.
* ``run(until=...)`` supports horizons so experiments can meter a warm
  window and stop.
* When the whole event schedule is *static* -- nothing cancels or
  reschedules anything, as in trace replay -- the drain loop itself can
  be skipped: :mod:`repro.sim.columnar` precomputes the entire
  ``(time, seq)``-ordered event stream as flat arrays (including the
  exact sequence numbers this engine's shared counter would assign),
  which is what ``engine="columnar"`` walks instead of running this
  loop.  The ordering contract documented here is therefore load-
  bearing for that module too: any change to the merge rule or the
  counter discipline must be mirrored there.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, EventCallback, EventQueue
from repro.sim.tickqueue import DEFAULT_TICK_SECONDS, SessionArc, TickBucketQueue


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial clock value in simulated seconds (default ``0.0``).
    tick_seconds:
        Bucket width of the calendar queue (default: the 5-minute
        segment grid).  Only affects the fast path's storage layout,
        never execution order.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.after(10.0, fired.append, "a")
    >>> _ = sim.at(5.0, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    10.0
    """

    __slots__ = ("_now", "_queue", "_buckets", "_events_processed",
                 "_running", "_start_seq")

    def __init__(self, start_time: float = 0.0,
                 tick_seconds: float = DEFAULT_TICK_SECONDS) -> None:
        self._now = float(start_time)
        counter = itertools.count()
        self._queue = EventQueue(counter)
        self._buckets = TickBucketQueue(counter, tick_seconds)
        self._events_processed = 0
        self._running = False
        #: Next session-start sequence number handed to extend_starts
        #: (streamed replay keeps starts in a low band, see below).
        self._start_seq = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far (diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled (heap + buckets)."""
        return len(self._queue) + len(self._buckets)

    @property
    def tick_seconds(self) -> float:
        """Width of one calendar-queue bucket."""
        return self._buckets.width

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def at(self, time: float, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises
        ------
        SimulationError
            If ``time`` precedes the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, clock is already "
                f"at t={self._now:.6f}"
            )
        return self._queue.push(time, callback, *args)

    def after(self, delay: float, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback, *args)

    def at_fast(self, time: float, callback: EventCallback, *args: Any) -> None:
        """Schedule ``callback(*args)`` at ``time`` without a cancel handle.

        O(1) append into a calendar bucket instead of a heap sift, with
        no :class:`Event` allocation.  Execution order relative to every
        other event is identical to :meth:`at`.  Times that fall inside
        the bucket currently draining fall back to the heap (the bucket
        walk never revisits a sorted bucket).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.6f}, clock is already "
                f"at t={self._now:.6f}"
            )
        if self._buckets.accepts(time):
            self._buckets.push(time, callback, args)
        else:
            self._queue.push(time, callback, *args)

    def preload_starts(self, times: Any, callback: EventCallback,
                       payloads: Any) -> None:
        """Bulk-register a start-sorted event storm before the run.

        The canonical caller is trace replay: one session-start per
        record, every record already sorted by start time.  The whole
        column becomes per-tick slabs in the calendar queue
        (:meth:`TickBucketQueue.preload_sorted`) -- no per-event tuple,
        dict probe or counter draw until each bucket is reached -- and
        the shared sequence counter is rebased past the preloaded
        count, so execution order is bit-identical to scheduling each
        start through :meth:`at_fast` in column order.

        Raises
        ------
        SimulationError
            If the simulator is not fresh (anything already executed,
            pending, or cancelled-in-place would race the preloaded
            sequence numbers), if a start precedes the current clock,
            or if the column is not ascending.
        """
        if self._events_processed or len(self._queue):
            raise SimulationError(
                "preload_starts requires a fresh simulator (no events "
                "executed or pending)"
            )
        if len(times) and times[0] < self._now:
            raise SimulationError(
                f"cannot preload a start at t={times[0]:.6f}, clock is "
                f"already at t={self._now:.6f}"
            )
        try:
            n = self._buckets.preload_sorted(times, payloads, callback)
        except ValueError as error:
            # The queue owns the slab invariants (fresh slab storage,
            # equal columns, ascending times); surface violations under
            # the engine's error type like every other scheduling bug.
            raise SimulationError(str(error)) from None
        counter = itertools.count(n)
        self._queue._counter = counter
        self._buckets._counter = counter

    #: Sequence band for dynamically scheduled events under streamed
    #: replay.  extend_starts() cannot know the total record count up
    #: front the way preload_starts() can, so instead of rebasing the
    #: shared counter past the starts it parks *dynamic* draws in a high
    #: band and numbers starts 0, 1, 2, ... chunk after chunk.  Relative
    #: order within each class is unchanged and every start still
    #: precedes any coincident dynamic event -- the same total order the
    #: whole-trace preload produces (sequence values differ, comparisons
    #: do not).
    _STREAM_DYNAMIC_SEQ = 1 << 62

    def extend_starts(self, times: Any, callback: EventCallback,
                      payloads: Any) -> None:
        """Register one chunk of a start-sorted event storm mid-run.

        The streamed counterpart of :meth:`preload_starts`: call once
        per trace chunk, in chronological chunk order, after running
        the clock to just before the chunk's window (so every earlier
        bucket has drained -- :meth:`run` with a horizon just below a
        tick boundary leaves later buckets unactivated for exactly this
        reason).  The first call must find a fresh simulator and
        switches dynamic sequence numbering to the high band described
        above; replaying a trace chunk-by-chunk through this API is
        bit-identical to one whole-trace :meth:`preload_starts`.

        Raises
        ------
        SimulationError
            If called from inside :meth:`run`, on a non-fresh simulator
            for the first chunk, with a start before the clock, or with
            a mis-ordered / overlapping chunk.
        """
        if self._running:
            raise SimulationError(
                "simulator is not reentrant: extend_starts() called from "
                "a callback"
            )
        if len(times) and times[0] < self._now:
            raise SimulationError(
                f"cannot extend with a start at t={times[0]:.6f}, clock "
                f"is already at t={self._now:.6f}"
            )
        if self._start_seq == 0:
            if self._events_processed or len(self._queue) or len(self._buckets):
                raise SimulationError(
                    "extend_starts requires a fresh simulator for the "
                    "first chunk (no events executed or pending)"
                )
            counter = itertools.count(self._STREAM_DYNAMIC_SEQ)
            self._queue._counter = counter
            self._buckets._counter = counter
        try:
            n = self._buckets.extend_sorted(times, payloads, callback,
                                            self._start_seq)
        except ValueError as error:
            raise SimulationError(str(error)) from None
        self._start_seq += n

    def start_arc(self, time: float, fn, *args: Any) -> SessionArc:
        """Register a session arc whose first step fires at ``time``.

        The engine calls ``fn(now, index, *args)`` at ``time`` and then
        every :attr:`tick_seconds` for as long as ``fn`` returns truthy;
        ``index`` counts steps from 0.  The whole arc costs one
        registration plus one tuple append per step -- the pattern for
        "one event per video segment until the viewer stops".

        Raises
        ------
        SimulationError
            If ``time`` is in the past or falls inside the bucket
            currently draining (arcs live on the forward bucket walk).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot start an arc at t={time:.6f}, clock is already "
                f"at t={self._now:.6f}"
            )
        if not self._buckets.accepts(time):
            raise SimulationError(
                f"arc start t={time:.6f} falls in the bucket currently "
                f"draining; schedule the first step at least one tick ahead"
            )
        return self._buckets.start_arc(time, fn, args)

    def cancel(self, event: Event) -> None:
        """Retract a scheduled event before it fires (idempotent)."""
        self._queue.cancel(event)

    def cancel_arc(self, arc: SessionArc) -> None:
        """Retract an in-flight session arc (idempotent)."""
        self._buckets.cancel_arc(arc)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _dispatch(self, limit: float) -> bool:
        """Execute the single next event with time <= ``limit``.

        Returns ``True`` if an event was executed.  The next event is
        the ``(time, seq)`` minimum across the heap and the calendar
        buckets -- the merge that keeps mixed-API schedules in exact
        global FIFO order.
        """
        queue = self._queue
        buckets = self._buckets
        while True:
            bucket_entry = buckets.peek_entry()
            heap_entry = queue.peek_entry()
            if bucket_entry is None:
                if heap_entry is None:
                    return False
                use_bucket = False
            elif heap_entry is None:
                use_bucket = True
            else:
                use_bucket = (
                    bucket_entry[0] < heap_entry[0]
                    or (bucket_entry[0] == heap_entry[0]
                        and bucket_entry[1] < heap_entry[1])
                )

            if not use_bucket:
                time = heap_entry[0]
                if time > limit:
                    return False
                event = queue.pop()
                self._now = time
                self._events_processed += 1
                event.fire()
                return True

            time = bucket_entry[0]
            if time > limit:
                return False
            buckets.advance()
            if len(bucket_entry) == 3:
                arc = bucket_entry[2]
                if not arc.active:
                    continue  # lazily-deleted cancelled step
                arc.pending = False
                buckets._live -= 1
                self._now = time
                self._events_processed += 1
                index = arc.index
                arc.index = index + 1
                if arc.fn(time, index, *arc.args) and arc.active:
                    buckets.continue_arc(arc, time + buckets.width)
                else:
                    arc.active = False
                return True
            buckets._live -= 1
            self._now = time
            self._events_processed += 1
            bucket_entry[2](*bucket_entry[3])
            return True

    def step(self) -> bool:
        """Execute the single next event.

        Returns ``True`` if an event was executed, ``False`` if nothing
        is scheduled (clock unchanged).

        Raises
        ------
        SimulationError
            If called from inside a running :meth:`run` loop: the run
            loop keeps its bucket cursor in locals for speed, so a
            re-entrant step would re-execute the entry currently being
            dispatched.
        """
        if self._running:
            raise SimulationError(
                "simulator is not reentrant: step() called from a callback"
            )
        return self._dispatch(math.inf)

    def run(self, until: Optional[float] = None) -> None:
        """Run events in order until the queues drain or the horizon.

        Parameters
        ----------
        until:
            Optional absolute time horizon.  Events at exactly ``until``
            are executed; later events remain queued and the clock is
            advanced to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant: run() called from a callback")
        self._running = True
        try:
            if until is None:
                limit = math.inf
            else:
                if until < self._now:
                    raise SimulationError(
                        f"horizon t={until} precedes current time t={self._now}"
                    )
                limit = until
            # Inlined merge of _dispatch(): this loop executes one
            # iteration per simulated event (hundreds of thousands per
            # run), so structure access is flattened into locals -- the
            # bucket cursor lives in `front`/`pos` and is only written
            # back when the front bucket changes or the loop exits, and
            # arc continuation appends straight into the target bucket.
            # Any semantic change here must be mirrored in _dispatch().
            queue = self._queue
            buckets = self._buckets
            heap = queue._heap
            bucket_map = buckets._buckets
            tick_heap = buckets._tick_heap
            counter = buckets._counter
            width = buckets.width
            heappop = _heappop
            heappush = _heappush
            processed = 0
            front = buckets._front
            pos = buckets._front_pos
            front_len = len(front) if front is not None else 0
            # The bucket one tick past the front, pre-created so arc
            # continuations are a bounds check + append.  Safe because a
            # front bucket never grows once activated (deposits into it
            # are routed to the heap) and arcs step exactly one tick.
            next_lo = next_hi = -1.0
            next_bucket: Optional[list] = None
            try:
                while True:
                    if front is None or pos >= front_len:
                        buckets._front_pos = pos
                        if tick_heap and tick_heap[0] * width > limit:
                            # Horizon-aware activation: the earliest
                            # pending bucket starts past the horizon, so
                            # every bucket does (ticks are aligned).
                            # Leave them *unactivated* -- activation
                            # would advance _front_tick and make
                            # accepts()/extend_sorted reject exactly the
                            # ticks a streamed replay appends its next
                            # chunk to after this run() returns.  Heap
                            # events inside the horizon still execute
                            # below; the check re-runs each iteration in
                            # case one deposits an earlier bucket.
                            front = None
                            front_len = 0
                            next_bucket = None
                            next_lo = next_hi = -1.0
                            if not heap:
                                break
                        else:
                            buckets._activate_next_bucket()
                            front = buckets._front
                            pos = buckets._front_pos
                            if front is not None:
                                front_len = len(front)
                                next_tick = buckets._front_tick + 1
                                next_lo = next_tick * width
                                next_hi = next_lo + width
                                next_bucket = bucket_map.get(next_tick)
                            else:
                                front_len = 0
                                next_bucket = None
                                next_lo = next_hi = -1.0
                    if heap:
                        while heap and heap[0][2].cancelled:
                            heappop(heap)
                        if front is not None and pos < len(front):
                            entry = front[pos]
                            if heap:
                                head = heap[0]
                                use_bucket = (entry[0] < head[0]
                                              or (entry[0] == head[0]
                                                  and entry[1] < head[1]))
                            else:
                                use_bucket = True
                        else:
                            if not heap:
                                break
                            use_bucket = False
                    elif front is not None and pos < len(front):
                        entry = front[pos]
                        use_bucket = True
                    else:
                        break

                    if use_bucket:
                        time = entry[0]
                        if time > limit:
                            break
                        pos += 1
                        if len(entry) == 3:
                            arc = entry[2]
                            if not arc.active:
                                continue  # lazily-deleted cancelled step
                            arc.pending = False
                            buckets._live -= 1
                            self._now = time
                            processed += 1
                            index = arc.index
                            arc.index = index + 1
                            if arc.fn(time, index, *arc.args) and arc.active:
                                # Inlined continue_arc()/_deposit().  An
                                # arc steps exactly one tick, so nearly
                                # every deposit lands in the cached
                                # next-door bucket; float rounding can
                                # (rarely) push it one further, handled
                                # by the general branch.
                                next_time = time + width
                                arc.time = next_time
                                arc.pending = True
                                if next_lo <= next_time < next_hi:
                                    if next_bucket is None:
                                        # A callback may have created
                                        # this bucket via at_fast()
                                        # since activation cached it.
                                        next_bucket = bucket_map.get(next_tick)
                                        if next_bucket is None:
                                            next_bucket = []
                                            bucket_map[next_tick] = next_bucket
                                            heappush(tick_heap, next_tick)
                                    next_bucket.append(
                                        (next_time, next(counter), arc)
                                    )
                                else:
                                    tick = int(next_time // width)
                                    bucket = bucket_map.get(tick)
                                    if bucket is None:
                                        bucket_map[tick] = [
                                            (next_time, next(counter), arc)
                                        ]
                                        heappush(tick_heap, tick)
                                    else:
                                        bucket.append(
                                            (next_time, next(counter), arc)
                                        )
                                buckets._live += 1
                            else:
                                arc.active = False
                        else:
                            buckets._live -= 1
                            self._now = time
                            processed += 1
                            entry[2](*entry[3])
                    else:
                        head = heap[0]
                        time = head[0]
                        if time > limit:
                            break
                        heappop(heap)
                        queue._live -= 1
                        self._now = time
                        processed += 1
                        head[2].fire()
            finally:
                buckets._front_pos = pos
                self._events_processed += processed
            if until is not None:
                self._now = max(self._now, until)
        finally:
            self._running = False
