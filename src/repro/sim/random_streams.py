"""Named, independently seeded random-number streams.

Reproducibility discipline: every stochastic subsystem (user placement,
session arrivals, program popularity draws, catalog-scaling remaps...)
draws from its *own* named stream derived deterministically from a single
root seed.  Two benefits:

1. **Stability under change** -- adding a random draw to one subsystem does
   not shift the sequence seen by any other subsystem, so experiments stay
   comparable across code revisions.
2. **The paper's §V-B requirement** -- "Peer placement is the same for each
   execution of the simulation with the same neighborhood size parameter" --
   falls out naturally: the placement stream is keyed only by the root seed
   and the placement parameters.

Streams are :class:`random.Random` instances seeded with a SHA-256 digest of
``(root_seed, name)``, so stream names may be arbitrary strings.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses SHA-256 so that similar names ("user-1", "user-2") yield
    uncorrelated seeds, unlike additive schemes.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, deterministic :class:`random.Random` streams.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("placement")
    >>> a is streams.get("arrivals")
    True
    >>> RandomStreams(seed=42).get("arrivals").random() == \
            RandomStreams(seed=42).get("arrivals").random()
    True
    """

    __slots__ = ("_seed", "_streams")

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams derive from."""
        return self._seed

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its internal state advances as it is consumed).
        """
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, name))
            self._streams[name] = stream
        return stream

    def fresh(self, name: str) -> random.Random:
        """Return a *new* generator for ``name`` in its initial state.

        Unlike :meth:`get`, this never shares state: two ``fresh`` calls
        with the same name yield independent generators that produce the
        same sequence.  Useful when a component must be able to replay its
        own randomness.
        """
        return random.Random(derive_seed(self._seed, name))

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child stream namespace rooted at ``(seed, name)``.

        Lets a subsystem hand out its own sub-streams without risk of
        name collisions with other subsystems.
        """
        return RandomStreams(derive_seed(self._seed, name))
