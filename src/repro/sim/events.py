"""Event and event-queue primitives for the discrete-event engine.

The queue is a binary heap ordered by ``(time, sequence)``.  The sequence
number gives events scheduled for the same instant a stable first-in
first-out order, which is essential for reproducibility: Python's ``heapq``
alone offers no tie-breaking guarantee, and comparing callbacks is
meaningless.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.errors import SimulationError

#: Signature of an event callback: receives the simulator-visible payload.
EventCallback = Callable[..., None]


@dataclass(order=False)
class Event:
    """A callback scheduled to fire at a simulated time.

    Events compare by ``(time, seq)`` so that the heap pops them in
    chronological order with FIFO tie-breaking.  ``cancelled`` implements
    lazy deletion: cancelling an event leaves it in the heap but the engine
    skips it when popped, which is O(1) instead of an O(n) heap repair.
    """

    time: float
    seq: int
    callback: EventCallback
    args: tuple = field(default_factory=tuple)
    cancelled: bool = False
    #: Owning queue, set by :meth:`EventQueue.push`.  Routing
    #: cancellation through it keeps the queue's live-event accounting
    #: exact no matter which handle a caller cancels through.
    queue: Optional["EventQueue"] = field(default=None, repr=False)

    def cancel(self) -> None:
        """Retract the event before it fires (idempotent).

        Delegates to the owning queue so ``len(queue)`` and
        ``Simulator.pending_events`` stay exact; a detached event (built
        outside any queue) just marks itself.
        """
        if self.queue is not None:
            self.queue.cancel(self)
        else:
            self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with its stored arguments."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __le__(self, other: "Event") -> bool:
        return (self.time, self.seq) <= (other.time, other.seq)


class EventQueue:
    """A chronological priority queue of :class:`Event` objects.

    Heap entries are ``(time, seq, event)`` tuples so ordering is decided
    by fast C-level tuple comparison on ``(time, seq)`` -- the simulator
    spends most of its time here, and comparing :class:`Event` objects
    through Python ``__lt__`` costs several times more.  A monotonic
    sequence counter gives same-instant events FIFO order, and the live
    counter keeps emptiness checks exact under lazy deletion.
    """

    __slots__ = ("_heap", "_counter", "_live")

    def __init__(self, counter: Optional[Iterator[int]] = None) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        #: Sequence source; the simulator passes a counter shared with
        #: its tick-bucket queue so both structures draw from one global
        #: FIFO numbering and can be merged by ``(time, seq)``.
        self._counter = itertools.count() if counter is None else counter
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, time: float, callback: EventCallback, *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``.

        Returns the :class:`Event`, whose :meth:`Event.cancel` can be used
        to retract it before it fires.
        """
        seq = next(self._counter)
        event = Event(time=time, seq=seq, callback=callback, args=args, queue=self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Retract a previously scheduled event (idempotent)."""
        if not event.cancelled:
            event.cancelled = True
            self._live -= 1

    def pop(self) -> Optional[Event]:
        """Pop the next live event in chronological order.

        Returns ``None`` when no live events remain.  Cancelled events are
        discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        if self._live != 0:  # pragma: no cover - internal invariant
            raise SimulationError(
                f"event queue accounting corrupt: {self._live} live events "
                "recorded but heap is empty"
            )
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        entry = self.peek_entry()
        return entry[0] if entry is not None else None

    def peek_entry(self) -> Optional[tuple[float, int, Event]]:
        """The next live ``(time, seq, event)`` heap entry, unconsumed.

        Cancelled events surfacing at the head are discarded, so after a
        successful peek the very next :meth:`pop` returns this event.
        """
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        return heap[0] if heap else None
