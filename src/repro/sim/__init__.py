"""Discrete-event simulation engine.

A small, deterministic discrete-event core in the style of SimPy's event
loop but purpose-built for trace-driven network simulations:

* :class:`~repro.sim.engine.Simulator` -- the event loop: schedule
  callbacks at absolute or relative simulated times and run until the
  queue drains (or until a horizon).
* :class:`~repro.sim.events.Event` -- a scheduled callback with stable
  FIFO tie-breaking so runs are reproducible.
* :class:`~repro.sim.tickqueue.TickBucketQueue` /
  :class:`~repro.sim.tickqueue.SessionArc` -- the tick-bucketed fast
  path for the per-segment event storm: O(1) tuple-slab scheduling and
  whole-session arcs, merged with the heap in exact FIFO order.
* :class:`~repro.sim.random_streams.RandomStreams` -- named, independently
  seeded random generators so that changing how much randomness one
  subsystem consumes does not perturb any other subsystem.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.random_streams import RandomStreams
from repro.sim.tickqueue import SessionArc, TickBucketQueue

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "RandomStreams",
    "SessionArc",
    "TickBucketQueue",
]
