"""Tick-bucketed calendar queue for the on-grid event storm.

Trace replay schedules one delivery per 5-minute video segment, so the
overwhelming majority of events land ``SEGMENT_SECONDS`` apart.  Pushing
each of them through the binary heap costs an :class:`~repro.sim.events.Event`
allocation plus two O(log n) sift passes.  This module stores them as
plain tuples in per-tick *buckets* instead: scheduling is an O(1) list
append, and each bucket is sorted once (a single C-level ``list.sort``
over mostly-ordered data) when the clock reaches it.

Two entry shapes share a bucket:

* ``(time, seq, callback, args)`` -- a fire-and-forget callback
  scheduled with :meth:`TickBucketQueue.push`;
* ``(time, seq, arc)`` -- one step of a :class:`SessionArc`.

``seq`` values come from the same monotonic counter as the heap's, so
merging bucket entries with heap events by ``(time, seq)`` reproduces
exactly the global FIFO-within-an-instant order a single heap would
give.  Sequence numbers are unique, so sorting never compares the
mismatched tails of the two tuple shapes.

Session-start slabs
-------------------

Trace replay begins with a second storm: one session-*start* event per
trace record, all registered before the clock moves.  Pushing each of
them through :meth:`push` costs a tick computation, a dict probe and a
counter draw per record.  :meth:`preload_sorted` instead stores the
whole start-sorted column as per-bucket **slabs** -- ``(lo, hi)`` slices
into the caller's own lists, found with one bisect per bucket -- and
materializes a slab into ``(time, seq, callback, args)`` entries only
when its bucket is activated.  Because preloading happens on a fresh
queue, record ``i`` simply *is* sequence number ``i``, which is exactly
what a per-record :meth:`push` loop would have assigned: the resulting
execution order is bit-identical, and buckets past a run's horizon
never pay for materialization at all.

The columnar engine (:mod:`repro.sim.columnar`) leans on two facts
pinned here: start ``i`` holds sequence number ``i`` (the slab rebase),
and an arc continuation deposited at ``time + tick_seconds`` always
lands in a strictly later bucket than its parent -- so the whole
bucket-by-bucket firing order can be reproduced without running the
queue at all.
"""

from __future__ import annotations

import heapq
import operator
from bisect import bisect_left
from itertools import islice
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro import units

#: Default bucket width: the segment grid the workload runs on.
DEFAULT_TICK_SECONDS = units.SEGMENT_SECONDS


class SessionArc:
    """A self-perpetuating run of callbacks one tick apart.

    A session's segment flow is fully determined at session start: one
    delivery every ``SEGMENT_SECONDS`` until the viewer walks away.
    Registering the whole arc once replaces the per-segment
    schedule-one-event chain; each step costs a single tuple append.

    The engine calls ``fn(now, index, *args)`` per step; the callback
    returns ``True`` to continue (the next step is deposited one tick
    later) or ``False`` to end the arc.  ``index`` counts fired steps
    from 0.  :meth:`TickBucketQueue.cancel_arc` retracts an in-flight
    arc; its already-deposited entry is skipped when its bucket drains.
    """

    __slots__ = ("fn", "args", "time", "index", "active", "pending")

    def __init__(self, time: float, fn: Callable[..., bool], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.index = 0
        self.active = True
        #: Whether a bucket entry for the next step is outstanding
        #: (False exactly while the arc's callback is executing or after
        #: the arc ends) -- keeps live-event accounting exact on cancel.
        self.pending = False


class TickBucketQueue:
    """Calendar queue of tick-wide buckets merged with the event heap.

    The queue does not own a clock; :class:`~repro.sim.engine.Simulator`
    drives it and interleaves its entries with the binary heap by
    ``(time, seq)``.  ``counter`` must be the same sequence source the
    heap uses -- shared numbering is what makes the merge a total order.
    """

    __slots__ = ("width", "_counter", "_buckets", "_tick_heap",
                 "_front", "_front_pos", "_front_tick", "_live",
                 "_slabs")

    def __init__(self, counter: Iterator[int],
                 tick_seconds: float = DEFAULT_TICK_SECONDS) -> None:
        if tick_seconds <= 0:
            raise ValueError(f"tick width must be positive, got {tick_seconds}")
        self.width = float(tick_seconds)
        self._counter = counter
        self._buckets: dict[int, List[tuple]] = {}
        self._tick_heap: List[int] = []
        #: Sorted entries of the bucket currently being drained.
        self._front: Optional[List[tuple]] = None
        self._front_pos = 0
        #: Tick index of ``_front`` (-1 before any bucket is activated).
        self._front_tick = -1
        self._live = 0
        #: tick -> (lo, hi, (times, payloads, callback, base_seq)):
        #: a slice of a preloaded start column plus its backing source.
        #: The record at slice index ``i`` carries sequence number
        #: ``base_seq + i`` (0 for the whole-trace preload, a running
        #: chunk offset for streamed extensions).  Per-slab sources let
        #: a chunk's columns be released as soon as its last bucket
        #: drains -- the whole point of streaming replay.
        self._slabs: dict[int, Tuple[int, int, tuple]] = {}

    def __len__(self) -> int:
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def tick_of(self, time: float) -> int:
        """Bucket index covering ``time``."""
        return int(time // self.width)

    def accepts(self, time: float) -> bool:
        """Whether ``time`` falls in a bucket not yet activated.

        Entries may only join buckets strictly later than the one being
        drained; anything earlier must go to the heap so ordering never
        depends on a bucket the walk already sorted.
        """
        return int(time // self.width) > self._front_tick

    def push(self, time: float, callback: Callable[..., None],
             args: Tuple[Any, ...]) -> None:
        """Append a fire-and-forget entry (caller checked :meth:`accepts`)."""
        self._deposit((time, next(self._counter), callback, args))

    def start_arc(self, time: float, fn: Callable[..., bool],
                  args: Tuple[Any, ...]) -> SessionArc:
        """Register an arc whose first step fires at ``time``."""
        arc = SessionArc(time, fn, args)
        arc.pending = True
        self._deposit((time, next(self._counter), arc))
        return arc

    def continue_arc(self, arc: SessionArc, time: float) -> None:
        """Deposit the arc's next step (engine-internal)."""
        arc.time = time
        arc.pending = True
        self._deposit((time, next(self._counter), arc))

    def cancel_arc(self, arc: SessionArc) -> None:
        """Retract an in-flight arc (idempotent).

        The arc's pending bucket entry stays where it is and is skipped
        when its bucket drains -- the same lazy deletion the heap uses.
        """
        if arc.active:
            arc.active = False
            if arc.pending:
                arc.pending = False
                self._live -= 1

    def preload_sorted(self, times: Sequence[float], payloads: Sequence[Any],
                       callback: Callable[..., None]) -> int:
        """Bulk-register ``callback(payload)`` firings from sorted columns.

        ``times`` must be ascending (the trace's chronological
        invariant, verified here with one C-level pairwise scan -- a
        mis-ordered column would mis-bucket silently) and is grouped
        into per-tick slabs with one bisect per distinct tick; no
        per-entry tuple, dict probe or counter draw happens until a
        bucket is activated.  Requires a *fresh*
        queue (nothing deposited, nothing drained): preloaded entry
        ``i`` takes sequence number ``i``, byte-for-byte what a
        per-entry :meth:`push` loop over the same columns would have
        assigned, so callers must rebase the shared counter past the
        returned count before scheduling anything else.
        """
        # _live alone is not enough: a cancelled entry decrements it but
        # stays lazily deleted inside its bucket, and overwriting that
        # bucket here would double-push its tick onto the heap.
        if (self._live or self._buckets or self._tick_heap
                or self._front is not None or self._front_tick != -1):
            raise ValueError("preload_sorted requires a fresh queue")
        n = len(times)
        if len(payloads) != n:
            raise ValueError(
                f"preload columns disagree: {n} times vs "
                f"{len(payloads)} payloads"
            )
        if not all(map(operator.le, times, islice(times, 1, None))):
            raise ValueError("preload_sorted requires ascending times")
        width = self.width
        src = (times, payloads, callback, 0)
        lo = 0
        while lo < n:
            tick = int(times[lo] // width)
            hi = bisect_left(times, (tick + 1) * width, lo)
            self._slabs[tick] = (lo, hi, src)
            # Pre-create the bucket so later deposits into a slab tick
            # append instead of double-pushing the tick onto the heap.
            self._buckets[tick] = []
            heapq.heappush(self._tick_heap, tick)
            lo = hi
        self._live += n
        return n

    def extend_sorted(self, times: Sequence[float], payloads: Sequence[Any],
                      callback: Callable[..., None], base_seq: int) -> int:
        """Append a later slab of sorted starts to a *running* queue.

        The streaming-replay counterpart of :meth:`preload_sorted`: the
        trace arrives chunk by chunk, so each chunk's columns are
        registered mid-run, after earlier buckets have already drained.
        Entry ``i`` of this slab takes sequence number ``base_seq + i``
        -- the caller threads a running record index through so a
        streamed replay assigns every record the same sequence number
        the whole-trace preload would have.

        ``times`` must be ascending and must land strictly past the
        bucket currently being drained (the chunk protocol: the driver
        runs the clock to just before a chunk's window start before
        extending, and hour-aligned windows are tick-aligned because
        the 3600 s hour is a multiple of the 300 s tick).  Ticks that
        already hold deposited entries (arc continuations scheduled
        into the new chunk's window) are merged, not overwritten.
        """
        n = len(times)
        if len(payloads) != n:
            raise ValueError(
                f"extend columns disagree: {n} times vs "
                f"{len(payloads)} payloads"
            )
        if not all(map(operator.le, times, islice(times, 1, None))):
            raise ValueError("extend_sorted requires ascending times")
        if n == 0:
            return 0
        width = self.width
        if int(times[0] // width) <= self._front_tick:
            raise ValueError(
                "extend_sorted slab starts at or before the bucket "
                "being drained; run the clock past the chunk boundary "
                "before extending"
            )
        src = (times, payloads, callback, base_seq)
        lo = 0
        while lo < n:
            tick = int(times[lo] // width)
            hi = bisect_left(times, (tick + 1) * width, lo)
            if tick in self._slabs:
                raise ValueError(
                    f"extend_sorted slab collides with an existing slab "
                    f"at tick {tick}"
                )
            self._slabs[tick] = (lo, hi, src)
            if tick not in self._buckets:
                self._buckets[tick] = []
                heapq.heappush(self._tick_heap, tick)
            lo = hi
        self._live += n
        return n

    def _deposit(self, entry: tuple) -> None:
        tick = int(entry[0] // self.width)
        bucket = self._buckets.get(tick)
        if bucket is None:
            self._buckets[tick] = [entry]
            heapq.heappush(self._tick_heap, tick)
        else:
            bucket.append(entry)
        self._live += 1

    # ------------------------------------------------------------------
    # Draining (driven by the simulator)
    # ------------------------------------------------------------------

    def _activate_next_bucket(self) -> None:
        """Advance ``_front`` to the earliest pending bucket, sorted.

        A preloaded start slab materializes here: its entries come out
        time- and seq-ascending by construction, so a slab-only bucket
        skips the sort entirely and a mixed bucket merges the slab run
        into one adaptive ``list.sort``.
        """
        while self._tick_heap:
            tick = heapq.heappop(self._tick_heap)
            entries = self._buckets.pop(tick)
            slab = self._slabs.pop(tick, None)
            if slab is not None:
                lo, hi, (times, payloads, callback, base) = slab
                built = [(times[i], base + i, callback, (payloads[i],))
                         for i in range(lo, hi)]
                if entries:
                    entries.extend(built)
                    entries.sort()
                else:
                    entries = built
            else:
                entries.sort()
            self._front = entries
            self._front_pos = 0
            self._front_tick = tick
            return
        self._front = None
        self._front_pos = 0

    def peek_entry(self) -> Optional[tuple]:
        """The next entry in ``(time, seq)`` order, without consuming it."""
        front, pos = self._front, self._front_pos
        if front is None or pos >= len(front):
            self._activate_next_bucket()
            front, pos = self._front, self._front_pos
            if front is None:
                return None
        return front[pos]

    def advance(self) -> None:
        """Consume the entry :meth:`peek_entry` returned."""
        self._front_pos += 1
