"""Columnar replay schedule: the drain loop's event stream, precomputed.

The replay's event schedule is *static*: a session's segment flow is
fully determined by its trace record (start, duration) and its program's
segment count, and nothing an event does can cancel or reschedule
another event.  The bucket engine already exploits per-session
determinism (one :class:`~repro.sim.tickqueue.SessionArc` instead of a
heap entry per segment); this module exploits whole-trace determinism:
every event the drain loop would fire -- with its exact global ordering
-- can be computed up front as flat numpy arrays.  The walk over those
arrays (``CableVoDSystem._run_columnar``) then performs only the
*stateful* per-event work (strategy decisions, channel leases, cache
fills) while metering and outcome counting move to vectorized
post-passes.

Ordering contract (must match :mod:`repro.sim.engine` +
:mod:`repro.sim.tickqueue` exactly):

* global firing order is lexicographic ``(time, seq)``;
* session start ``i`` (record ``i`` of the sorted trace) has
  ``seq == i`` (``preload_sorted`` rebases the shared counter past the
  slab);
* every event that *deposits* a continuation draws the next counter
  value for its child at its own firing -- so arc-event seqs depend on
  how starts and continuations interleave.

The structural fact that makes seq assignment batchable: a continuation
fires exactly ``SEGMENT_SECONDS`` after its parent, and the tick width
*is* ``SEGMENT_SECONDS``, so a child always lands in a strictly later
tick bucket than its parent (for any time ``t >= 300 * B``, the float
sum ``t + 300.0`` is ``>= 300 * (B + 1)``, which is exactly
representable).  Walking buckets in time order therefore sees every
member's seq already assigned; one lexsort per bucket reproduces the
engine's firing order, and the counter values its deposits draw follow
from that order.
"""

from __future__ import annotations

import weakref
from typing import List, Sequence

from repro import units

_SEG = float(units.SEGMENT_SECONDS)
_EPS = 1e-6


def _floor_div_exact(values, width: float):
    """True mathematical floor of ``values / width`` as int64.

    ``np.floor(values / width)`` can be off by one when a value sits
    within a rounding error of a multiple of ``width``, while Python's
    float ``//`` (fmod-corrected) never is.  One correction step each
    way restores the exact floor: the quotient is always within one of
    the truth, and ``q * width`` is exact for the magnitudes involved
    (integer-valued products far below 2**53).
    """
    import numpy as np

    q = np.floor(values / width)
    q[q * width > values] -= 1.0
    q[(q + 1.0) * width <= values] += 1.0
    return q.astype(np.int64)


class ColumnarSchedule:
    """The full event stream of one trace replay, in firing order.

    ``n_events`` counts every event the scalar engines would fire,
    including trailing arc steps that deliver nothing (the float-noise
    guard in the drain loop); the parallel arrays exclude those no-ops,
    since they mutate no state.  ``rec`` / ``time`` / ``watch`` /
    ``segment`` describe the remaining events in exact firing order;
    ``is_start`` marks session starts (which do session bookkeeping
    even when nothing is delivered) and ``delivered`` marks events that
    request a segment (false only for starts whose first segment is
    float noise).
    """

    __slots__ = ("n_events", "rec", "time", "watch", "segment",
                 "is_start", "delivered")

    def __init__(self, n_events: int, rec, time, watch, segment,
                 is_start, delivered) -> None:
        self.n_events = n_events
        self.rec = rec
        self.time = time
        self.watch = watch
        self.segment = segment
        self.is_start = is_start
        self.delivered = delivered


def build_schedule(
    start_times: Sequence[float],
    durations: Sequence[float],
    program_ids: Sequence[int],
    last_segment_by_program: Sequence[int],
) -> ColumnarSchedule:
    """Precompute the drain loop's event stream for one trace.

    Every float here reproduces the scalar engines' arithmetic
    operation for operation (same operands, same associativity), just
    elementwise over the whole trace -- which is what makes the
    columnar engine bit-identical rather than merely close.
    """
    import numpy as np

    s = np.asarray(start_times, dtype=np.float64)
    d = np.asarray(durations, dtype=np.float64)
    p = np.asarray(program_ids, dtype=np.int64)
    n = s.size
    if n == 0:
        empty_f = np.empty(0, dtype=np.float64)
        empty_i = np.empty(0, dtype=np.int64)
        empty_b = np.empty(0, dtype=np.bool_)
        return ColumnarSchedule(0, empty_i, empty_f, empty_f.copy(),
                                empty_i.copy(), empty_b, empty_b.copy())
    last = np.asarray(last_segment_by_program, dtype=np.int64)[p]
    e = s + d

    # ------------------------------------------------------------------
    # Level-major expansion: level k is "the event that would deliver
    # segment k" -- level 0 the session start, level k > 0 the
    # (k-1)-th arc step.  Iterating levels (bounded by the longest
    # program) with the whole trace vectorized mirrors the scalar
    # per-event stepping: watch capping, the 1e-6 sliver guard, and the
    # continuation test use the exact scalar expressions.
    # ------------------------------------------------------------------
    level_rec: List[np.ndarray] = []
    level_time: List[np.ndarray] = []
    level_watch: List[np.ndarray] = []
    level_del: List[np.ndarray] = []
    level_cont: List[np.ndarray] = []
    alive = np.arange(n, dtype=np.int64)
    t = s
    k = 0
    while alive.size:
        watch = e[alive] - t
        np.minimum(watch, _SEG, out=watch)
        delivered = watch > _EPS
        cont = delivered & (k < last[alive]) & (e[alive] > (t + _SEG) + _EPS)
        level_rec.append(alive)
        level_time.append(t)
        level_watch.append(watch)
        level_del.append(delivered)
        level_cont.append(cont)
        alive = alive[cont]
        # Iterative accumulation, never a closed form: the engine's arc
        # deposit computes each next tick as ``time + width``.
        t = t[cont] + _SEG
        k += 1

    sizes = [a.size for a in level_rec]
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    total = int(offsets[-1])
    flat_rec = np.concatenate(level_rec)
    flat_time = np.concatenate(level_time)
    flat_watch = np.concatenate(level_watch)
    flat_del = np.concatenate(level_del)
    flat_level = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)

    # Child pointer: the j-th continuing event of level k (in level-array
    # order) is the parent of the j-th event of level k + 1, because
    # ``alive[k+1] = alive[k][cont[k]]`` preserves order.
    child = np.full(total, -1, dtype=np.int64)
    for level in range(len(sizes) - 1):
        parents = np.flatnonzero(level_cont[level]) + offsets[level]
        child[parents] = offsets[level + 1] + np.arange(
            sizes[level + 1], dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Seq assignment: walk tick buckets in time order.  Start seqs are
    # the record indices (slab preload); each bucket's firing order is
    # its (time, seq) sort, and its depositing members hand the next
    # counter values to their children -- which, living in strictly
    # later buckets, are always assigned before they are ordered.
    # ------------------------------------------------------------------
    bucket = _floor_div_exact(flat_time, _SEG)
    order = np.argsort(bucket, kind="stable")
    sorted_buckets = bucket[order]
    cuts = np.flatnonzero(sorted_buckets[1:] != sorted_buckets[:-1]) + 1
    group_starts = np.concatenate(
        (np.zeros(1, dtype=np.int64), cuts, np.asarray([total], dtype=np.int64))
    )
    seq = np.empty(total, dtype=np.int64)
    seq[:n] = np.arange(n, dtype=np.int64)
    firing = np.empty(total, dtype=np.int64)
    has_child = child >= 0
    next_seq = n
    pos = 0
    for g in range(group_starts.size - 1):
        members = order[group_starts[g]:group_starts[g + 1]]
        members = members[np.lexsort((seq[members], flat_time[members]))]
        firing[pos:pos + members.size] = members
        pos += members.size
        depositors = members[has_child[members]]
        if depositors.size:
            seq[child[depositors]] = next_seq + np.arange(
                depositors.size, dtype=np.int64
            )
            next_seq += depositors.size

    # Arc steps whose watch collapsed to float noise fire but mutate
    # nothing -- drop them from the walk, keep them in the event count.
    keep = flat_del[firing] | (flat_level[firing] == 0)
    walk = firing[keep]
    return ColumnarSchedule(
        n_events=total,
        rec=flat_rec[walk],
        time=flat_time[walk],
        watch=flat_watch[walk],
        segment=flat_level[walk],
        is_start=flat_level[walk] == 0,
        delivered=flat_del[walk],
    )


#: Per-trace schedule memo.  The schedule depends only on the trace and
#: its catalog (segment counts), never on the deployment config, so a
#: config sweep over one workload builds it once.  Weak keys: an entry
#: dies with its trace, and the workload LRUs upstream bound how many
#: traces are alive at once.
_schedule_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def cached_schedule(trace, last_segment_by_program: Sequence[int]) -> ColumnarSchedule:
    """The (memoized) columnar schedule for ``trace``."""
    schedule = _schedule_cache.get(trace)
    if schedule is None:
        starts, _, program_ids, durations = trace.columns()
        schedule = build_schedule(starts, durations, program_ids,
                                  last_segment_by_program)
        _schedule_cache[trace] = schedule
    return schedule
