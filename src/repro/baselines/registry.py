"""Named baseline metrics: reference columns computed from a trace.

The paper draws every cached result against analytic reference lines --
the 17 Gb/s no-cache load, the batching+patching multicast bound.  This
registry names those computations so the scenario layer can request
them declaratively (``Scenario.baselines = ("no_cache",)``) and merge
the resulting columns into sweep rows.  Each baseline is a pure
function of the (possibly transformed) trace plus the warm-up window,
so workers can compute them next to the simulation they accompany --
the parent process never needs the trace.

Columns listed in :data:`RATE_COLUMNS` are population-linear rates and
get extrapolated by the scenario's ``scale`` when rows are built; the
rest (percentages, group sizes) are scale-free and pass through.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from repro.baselines.multicast import MulticastModel, SegmentMulticastModel
from repro.baselines.no_cache import no_cache_peak_gbps
from repro.errors import ConfigurationError, suggest

#: Baseline columns that are population-linear rates: the scenario
#: runner divides these by the scenario's ``scale`` (same extrapolation
#: as every measured rate).  Everything else passes through unscaled.
RATE_COLUMNS = frozenset({"no_cache_gbps"})


def _no_cache(trace, warmup_seconds: float) -> Dict[str, float]:
    """The cacheless central-server peak (the paper's 17 Gb/s line)."""
    return {
        "no_cache_gbps": no_cache_peak_gbps(trace,
                                            warmup_seconds=warmup_seconds),
    }


def _multicast(trace, warmup_seconds: float) -> Dict[str, float]:
    """The generous batching+patching multicast bound (section IV-A).

    The join window is the model's default (10 minutes); the warm-up is
    deliberately ignored -- the multicast argument is about the whole
    trace's skew and attrition, exactly as the paper states it.
    """
    report = MulticastModel().evaluate(trace)
    return {
        "multicast_saving_pct": 100.0 * report.savings_fraction,
        "multicast_mean_group": report.mean_group_size,
        "multicast_singleton_pct": 100.0 * report.fraction_singleton_groups,
    }


def _multicast_seg(trace, warmup_seconds: float) -> Dict[str, float]:
    """The segment-granular multicast bound (same join window).

    Sharing at the 5-minute-segment grain the cached system works at:
    the tightest batching a multicast scheme could do against the exact
    delivery walk the replay engine executes.  Like the program-level
    bound, it deliberately ignores the warm-up -- the argument is about
    the whole trace.
    """
    report = SegmentMulticastModel().evaluate(trace)
    return {
        "multicast_seg_saving_pct": 100.0 * report.savings_fraction,
        "multicast_seg_mean_group": report.mean_group_size,
        "multicast_seg_singleton_pct": 100.0 * report.fraction_singleton_groups,
    }


_BASELINES: Dict[str, Callable[..., Dict[str, float]]] = {
    "no_cache": _no_cache,
    "multicast": _multicast,
    "multicast_seg": _multicast_seg,
}

#: Every registered baseline name, in registration order.
BASELINE_NAMES: Tuple[str, ...] = tuple(_BASELINES)


def validate_baselines(names: Sequence[str]) -> None:
    """Reject unknown baseline names eagerly (with close-match hints)."""
    for name in names:
        if name not in _BASELINES:
            raise ConfigurationError(
                f"unknown baseline {name!r}"
                f"{suggest(str(name), sorted(_BASELINES))} "
                f"(choose from {sorted(_BASELINES)})"
            )


def baseline_columns(
    names: Sequence[str],
    trace,
    warmup_seconds: float = 0.0,
) -> Dict[str, float]:
    """Compute the requested baselines' columns from one trace."""
    validate_baselines(names)
    columns: Dict[str, float] = {}
    for name in names:
        columns.update(_BASELINES[name](trace, warmup_seconds))
    return columns
