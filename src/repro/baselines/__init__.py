"""Comparison baselines.

* :mod:`repro.baselines.no_cache` -- the centralized, cacheless
  deployment the paper draws as its 17 Gb/s reference line.  Computed
  analytically from the trace (no simulation needed: every delivered bit
  comes from the server).
* :mod:`repro.baselines.multicast` -- a batching-with-patching multicast
  model, the class of solution the paper argues *against* in section
  IV-A.  Quantifies how popularity skew and mid-stream attrition erode
  multicast savings on real VoD workloads.
* :mod:`repro.baselines.registry` -- both of the above as *named
  baseline metrics* the scenario layer can request declaratively
  (``Scenario.baselines``), computed per distinct transformed trace and
  merged into sweep rows as reference columns.
"""

from repro.baselines.multicast import MulticastModel, MulticastReport
from repro.baselines.no_cache import no_cache_hourly_rates, no_cache_peak_gbps
from repro.baselines.registry import (
    BASELINE_NAMES,
    baseline_columns,
    validate_baselines,
)

__all__ = [
    "BASELINE_NAMES",
    "MulticastModel",
    "MulticastReport",
    "baseline_columns",
    "no_cache_hourly_rates",
    "no_cache_peak_gbps",
    "validate_baselines",
]
