"""Comparison baselines.

* :mod:`repro.baselines.no_cache` -- the centralized, cacheless
  deployment the paper draws as its 17 Gb/s reference line.  Computed
  analytically from the trace (no simulation needed: every delivered bit
  comes from the server).
* :mod:`repro.baselines.multicast` -- a batching-with-patching multicast
  model, the class of solution the paper argues *against* in section
  IV-A.  Quantifies how popularity skew and mid-stream attrition erode
  multicast savings on real VoD workloads.
"""

from repro.baselines.multicast import MulticastModel, MulticastReport
from repro.baselines.no_cache import no_cache_hourly_rates, no_cache_peak_gbps

__all__ = [
    "MulticastModel",
    "MulticastReport",
    "no_cache_hourly_rates",
    "no_cache_peak_gbps",
]
