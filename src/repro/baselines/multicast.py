"""Batching-with-patching multicast baseline.

The paper rejects multicast trees for cable VoD (section IV-A) on two
trace-derived grounds: program popularity is too skewed for most
programs to form useful trees, and mid-stream attrition (50% of sessions
under 8 minutes) makes trees churn.  This module makes that argument
quantitative with a *generous* multicast model -- batching plus patching,
which upper-bounds what tree schemes achieve on server load:

* The first request for a program starts a full multicast stream that
  plays the program linearly from position 0.
* A request arriving while a stream is within ``join_window_seconds`` of
  its start joins that stream for the remainder and receives the missed
  prefix as a server unicast *patch*.
* A stream stays alive as long as some member still needs it; its server
  cost is the furthest position any member consumes.

Because each member still receives every bit it watches, viewer-side
bytes are identical to unicast; the model measures how many *server*
bits multicast sharing can actually save under real skew and attrition.

:class:`SegmentMulticastModel` is the same question asked at the
granularity the cached system actually works at: programs are stored
and served as 5-minute segments, so the sharpest conceivable multicast
batches requests for the *same segment of the same program* instead of
whole-program prefixes.  Viewers request segment ``i`` at ``start + i x
SEGMENT_SECONDS`` (exactly the replay engine's delivery walk), same
(program, segment) requests within the join window share one broadcast
whose cost is the longest watch among its members, and no patches are
needed -- later segments of a late joiner simply fall into later
segment groups.  It upper-bounds segment-level batching the way the
program-level model upper-bounds trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError
from repro.trace.records import Trace


@dataclass(frozen=True)
class MulticastGroup:
    """One multicast stream and the sessions that shared it."""

    program_id: int
    start_time: float
    n_members: int
    stream_seconds: float
    patch_seconds: float

    @property
    def server_seconds(self) -> float:
        """Total server stream-seconds this group cost (stream + patches)."""
        return self.stream_seconds + self.patch_seconds


@dataclass
class MulticastReport:
    """Aggregate outcome of the multicast model over a trace."""

    groups: List[MulticastGroup] = field(default_factory=list)
    unicast_stream_seconds: float = 0.0

    @property
    def server_stream_seconds(self) -> float:
        """Stream-seconds the server pays under multicast."""
        return sum(g.server_seconds for g in self.groups)

    @property
    def savings_fraction(self) -> float:
        """Server-load saving vs. unicast (0.30 = 30% fewer bits)."""
        if self.unicast_stream_seconds <= 0:
            return 0.0
        return 1.0 - self.server_stream_seconds / self.unicast_stream_seconds

    @property
    def mean_group_size(self) -> float:
        """Average sessions per multicast stream."""
        if not self.groups:
            return 0.0
        return sum(g.n_members for g in self.groups) / len(self.groups)

    def group_size_distribution(self) -> Dict[int, int]:
        """Histogram of group sizes (size -> number of groups)."""
        histogram: Dict[int, int] = {}
        for group in self.groups:
            histogram[group.n_members] = histogram.get(group.n_members, 0) + 1
        return histogram

    @property
    def fraction_singleton_groups(self) -> float:
        """Share of streams that never found a second member.

        High values are the paper's Fig 2 argument in one number: outside
        the few head programs, nobody else is watching at the same time.
        """
        if not self.groups:
            return 0.0
        singles = sum(1 for g in self.groups if g.n_members == 1)
        return singles / len(self.groups)

    def server_gbps_equivalent(self, span_seconds: float) -> float:
        """Average multicast server rate over ``span_seconds``."""
        if span_seconds <= 0:
            raise ConfigurationError(
                f"span must be positive, got {span_seconds}"
            )
        bits = self.server_stream_seconds * units.STREAM_RATE_BPS
        return units.to_gbps(bits / span_seconds)


class MulticastModel:
    """Evaluate batching+patching multicast over a trace.

    Parameters
    ----------
    join_window_seconds:
        How far behind a stream's start a newcomer may join (and hence
        how long a patch the server must unicast).  Classic patching
        uses a threshold around 5-15 minutes; larger windows trade patch
        bytes for fewer streams.
    """

    def __init__(self, join_window_seconds: float = 10 * units.SECONDS_PER_MINUTE) -> None:
        if join_window_seconds < 0:
            raise ConfigurationError(
                f"join window must be non-negative, got {join_window_seconds}"
            )
        self.join_window_seconds = join_window_seconds

    def evaluate(self, trace: Trace) -> MulticastReport:
        """Run the model over every program in ``trace``."""
        report = MulticastReport()
        sessions_by_program: Dict[int, List[Tuple[float, float]]] = {}
        for record in trace:
            sessions_by_program.setdefault(record.program_id, []).append(
                (record.start_time, record.duration_seconds)
            )
            report.unicast_stream_seconds += record.duration_seconds
        for program_id, sessions in sessions_by_program.items():
            self._evaluate_program(program_id, sessions, report)
        return report

    def _evaluate_program(
        self,
        program_id: int,
        sessions: Sequence[Tuple[float, float]],
        report: MulticastReport,
    ) -> None:
        """Greedy grouping of one program's (already sorted) sessions."""
        group_start = None
        members = 0
        furthest_position = 0.0
        patch_seconds = 0.0

        def close_group() -> None:
            report.groups.append(
                MulticastGroup(
                    program_id=program_id,
                    start_time=group_start,
                    n_members=members,
                    stream_seconds=furthest_position,
                    patch_seconds=patch_seconds,
                )
            )

        for start, duration in sessions:
            if group_start is None or start - group_start > self.join_window_seconds:
                if group_start is not None:
                    close_group()
                group_start = start
                members = 1
                furthest_position = duration
                patch_seconds = 0.0
                continue
            offset = start - group_start
            members += 1
            # The newcomer missed [0, offset): the server unicasts that
            # prefix (clipped to what they actually watch).  The shared
            # stream covers the rest, and must survive to the furthest
            # program position any member reaches.
            patch_seconds += min(offset, duration)
            if duration > offset:
                furthest_position = max(furthest_position, duration)
        if group_start is not None:
            close_group()


@dataclass
class SegmentMulticastReport:
    """Aggregate outcome of the segment-level multicast model.

    Groups are counted, not stored: a metro trace produces one group
    per (program, segment, join-window batch), which would dwarf the
    trace itself as objects.
    """

    groups: int = 0
    singleton_groups: int = 0
    members: int = 0
    server_stream_seconds: float = 0.0
    unicast_stream_seconds: float = 0.0

    @property
    def savings_fraction(self) -> float:
        """Server-load saving vs. unicast (0.30 = 30% fewer bits)."""
        if self.unicast_stream_seconds <= 0:
            return 0.0
        return 1.0 - self.server_stream_seconds / self.unicast_stream_seconds

    @property
    def mean_group_size(self) -> float:
        """Average member requests per segment broadcast."""
        if not self.groups:
            return 0.0
        return self.members / self.groups

    @property
    def fraction_singleton_groups(self) -> float:
        """Share of segment broadcasts that served exactly one viewer."""
        if not self.groups:
            return 0.0
        return self.singleton_groups / self.groups

    def server_gbps_equivalent(self, span_seconds: float) -> float:
        """Average segment-multicast server rate over ``span_seconds``."""
        if span_seconds <= 0:
            raise ConfigurationError(
                f"span must be positive, got {span_seconds}"
            )
        bits = self.server_stream_seconds * units.STREAM_RATE_BPS
        return units.to_gbps(bits / span_seconds)


class SegmentMulticastModel:
    """Evaluate segment-granular multicast batching over a trace.

    Parameters
    ----------
    join_window_seconds:
        How far behind a segment broadcast's start a same-segment
        request may join it.  The default matches the program-level
        model's 10 minutes so the two bounds are directly comparable.
    """

    def __init__(self, join_window_seconds: float = 10 * units.SECONDS_PER_MINUTE) -> None:
        if join_window_seconds < 0:
            raise ConfigurationError(
                f"join window must be non-negative, got {join_window_seconds}"
            )
        self.join_window_seconds = join_window_seconds

    def evaluate(self, trace: Trace) -> SegmentMulticastReport:
        """Run the model over every segment request ``trace`` implies.

        Mirrors the replay engine's delivery walk exactly: a session
        requests segment ``i`` at ``start + i x SEGMENT_SECONDS`` and
        watches ``min(SEGMENT_SECONDS, end - t)`` of it, stopping when
        the residue drops below the engine's 1e-6 epsilon.  Trace
        records are globally start-ordered, so per-(program, segment)
        request times arrive sorted and one open group per key
        suffices.
        """
        report = SegmentMulticastReport()
        window = self.join_window_seconds
        segment = units.SEGMENT_SECONDS
        # key -> [group_start, members, max_watch]
        open_groups: Dict[Tuple[int, int], List[float]] = {}

        def close(group: List[float]) -> None:
            report.groups += 1
            report.members += int(group[1])
            if group[1] == 1:
                report.singleton_groups += 1
            report.server_stream_seconds += group[2]

        for record in trace:
            start = record.start_time
            end = record.end_time
            program_id = record.program_id
            index = 0
            time = start
            while end - time > 1e-6:
                watch = end - time
                if watch > segment:
                    watch = segment
                report.unicast_stream_seconds += watch
                key = (program_id, index)
                group = open_groups.get(key)
                if group is None or time - group[0] > window:
                    if group is not None:
                        close(group)
                    open_groups[key] = [time, 1, watch]
                else:
                    group[1] += 1
                    if watch > group[2]:
                        group[2] = watch
                index += 1
                time = start + index * segment
        for group in open_groups.values():
            close(group)
        return report
