"""The no-cache centralized baseline.

Without a cooperative cache every session streams straight from the
central media server, so the server's load *is* the delivered traffic.
That makes the baseline computable directly from the trace -- no
discrete-event run required -- and it is how the paper's "17 Gb/s with no
cache" line is drawn.

(The simulator reproduces the identical numbers when run with
:class:`~repro.cache.factory.NoCacheSpec`; the analytical form exists so
experiments can draw the reference line cheaply, and the test suite
cross-checks the two.)
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

from repro import units
from repro.core.meter import HourlyMeter
from repro.trace.records import Trace

#: The paper's peak reporting window.
PEAK_HOURS: Tuple[int, ...] = (19, 20, 21, 22)


def no_cache_meter(trace: Trace) -> HourlyMeter:
    """Hourly server traffic of a cacheless deployment of ``trace``."""
    meter = HourlyMeter()
    for record in trace:
        meter.add_interval(record.start_time, record.duration_seconds)
    return meter


def no_cache_hourly_rates(trace: Trace, warmup_seconds: float = 0.0) -> list:
    """Average server rate (bits/s) per hour of day, warm-up excluded."""
    return no_cache_meter(trace).rate_by_hour_of_day(min_time=warmup_seconds)


def no_cache_peak_gbps(
    trace: Trace,
    peak_hours: Iterable[int] = PEAK_HOURS,
    warmup_seconds: float = 0.0,
) -> float:
    """Mean peak-hour server load (Gb/s) with no cache at all."""
    meter = no_cache_meter(trace)
    rate = meter.mean_rate(
        peak_hours, min_time=warmup_seconds, max_time=math.inf
    )
    return units.to_gbps(rate)
