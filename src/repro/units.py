"""Units and constants used throughout the cable VoD model.

The paper mixes several unit systems (Mb/s stream rates, Gb/s server loads,
GB of set-top disk, TB of neighborhood cache, seconds of simulated time).
Centralizing the conversions here keeps the rest of the code free of magic
numbers and makes the provenance of each constant explicit.

Conventions
-----------
* **Time** is measured in seconds (floats) since the start of the trace.
* **Data sizes** are measured in bits internally; helpers convert to and
  from bytes, GB and TB.  Storage units are decimal (1 GB = 1e9 bytes), as
  is conventional for disk marketing capacities and as the paper uses them.
* **Rates** are bits per second internally; helpers convert Mb/s and Gb/s.

Constants are taken directly from the paper (section references inline).
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Time
# --------------------------------------------------------------------------

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0
HOURS_PER_DAY = 24

#: Length of one program segment (paper section IV-B.1: "Programs are
#: divided into 5 minute segments").
SEGMENT_SECONDS = 5 * SECONDS_PER_MINUTE

# --------------------------------------------------------------------------
# Rates (paper section IV-B.1 and II)
# --------------------------------------------------------------------------

#: Playback / transmission rate of one stream: 8.06 Mb/s, "the minimum rate
#: necessary to sustain uninterrupted playback of a high quality MPEG-2
#: standard definition TV media stream" (section IV-B.1).
STREAM_RATE_BPS = 8.06e6

#: Downstream coax capacity range (section II): 4.9 to 6.6 Gb/s depending on
#: cable capacity.  We use the conservative low end for feasibility checks.
COAX_DOWNSTREAM_CAPACITY_BPS = 4.9e9

#: Portion of downstream capacity consumed by broadcast cable TV
#: (section II: "roughly 3.3 Gb/s are used for cable television").
COAX_TV_RESERVED_BPS = 3.3e9

#: Upstream coax allocation (section II): "approximately 215 Mb/s".
COAX_UPSTREAM_CAPACITY_BPS = 215e6

#: Capacity available to the VoD service on the coax plant: everything that
#: is not reserved for broadcast TV.  The paper's 17% feasibility figure
#: (section VI-B) is computed against "the capacity of the coaxial line".
COAX_VOD_CAPACITY_BPS = COAX_DOWNSTREAM_CAPACITY_BPS - COAX_TV_RESERVED_BPS

# --------------------------------------------------------------------------
# Peer restrictions (paper section V-C)
# --------------------------------------------------------------------------

#: Disk space a set-top box contributes to the cooperative cache: "we assume
#: that set-top boxes will not be able to contribute more than 10 GB".
DEFAULT_PEER_STORAGE_BYTES = 10e9

#: Typical full set-top disk, for documentation/validation ("hard drives of
#: around 40 GB").
SETTOP_DISK_BYTES = 40e9

#: "Typical set top boxes cannot receive data on more than two logical
#: channels" -- at most two concurrent streams per peer, in either direction.
MAX_STREAMS_PER_PEER = 2

# --------------------------------------------------------------------------
# Conversions
# --------------------------------------------------------------------------

BITS_PER_BYTE = 8.0


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * 1e6


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


def to_mbps(bits_per_second: float) -> float:
    """Convert bits/second to megabits/second."""
    return bits_per_second / 1e6


def to_gbps(bits_per_second: float) -> float:
    """Convert bits/second to gigabits/second."""
    return bits_per_second / 1e9


def gigabytes(value: float) -> float:
    """Convert decimal gigabytes to bytes."""
    return value * 1e9


def terabytes(value: float) -> float:
    """Convert decimal terabytes to bytes."""
    return value * 1e12


def to_gigabytes(n_bytes: float) -> float:
    """Convert bytes to decimal gigabytes."""
    return n_bytes / 1e9


def to_terabytes(n_bytes: float) -> float:
    """Convert bytes to decimal terabytes."""
    return n_bytes / 1e12


def bytes_for_stream_seconds(seconds: float, rate_bps: float = STREAM_RATE_BPS) -> float:
    """Bytes transferred by a stream of ``rate_bps`` lasting ``seconds``."""
    return rate_bps * seconds / BITS_PER_BYTE


def program_size_bytes(length_seconds: float, rate_bps: float = STREAM_RATE_BPS) -> float:
    """Storage footprint of a whole program encoded at ``rate_bps``.

    A 100-minute MPEG-2 program at the paper's 8.06 Mb/s occupies roughly
    6 GB, which is why a 1 TB neighborhood cache holds only ~165 programs of
    the 8,278-program catalog.
    """
    return bytes_for_stream_seconds(length_seconds, rate_bps)


def segments_in_program(length_seconds: float) -> int:
    """Number of 5-minute segments a program of the given length spans.

    The final partial segment counts as a full segment for storage and
    placement purposes (it still occupies a slot on a peer).
    """
    if length_seconds <= 0:
        raise ValueError(f"program length must be positive, got {length_seconds}")
    full, remainder = divmod(length_seconds, SEGMENT_SECONDS)
    return int(full) + (1 if remainder > 0 else 0)


def hour_of_day(time_seconds: float) -> int:
    """Hour-of-day bucket (0..23) for an absolute simulation time."""
    return int((time_seconds % SECONDS_PER_DAY) // SECONDS_PER_HOUR)


def day_index(time_seconds: float) -> int:
    """Whole days elapsed since trace start for an absolute time."""
    return int(time_seconds // SECONDS_PER_DAY)


def hour_index(time_seconds: float) -> int:
    """Whole hours elapsed since trace start for an absolute time."""
    return int(time_seconds // SECONDS_PER_HOUR)
