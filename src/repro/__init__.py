"""repro -- peer-to-peer video-on-demand caching on cable networks.

A full reproduction of *Deploying Video-on-Demand Services on Cable
Networks* (Allen, Zhao, Wolski -- ICDCS 2007): a cooperative proxy cache
built from cable subscribers' set-top boxes, orchestrated per coaxial
neighborhood by a headend index server, evaluated with a trace-driven
discrete-event simulation.

Quickstart
----------
>>> from repro import PowerInfoModel, SimulationConfig, generate_trace, run_simulation
>>> trace = generate_trace(PowerInfoModel(n_users=500, n_programs=100, days=3.0))
>>> result = run_simulation(trace, SimulationConfig(neighborhood_size=250,
...                                                 warmup_days=0.5))
>>> 0.0 <= result.peak_reduction() <= 1.0
True

Package map
-----------
``repro.sim``         discrete-event engine and seeded random streams
``repro.trace``       workload model: records, synthesis, scaling, stats
``repro.topology``    HFC plant: headends, coax neighborhoods, placement
``repro.peers``       set-top boxes: disk budget, two-channel limit
``repro.cache``       the cache policy engine (LRU / LFU / Oracle /
                      Global-LFU / GDSF / ARC / threshold), index server
``repro.core``        the assembled system, config, metering, results
``repro.scenario``    declarative scenarios/sweeps: one serializable
                      schema for traces, configs, and config grids
``repro.baselines``   no-cache and multicast comparison models
``repro.analysis``    figure-level analyses (skew, attrition, feasibility)
``repro.experiments`` one module per paper table/figure (the sweepable
                      ones are thin ``repro.scenario`` definitions)
"""

from repro.cache import (
    ARCSpec,
    FrequencySketchSpec,
    GDSFSpec,
    GlobalLFUSpec,
    LFUSpec,
    LRUSpec,
    NoCacheSpec,
    OracleSpec,
    ThresholdSpec,
    spec_from_dict,
    spec_from_name,
    spec_to_dict,
)
from repro.core import SimulationConfig, SimulationResult, run_simulation
from repro.scenario import (
    Scenario,
    Sweep,
    iter_sweep_rows,
    load_scenario,
    load_sweep,
    run_scenario,
    run_scenarios,
    run_sweep,
    scenario_row,
)
from repro.trace import (
    Catalog,
    PowerInfoModel,
    Program,
    SessionRecord,
    Trace,
    Workload,
    generate_trace,
    scale_catalog,
    scale_population,
)

__version__ = "1.2.0"

__all__ = [
    "PowerInfoModel",
    "generate_trace",
    "scale_catalog",
    "scale_population",
    "Catalog",
    "Program",
    "SessionRecord",
    "Trace",
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "Scenario",
    "Sweep",
    "Workload",
    "iter_sweep_rows",
    "run_scenario",
    "run_scenarios",
    "run_sweep",
    "scenario_row",
    "load_scenario",
    "load_sweep",
    "NoCacheSpec",
    "LRUSpec",
    "LFUSpec",
    "OracleSpec",
    "GlobalLFUSpec",
    "GDSFSpec",
    "ARCSpec",
    "ThresholdSpec",
    "FrequencySketchSpec",
    "spec_from_name",
    "spec_from_dict",
    "spec_to_dict",
    "__version__",
]
