"""Execute scenarios and sweeps, returning standard result rows.

One row shape serves every consumer -- the paper-figure experiments,
the CLI's file-driven runs, and ad-hoc sweeps: the strategy label, the
deployment knobs, and the paper's headline metrics (extrapolated peak
server load with its 5%/95% quantile band, reduction vs. no cache, hit
ratio).  :func:`result_row` is that single definition;
``repro.experiments.base.strategy_rows`` builds its rows through it
too, which is what makes legacy experiments and scenario runs
row-identical by construction.  Scenarios that name extra metric sets
(:mod:`repro.scenario.metrics`) or baselines
(:mod:`repro.baselines.registry`) get those columns merged into the
same rows, rate columns extrapolated by the scenario's ``scale``.

Sweeps execute through :func:`repro.core.parallel.iter_task_results`:
every expanded scenario becomes one
:class:`~repro.core.parallel.SimulationTask` carrying its (possibly
transformed) :class:`~repro.trace.workload.Workload`, so points that
vary the workload -- the Fig 15 population x catalog grid -- fan out
across workers exactly like points that only vary the config.  Serial
execution replays the process-wide memoized traces; parallel workers
regenerate them from the seeded workload.  Both paths are
bit-identical, rows always come back in expansion order, and
:func:`iter_sweep_rows` yields each row as its result lands -- the
CLI's live-progress stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.baselines.registry import RATE_COLUMNS
from repro.core.config import SimulationConfig
from repro.core.parallel import (
    SimulationTask,
    iter_task_results,
)
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.scenario.metrics import metric_columns
from repro.scenario.model import Scenario
from repro.scenario.sweep import Sweep
from repro.trace.workload import cached_workload_trace


def result_row(config: SimulationConfig, result: SimulationResult,
               scale: float = 1.0) -> Dict[str, Any]:
    """The standard per-run result row (rates extrapolated by ``scale``)."""
    low, high = result.peak_server_quantiles_gbps()
    return {
        "strategy": config.strategy.label,
        "neighborhood": config.neighborhood_size,
        "per_peer_gb": config.per_peer_storage_gb,
        "server_gbps": result.peak_server_gbps() / scale,
        "server_gbps_p5": low / scale,
        "server_gbps_p95": high / scale,
        "reduction_pct": 100.0 * result.peak_reduction(),
        "hit_pct": 100.0 * result.counters.hit_ratio,
    }


def scenario_task(scenario: Scenario) -> SimulationTask:
    """The :class:`SimulationTask` executing one scenario."""
    return SimulationTask(
        workload=scenario.workload(),
        config=scenario.config,
        engine=scenario.engine,
        baselines=scenario.baselines,
    )


def run_scenario(scenario: Scenario) -> SimulationResult:
    """Run one scenario against its (memoized, transformed) trace."""
    trace = cached_workload_trace(scenario.workload())
    return run_simulation(trace, scenario.config, engine=scenario.engine)


def _scenario_row(scenario: Scenario, result: SimulationResult,
                  baseline_values: Optional[Dict[str, float]] = None,
                  cols: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Standard row + metric sets + scaled baselines + point columns."""
    row = result_row(scenario.config, result, scale=scenario.scale)
    if scenario.metrics:
        row.update(metric_columns(scenario.metrics, scenario, result))
    if baseline_values:
        for key, value in baseline_values.items():
            row[key] = value / scenario.scale if key in RATE_COLUMNS else value
    if cols:
        row.update(cols)
    return row


def scenario_row(scenario: Scenario,
                 result: Optional[SimulationResult] = None) -> Dict[str, Any]:
    """The standard row for one scenario (running it if needed).

    When the scenario is run here, its baseline columns are computed
    too; a caller passing a pre-computed ``result`` gets the metric
    columns but no baselines (the trace is not rebuilt for them).
    """
    baseline_values: Dict[str, float] = {}
    if result is None:
        result, baseline_values = next(
            iter_task_results([scenario_task(scenario)], workers=1)
        )
    row = _scenario_row(scenario, result, baseline_values)
    if scenario.label:
        row["label"] = scenario.label
    return row


def run_scenarios(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run many scenarios, sharing one trace per distinct workload.

    Results come back in scenario order, bit-identical for any worker
    count.  ``workers=None`` defers to the process default
    (:func:`repro.core.parallel.get_default_workers`, i.e. the CLI's
    ``--workers`` flag, else ``REPRO_WORKERS``, else one per CPU).
    """
    # Baselines are row-level; result-only callers skip computing them.
    tasks = [
        SimulationTask(workload=s.workload(), config=s.config, engine=s.engine)
        for s in scenarios
    ]
    return [result for result, _ in iter_task_results(tasks, workers=workers)]


def iter_sweep_rows(
    sweep: Union[Sweep, Scenario],
    workers: Optional[int] = None,
) -> Iterator[Dict[str, Any]]:
    """Expand and run a sweep, yielding rows in order as results land.

    Each row is :func:`result_row` extrapolated by that scenario's
    ``scale``, plus its metric sets, scaled baseline columns, and the
    point's extra columns.  Row order always matches expansion order
    (results stream back ordered); long grids therefore show live,
    stable progress.  A bare :class:`Scenario` is a one-point sweep.
    """
    if isinstance(sweep, Scenario):
        expanded: List[Tuple[Scenario, Dict[str, Any]]] = [(sweep, {})]
    else:
        expanded = sweep.expand()
    tasks = [scenario_task(scenario) for scenario, _ in expanded]
    outcomes = iter_task_results(tasks, workers=workers)
    for (scenario, cols), (result, baseline_values) in zip(expanded, outcomes):
        yield _scenario_row(scenario, result, baseline_values, cols)


def run_sweep(sweep: Union[Sweep, Scenario],
              workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Expand and run a sweep, returning one standard row per point.

    The list form of :func:`iter_sweep_rows` -- the
    ``ExperimentResult``-compatible table the experiments and the CLI
    render.
    """
    return list(iter_sweep_rows(sweep, workers=workers))
