"""Execute scenarios and sweeps, returning standard result rows.

One row shape serves every consumer -- the paper-figure experiments,
the CLI's file-driven runs, and ad-hoc sweeps: the strategy label, the
deployment knobs, and the paper's headline metrics (extrapolated peak
server load with its 5%/95% quantile band, reduction vs. no cache, hit
ratio).  :func:`result_row` is that single definition;
``repro.experiments.base.strategy_rows`` builds its rows through it
too, which is what makes legacy experiments and scenario runs
row-identical by construction.  Scenarios that name extra metric sets
(:mod:`repro.scenario.metrics`) or baselines
(:mod:`repro.baselines.registry`) get those columns merged into the
same rows, rate columns extrapolated by the scenario's ``scale``.

Sweeps execute through :func:`repro.core.parallel.iter_task_results`:
every expanded scenario becomes one
:class:`~repro.core.parallel.SimulationTask` carrying its (possibly
transformed) :class:`~repro.trace.workload.Workload`, so points that
vary the workload -- the Fig 15 population x catalog grid -- fan out
across workers exactly like points that only vary the config.  Serial
execution replays the process-wide memoized traces; parallel workers
regenerate them from the seeded workload.  Both paths are
bit-identical, rows always come back in expansion order, and
:func:`iter_sweep_rows` yields each row as its result lands -- the
CLI's live-progress stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.baselines.registry import RATE_COLUMNS
from repro.core.config import SimulationConfig
from repro.core.parallel import (
    ShardSpec,
    SimulationTask,
    iter_task_results,
)
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.scenario.metrics import metric_columns
from repro.scenario.model import Scenario
from repro.scenario.sweep import Sweep
from repro.trace.workload import cached_workload_trace


def result_row(config: SimulationConfig, result: SimulationResult,
               scale: float = 1.0) -> Dict[str, Any]:
    """The standard per-run result row (rates extrapolated by ``scale``)."""
    low, high = result.peak_server_quantiles_gbps()
    return {
        "strategy": config.strategy.label,
        "neighborhood": config.neighborhood_size,
        "per_peer_gb": config.per_peer_storage_gb,
        "server_gbps": result.peak_server_gbps() / scale,
        "server_gbps_p5": low / scale,
        "server_gbps_p95": high / scale,
        "reduction_pct": 100.0 * result.peak_reduction(),
        "hit_pct": 100.0 * result.counters.hit_ratio,
    }


def scenario_task(scenario: Scenario) -> SimulationTask:
    """The :class:`SimulationTask` executing one scenario."""
    return SimulationTask(
        workload=scenario.workload(),
        config=scenario.config,
        engine=scenario.engine,
        baselines=scenario.baselines,
        live=((scenario.throttle, scenario.fairness)
              if scenario.live else None),
    )


def scenario_tasks(scenario: Scenario) -> List[SimulationTask]:
    """The task group executing one scenario (one task per shard).

    Unsharded, non-streaming scenarios stay a single whole-plant task;
    otherwise one :class:`ShardSpec`-carrying task per neighborhood
    group, whose results the caller reduces with
    :meth:`SimulationResult.merged` (sweeps do this per point).
    """
    if scenario.shards == 1 and not scenario.streaming:
        return [scenario_task(scenario)]
    workload = scenario.workload()
    return [
        SimulationTask(
            workload=workload,
            config=scenario.config,
            engine=scenario.engine,
            shard=ShardSpec(n_shards=scenario.shards, index=index,
                            streaming=scenario.streaming),
        )
        for index in range(scenario.shards)
    ]


def run_scenario(scenario: Scenario) -> SimulationResult:
    """Run one scenario against its (memoized, transformed) trace.

    Sharded or streaming scenarios go through
    :func:`repro.core.shard.run_sharded` (worker count resolved from
    the process default); the result is bit-identical either way.
    """
    if scenario.shards > 1 or scenario.streaming:
        from repro.core.shard import run_sharded

        return run_sharded(scenario.workload(), scenario.config,
                           n_shards=scenario.shards, engine=scenario.engine,
                           streaming=scenario.streaming)
    trace = cached_workload_trace(scenario.workload())
    if scenario.live:
        from repro.core.system import CableVoDSystem
        from repro.live.admission import AdmissionController

        controller = AdmissionController(throttle=scenario.throttle,
                                         fairness=scenario.fairness)
        return CableVoDSystem(trace, scenario.config).run_live(controller)
    return run_simulation(trace, scenario.config, engine=scenario.engine)


def _scenario_row(scenario: Scenario, result: SimulationResult,
                  baseline_values: Optional[Dict[str, float]] = None,
                  cols: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Standard row + metric sets + scaled baselines + point columns."""
    row = result_row(scenario.config, result, scale=scenario.scale)
    if scenario.metrics:
        row.update(metric_columns(scenario.metrics, scenario, result))
    if baseline_values:
        for key, value in baseline_values.items():
            row[key] = value / scenario.scale if key in RATE_COLUMNS else value
    if cols:
        row.update(cols)
    return row


def scenario_row(scenario: Scenario,
                 result: Optional[SimulationResult] = None) -> Dict[str, Any]:
    """The standard row for one scenario (running it if needed).

    When the scenario is run here, its baseline columns are computed
    too; a caller passing a pre-computed ``result`` gets the metric
    columns but no baselines (the trace is not rebuilt for them).
    """
    baseline_values: Dict[str, float] = {}
    if result is None:
        if scenario.shards > 1 or scenario.streaming:
            # Sharded/streaming scenarios carry no baselines (the
            # Scenario validates that), so there are no columns to lose.
            result = run_scenario(scenario)
        else:
            result, baseline_values = next(
                iter_task_results([scenario_task(scenario)], workers=1)
            )
    row = _scenario_row(scenario, result, baseline_values)
    if scenario.label:
        row["label"] = scenario.label
    return row


def run_scenarios(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run many scenarios, sharing one trace per distinct workload.

    Results come back in scenario order, bit-identical for any worker
    count.  ``workers=None`` defers to the process default
    (:func:`repro.core.parallel.get_default_workers`, i.e. the CLI's
    ``--workers`` flag, else ``REPRO_WORKERS``, else one per CPU).
    """
    # Baselines are row-level; result-only callers skip computing them.
    groups = [
        scenario_tasks(s) if (s.shards > 1 or s.streaming) else
        [SimulationTask(workload=s.workload(), config=s.config,
                        engine=s.engine,
                        live=(s.throttle, s.fairness) if s.live else None)]
        for s in scenarios
    ]
    outcomes = iter_task_results([t for group in groups for t in group],
                                 workers=workers)
    return [_reduce_group(len(group), outcomes) for group in groups]


def _reduce_group(size: int, outcomes: Iterator[Tuple[SimulationResult,
                                                      Dict[str, float]]]
                  ) -> SimulationResult:
    """Collapse one scenario's next ``size`` outcomes into its result.

    A single-task group passes its result straight through (keeping the
    monolithic path byte-for-byte untouched); a shard group reduces
    through :meth:`SimulationResult.merged`, which reproduces the
    monolithic fold exactly.
    """
    results = [next(outcomes)[0] for _ in range(size)]
    if size == 1:
        return results[0]
    return SimulationResult.merged(results)


def iter_sweep_rows(
    sweep: Union[Sweep, Scenario],
    workers: Optional[int] = None,
) -> Iterator[Dict[str, Any]]:
    """Expand and run a sweep, yielding rows in order as results land.

    Each row is :func:`result_row` extrapolated by that scenario's
    ``scale``, plus its metric sets, scaled baseline columns, and the
    point's extra columns.  Row order always matches expansion order
    (results stream back ordered); long grids therefore show live,
    stable progress.  A bare :class:`Scenario` is a one-point sweep.
    """
    if isinstance(sweep, Scenario):
        expanded: List[Tuple[Scenario, Dict[str, Any]]] = [(sweep, {})]
    else:
        expanded = sweep.expand()
    groups = [scenario_tasks(scenario) for scenario, _ in expanded]
    outcomes = iter_task_results([t for group in groups for t in group],
                                 workers=workers)
    for (scenario, cols), group in zip(expanded, groups):
        if len(group) == 1 and group[0].shard is None:
            result, baseline_values = next(outcomes)
        else:
            result = _reduce_group(len(group), outcomes)
            baseline_values = {}
        yield _scenario_row(scenario, result, baseline_values, cols)


def run_sweep(sweep: Union[Sweep, Scenario],
              workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Expand and run a sweep, returning one standard row per point.

    The list form of :func:`iter_sweep_rows` -- the
    ``ExperimentResult``-compatible table the experiments and the CLI
    render.
    """
    return list(iter_sweep_rows(sweep, workers=workers))
