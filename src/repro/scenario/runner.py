"""Execute scenarios and sweeps, returning standard result rows.

One row shape serves every consumer -- the paper-figure experiments,
the CLI's file-driven runs, and ad-hoc sweeps: the strategy label, the
deployment knobs, and the paper's headline metrics (extrapolated peak
server load with its 5%/95% quantile band, reduction vs. no cache, hit
ratio).  :func:`result_row` is that single definition;
``repro.experiments.base.strategy_rows`` builds its rows through it
too, which is what makes legacy experiments and scenario runs
row-identical by construction.

Sweeps execute through :func:`repro.core.parallel.run_many`, grouped so
each *distinct* workload model (and engine choice) shares one trace:
serial groups replay the process-wide memoized trace
(:func:`repro.trace.synthetic.cached_trace`); parallel groups let each
worker regenerate it from the seeded model.  Both paths are
bit-identical, and row order always matches expansion order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimulationConfig
from repro.core.parallel import (
    get_default_workers,
    resolve_workers,
    run_many,
)
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.scenario.model import Scenario
from repro.scenario.sweep import Sweep
from repro.trace.synthetic import PowerInfoModel, cached_trace


def result_row(config: SimulationConfig, result: SimulationResult,
               scale: float = 1.0) -> Dict[str, Any]:
    """The standard per-run result row (rates extrapolated by ``scale``)."""
    low, high = result.peak_server_quantiles_gbps()
    return {
        "strategy": config.strategy.label,
        "neighborhood": config.neighborhood_size,
        "per_peer_gb": config.per_peer_storage_gb,
        "server_gbps": result.peak_server_gbps() / scale,
        "server_gbps_p5": low / scale,
        "server_gbps_p95": high / scale,
        "reduction_pct": 100.0 * result.peak_reduction(),
        "hit_pct": 100.0 * result.counters.hit_ratio,
    }


def run_scenario(scenario: Scenario) -> SimulationResult:
    """Run one scenario against its (memoized) workload trace."""
    trace = cached_trace(scenario.model())
    return run_simulation(trace, scenario.config, engine=scenario.engine)


def scenario_row(scenario: Scenario,
                 result: Optional[SimulationResult] = None) -> Dict[str, Any]:
    """The standard row for one scenario (running it if needed)."""
    if result is None:
        result = run_scenario(scenario)
    row = result_row(scenario.config, result, scale=scenario.scale)
    if scenario.label:
        row["label"] = scenario.label
    return row


def run_scenarios(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run many scenarios, sharing one trace per distinct workload model.

    Results come back in scenario order, bit-identical for any worker
    count.  ``workers=None`` defers to the process default
    (:func:`repro.core.parallel.get_default_workers`, i.e. the CLI's
    ``--workers`` flag, else ``REPRO_WORKERS``, else one per CPU).
    """
    scenarios = list(scenarios)
    if workers is None:
        workers = get_default_workers()
    results: List[Optional[SimulationResult]] = [None] * len(scenarios)
    groups: Dict[Tuple[PowerInfoModel, str], List[int]] = {}
    for index, scenario in enumerate(scenarios):
        groups.setdefault((scenario.model(), scenario.engine), []).append(index)
    for (model, engine), indexes in groups.items():
        configs = [scenarios[i].config for i in indexes]
        # Resolve "0 = one per CPU" up front: a single-CPU host stays
        # serial against the memoized trace instead of regenerating it.
        effective = min(resolve_workers(workers), len(configs))
        if effective > 1:
            group_results = run_many(model, configs, workers=effective,
                                     engine=engine)
        else:
            trace = cached_trace(model)
            group_results = [run_simulation(trace, config, engine=engine)
                             for config in configs]
        for i, result in zip(indexes, group_results):
            results[i] = result
    return results  # type: ignore[return-value]


def run_sweep(sweep: Union[Sweep, Scenario],
              workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Expand and run a sweep, returning one standard row per point.

    Each row is :func:`result_row` extrapolated by that scenario's
    ``scale``, updated with the point's extra columns -- the
    ``ExperimentResult``-compatible table the experiments and the CLI
    render.  A bare :class:`Scenario` is accepted as a one-point sweep.
    """
    if isinstance(sweep, Scenario):
        expanded: List[Tuple[Scenario, Dict[str, Any]]] = [(sweep, {})]
    else:
        expanded = sweep.expand()
    results = run_scenarios([scenario for scenario, _ in expanded],
                            workers=workers)
    rows: List[Dict[str, Any]] = []
    for (scenario, cols), result in zip(expanded, results):
        row = result_row(scenario.config, result, scale=scenario.scale)
        row.update(cols)
        rows.append(row)
    return rows
