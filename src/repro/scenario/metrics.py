"""Named per-run metric sets merged into scenario result rows.

:func:`repro.scenario.runner.result_row` carries the paper's headline
server metrics; some exhibits need more -- Fig 14 reads the *coax*
side of the same simulation (per-neighborhood traffic and the section
VI-B feasibility verdict).  Rather than hand-rolling those loops, a
scenario names the extra metric sets it wants (``metrics=("coax",)``)
and the runner merges each set's columns into the standard row.  Names
are serializable, so sweep files request them declaratively.

Every metric function maps ``(scenario, result)`` to extra columns;
rates are extrapolated by the scenario's ``scale`` exactly as the
experiment profiles extrapolate them, keeping migrated exhibits
row-identical to their pre-scenario loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Sequence, Tuple

from repro import units
from repro.analysis.feasibility import assess_feasibility
from repro.core.results import SimulationResult
from repro.errors import ConfigurationError, suggest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model -> here)
    from repro.scenario.model import Scenario


def coax_columns(scenario: "Scenario",
                 result: SimulationResult) -> Dict[str, Any]:
    """Coax traffic and feasibility columns (Fig 14 / section VI-B).

    Mean and p95 peak-hour coax rates extrapolated to paper scale, the
    worst-case utilization of the VoD coax budget, and the paper's
    feasibility bar (worst case fits the budget).
    """
    feasibility = assess_feasibility(result)
    scale = scenario.scale
    return {
        "coax_mean_mbps": result.coax_peak_mean_mbps() / scale,
        "coax_p95_mbps": result.coax_peak_quantile_mbps() / scale,
        "utilization_pct": 100.0 * (feasibility.worst_case_utilization / scale),
        "feasible": (feasibility.worst_coax_mbps / scale)
        <= units.to_mbps(units.COAX_VOD_CAPACITY_BPS),
    }


def live_columns(scenario: "Scenario",
                 result: SimulationResult) -> Dict[str, Any]:
    """Admission accounting of a live run, split abusive vs. normal.

    Requires a ``live=true`` scenario (the columns read the
    :class:`~repro.live.admission.LiveReport` the drain produced).  The
    abusive population is the workload model's seeded
    :func:`~repro.trace.synthetic.abusive_user_ids` set -- empty when
    ``abusive_fraction`` is 0, in which case the share columns are 0
    and the "normal" columns cover everyone.
    """
    from repro.trace.synthetic import PowerInfoModel, abusive_user_ids

    report = result.live
    if report is None:
        raise ConfigurationError(
            "the 'live' metric set reads admission accounting; it needs "
            "a live=true scenario"
        )
    model = scenario.model()
    # Only the powerinfo family models an abusive population; other
    # families report empty abuser shares and all-user "normal" columns.
    abusers = (set(abusive_user_ids(model))
               if isinstance(model, PowerInfoModel) else set())
    n_users = model.declared_n_users() or 0
    normals = [uid for uid in range(n_users) if uid not in abusers]
    return {
        "live_admitted": report.admitted,
        "live_denied": report.denied,
        "live_deferrals": report.deferrals,
        "admit_pct": 100.0 * report.admit_rate(),
        "abuser_admit_pct": 100.0 * report.admit_rate(abusers),
        "normal_admit_pct": 100.0 * report.admit_rate(normals),
        "abuser_coax_share_pct": 100.0 * report.coax_share(abusers),
        "abuser_fill_share_pct": 100.0 * report.fill_share(abusers),
        "normal_served_hours": (report.served_seconds(normals)
                                / units.SECONDS_PER_HOUR),
    }


#: Metric-set name -> column builder.
ROW_METRICS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "coax": coax_columns,
    "live": live_columns,
}

#: Every registered metric-set name, in registration order.
METRIC_NAMES: Tuple[str, ...] = tuple(ROW_METRICS)


def validate_metrics(names: Sequence[str]) -> None:
    """Reject unknown metric-set names eagerly (with close-match hints)."""
    for name in names:
        if name not in ROW_METRICS:
            raise ConfigurationError(
                f"unknown metric set {name!r}"
                f"{suggest(str(name), sorted(ROW_METRICS))} "
                f"(choose from {sorted(ROW_METRICS)})"
            )


def metric_columns(names: Sequence[str], scenario: "Scenario",
                   result: SimulationResult) -> Dict[str, Any]:
    """Columns of every requested metric set for one run."""
    columns: Dict[str, Any] = {}
    for name in names:
        columns.update(ROW_METRICS[name](scenario, result))
    return columns
