"""Declarative sweeps: a scenario template plus named axes.

A :class:`Sweep` is the serializable form of every "grid" in the
paper's evaluation: one base :class:`~repro.scenario.model.Scenario`
and an ordered mapping of axes, each a list of points.  Expansion is
the cartesian product in declaration order (first axis slowest), so a
sweep file reads top-to-bottom exactly like the nested ``for`` loops it
replaces.

Axis points come in three shapes, all normalized internally:

* a bare value -- assigned to the axis's dotted path
  (``"config.per_peer_storage_gb": [1, 3, 5, 10]``);
* ``{"value": v, "cols": {...}}`` -- same, plus extra row columns
  attached to every run at this point (how figures carry nominal sizes
  and derived columns like ``total_cache_tb``);
* ``{"set": {path: value, ...}, "cols": {...}}`` -- a point that moves
  several fields at once (Fig 10's paired neighborhood/storage sweep);
  the axis name is then just a label.

Paths address scenario fields (``label``, ``engine``, ``seed``,
``scale``, ``live``, and the trace transforms ``population_x`` /
``catalog_x``), the live admission knobs (``throttle`` / ``fairness``
swap a whole spec -- names, dicts, specs, or ``null`` for
admission-off points -- while ``throttle.<field>`` / ``fairness.<field>``
move one knob of the base's spec), or one level into the components
(``config.*``, ``trace.*``).  ``config.strategy`` values may be
registry names (``"lfu:72"``), spec dicts, or spec objects.

Axes multiply out as a cartesian product by default; a sweep's ``zip``
groups instead advance named axes in lockstep (pairing their points
index-by-index), so a throttle axis and its label axis -- or any other
correlated pair -- contribute one grid dimension instead of two.

Besides declared point lists, a sweep's ``random`` section defines
*sampled* axes: each entry names a dotted path, a point count, and
either a numeric range (``low``/``high``, optionally ``integer``) or a
``choices`` list.  Points are a seeded low-discrepancy (golden-ratio)
sequence over that domain -- deterministic in ``(seed, axis name)`` via
:func:`~repro.sim.random_streams.derive_seed`, so the same file always
expands to the same grid, yet ``count`` can grow without re-clustering
earlier samples.  Sampled axes expand after the declared ones
(fastest-varying) and zip like any other axis.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import math
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.cache.factory import StrategySpec, spec_to_dict
from repro.errors import ConfigurationError
from repro.live.specs import (
    FairnessSpec,
    LiveAdmissionSpec,
    ThrottleSpec,
    coerce_live_spec,
    live_spec_to_dict,
)
from repro.scenario.model import (
    Scenario,
    _tuple_fields,
    coerce_strategy,
)
from repro.sim.random_streams import derive_seed
from repro.trace.families import WorkloadModel, coerce_trace_model
from repro.trace.families import spec_to_dict as family_spec_to_dict

#: Scenario-level scalar fields addressable as bare paths.  The trace
#: transforms live here too, so an axis like ``"population_x": [1, 2,
#: 3]`` sweeps the *workload* (the Fig 15 grid), not just the config.
_SCENARIO_FIELDS = ("label", "engine", "seed", "scale",
                    "population_x", "catalog_x", "live")

#: Live admission knobs: bare paths swap the whole spec (names, dicts,
#: specs, or ``null`` for policy-off points); dotted paths move one
#: field of the base scenario's spec.
_LIVE_FIELDS = {"throttle": ThrottleSpec, "fairness": FairnessSpec}


def apply_path(scenario: Scenario, path: str, value: Any) -> Scenario:
    """A copy of ``scenario`` with the dotted ``path`` set to ``value``."""
    head, _, rest = path.partition(".")
    if head in _SCENARIO_FIELDS:
        if rest:
            raise ConfigurationError(
                f"scenario field {head!r} has no sub-field {rest!r}"
            )
        return replace(scenario, **{head: value})
    if head in _LIVE_FIELDS:
        if not rest:
            return replace(scenario, **{head: value})
        if "." in rest:
            raise ConfigurationError(
                f"axis path {path!r} must name one {head} field "
                f"({head}.<field>)"
            )
        spec = getattr(scenario, head)
        if spec is None:
            raise ConfigurationError(
                f"cannot set {path!r}: the base scenario has no {head} "
                f"policy; sweep the bare {head!r} path instead"
            )
        try:
            spec = replace(spec, **{rest: value})
        except TypeError:
            fields = sorted(
                f.name for f in dataclasses.fields(type(spec)) if f.init
            )
            raise ConfigurationError(
                f"{head} has no field {rest!r} (have {fields})"
            ) from None
        return replace(scenario, **{head: spec})
    if head == "trace" and not rest:
        # The bare path swaps the whole workload model: family names,
        # spec dicts, or spec objects -- how an axis sweeps *families*.
        return replace(scenario, trace=coerce_trace_model(value))
    if head in ("config", "trace"):
        if not rest or "." in rest:
            raise ConfigurationError(
                f"axis path {path!r} must name one {head} field "
                f"({head}.<field>)"
            )
        component = getattr(scenario, head)
        if head == "config" and rest == "strategy":
            value = coerce_strategy(value)
        elif rest in _tuple_fields(type(component)) and isinstance(value, list):
            value = tuple(value)
        try:
            component = replace(component, **{rest: value})
        except TypeError:
            fields = sorted(
                f.name for f in dataclasses.fields(type(component)) if f.init
            )
            raise ConfigurationError(
                f"{head} has no field {rest!r} (have {fields})"
            ) from None
        return replace(scenario, **{head: component})
    raise ConfigurationError(
        f"axis path {path!r} must start with one of "
        f"{list(_SCENARIO_FIELDS) + sorted(_LIVE_FIELDS) + ['config', 'trace']}"
    )


def _freeze(value: Any) -> Any:
    """Lists from JSON become tuples so points stay immutable and equal."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    return value


def _diff_scenario(base: Scenario, scenario: Scenario) -> Dict[str, Any]:
    """Dotted-path assignments turning ``base`` into ``scenario``.

    Sweep axes can only address scenario scalars and one level into the
    ``config``/``trace`` components, so a field-wise diff over exactly
    that surface reconstructs any expanded point.
    """
    sets: Dict[str, Any] = {}
    for name in _SCENARIO_FIELDS:
        value = getattr(scenario, name)
        if value != getattr(base, name):
            sets[name] = value
    for name in _LIVE_FIELDS:
        value = getattr(scenario, name)
        if value != getattr(base, name):
            sets[name] = value
    for component in ("config", "trace"):
        base_part = getattr(base, component)
        part = getattr(scenario, component)
        if part == base_part:
            continue
        if type(part) is not type(base_part):
            # A family swap has no field-wise diff; the point carries
            # the whole replacement model (the bare "trace" path).
            sets[component] = part
            continue
        for f in dataclasses.fields(type(part)):
            if not f.init:
                continue
            value = getattr(part, f.name)
            if value != getattr(base_part, f.name):
                sets[f"{component}.{f.name}"] = value
    return sets


@dataclass(frozen=True)
class SweepPoint:
    """One point of one axis: field assignments plus row columns."""

    sets: Tuple[Tuple[str, Any], ...]
    cols: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.sets:
            raise ConfigurationError("a sweep point must set at least one field")


@dataclass(frozen=True)
class SweepAxis:
    """One named axis: its points in sweep order."""

    name: str
    points: Tuple[SweepPoint, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ConfigurationError(f"axis {self.name!r} has no points")


#: Golden-ratio conjugate: the Kronecker low-discrepancy increment.
_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0

_RANDOM_AXIS_KEYS = ("path", "count", "seed", "low", "high", "choices",
                     "integer")


@dataclass(frozen=True)
class RandomAxis:
    """A sampled axis: seeded low-discrepancy points over a domain.

    The ``i``-th unit sample is ``(offset + i * phi) mod 1`` where
    ``phi`` is the golden-ratio conjugate and ``offset`` derives from
    ``(seed, name)`` via
    :func:`~repro.sim.random_streams.derive_seed` -- an additive
    (Kronecker) sequence, so samples spread evenly over the domain at
    every prefix length and the whole axis is a pure function of the
    frozen spec.  The domain is either the inclusive numeric range
    ``[low, high]`` (``integer=True`` for whole values) or a
    ``choices`` list (any values a declared axis could hold, family
    names and spec dicts included).
    """

    name: str
    path: str
    count: int
    seed: int = 0
    low: Optional[float] = None
    high: Optional[float] = None
    choices: Tuple[Any, ...] = ()
    integer: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "choices", tuple(_freeze(c) for c in self.choices))
        if isinstance(self.count, bool) or not isinstance(self.count, int) \
                or self.count < 1:
            raise ConfigurationError(
                f"random axis {self.name!r}: count must be an integer "
                f">= 1, got {self.count!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(
                f"random axis {self.name!r}: seed must be an int, "
                f"got {self.seed!r}"
            )
        if self.choices:
            if self.low is not None or self.high is not None or self.integer:
                raise ConfigurationError(
                    f"random axis {self.name!r}: 'choices' excludes "
                    f"'low'/'high'/'integer'"
                )
        else:
            if self.low is None or self.high is None:
                raise ConfigurationError(
                    f"random axis {self.name!r} needs either a 'choices' "
                    f"list or a 'low'/'high' range"
                )
            if not self.low < self.high:
                raise ConfigurationError(
                    f"random axis {self.name!r}: low must be < high, "
                    f"got [{self.low}, {self.high}]"
                )
            if self.integer and (self.low != int(self.low)
                                 or self.high != int(self.high)):
                raise ConfigurationError(
                    f"random axis {self.name!r}: an integer range needs "
                    f"whole low/high bounds, got [{self.low}, {self.high}]"
                )

    def values(self) -> List[Any]:
        """The axis's sampled values, in expansion order."""
        offset = derive_seed(self.seed, self.name) / 2.0 ** 64
        out: List[Any] = []
        for index in range(self.count):
            u = (offset + index * _GOLDEN) % 1.0
            if self.choices:
                out.append(self.choices[
                    min(int(u * len(self.choices)), len(self.choices) - 1)])
            elif self.integer:
                low, high = int(self.low), int(self.high)
                out.append(low + min(int(u * (high - low + 1)), high - low))
            else:
                out.append(self.low + u * (self.high - self.low))
        return out

    def as_axis(self) -> SweepAxis:
        """Materialize into an ordinary point axis for expansion."""
        return SweepAxis(name=self.name, points=tuple(
            SweepPoint(sets=((self.path, _coerce_value(self.path, value)),))
            for value in self.values()
        ))


def _normalize_point(axis_name: str, raw: Any) -> SweepPoint:
    """Canonicalize one axis point (bare value / value-dict / set-dict)."""
    if isinstance(raw, SweepPoint):
        return raw
    if isinstance(raw, Mapping):
        if "value" not in raw and "set" not in raw:
            raise ConfigurationError(
                f"axis {axis_name!r}: a dict point needs 'value' or 'set' "
                f"keys, got {sorted(raw)}"
            )
        unknown = sorted(set(raw) - {"value", "set", "cols"})
        if unknown:
            raise ConfigurationError(
                f"axis {axis_name!r}: unknown point keys {unknown}"
            )
        sets: Dict[str, Any] = {}
        for path, value in dict(raw.get("set", {})).items():
            sets[path] = _coerce_value(path, value)
        if "value" in raw:
            sets[axis_name] = _coerce_value(axis_name, raw["value"])
        cols = {k: _freeze(v) for k, v in dict(raw.get("cols", {})).items()}
        return SweepPoint(sets=tuple(sets.items()), cols=tuple(cols.items()))
    return SweepPoint(sets=((axis_name, _coerce_value(axis_name, raw)),))


def _coerce_value(path: str, value: Any) -> Any:
    """Canonicalize one assignment value for storage inside a point."""
    if path == "config.strategy":
        return coerce_strategy(value)
    if path == "trace":
        return coerce_trace_model(value)
    if path in _LIVE_FIELDS:
        return coerce_live_spec(value, _LIVE_FIELDS[path])
    return _freeze(value)


def _point_to_dict(axis: SweepAxis, point: SweepPoint) -> Any:
    """Re-emit a point compactly: bare value when possible."""
    sets = dict(point.sets)
    on_axis = len(sets) == 1 and axis.name in sets

    def emit(value: Any) -> Any:
        if isinstance(value, StrategySpec):
            return spec_to_dict(value)
        if isinstance(value, LiveAdmissionSpec):
            return live_spec_to_dict(value)
        if isinstance(value, WorkloadModel):
            return family_spec_to_dict(value)
        if isinstance(value, tuple):
            return [emit(v) for v in value]
        return value

    if on_axis and not point.cols:
        value = sets[axis.name]
        # A bare dict would be misread as a value/set point on reload,
        # so strategy, live-spec, and workload-model points always keep
        # the explicit {"value": ...}.
        if not isinstance(value,
                          (StrategySpec, LiveAdmissionSpec, WorkloadModel)):
            return emit(value)
        return {"value": emit(value)}
    payload: Dict[str, Any] = {}
    if on_axis:
        payload["value"] = emit(sets.pop(axis.name))
    if sets:
        payload["set"] = {path: emit(value) for path, value in sets.items()}
    if point.cols:
        payload["cols"] = {k: emit(v) for k, v in point.cols}
    return payload


@dataclass(frozen=True)
class Sweep:
    """A scenario template plus named axes, expandable to a config grid.

    ``axes`` accepts an ordered mapping ``{axis_name: [points]}`` (the
    JSON shape) or pre-built :class:`SweepAxis` tuples; both normalize
    to the same canonical form, so equality and round-tripping behave.
    ``columns`` optionally fixes the table column order for rendering
    (rows always carry every standard metric regardless).
    ``zip_groups`` (the JSON file's ``"zip"`` key) names groups of
    axes that advance in lockstep instead of multiplying out: every
    group's axes must exist, have equal point counts, and belong to at
    most one group.  ``random_axes`` (the JSON file's ``"random"`` key,
    ``{name: {path?, count, low/high or choices, seed?, integer?}}``)
    adds seeded sampled axes that expand after the declared ones; they
    participate in zip groups like any other axis.
    """

    base: Scenario
    axes: Any = ()
    sweep_id: str = "sweep"
    title: str = ""
    columns: Tuple[str, ...] = ()
    zip_groups: Tuple[Tuple[str, ...], ...] = ()
    random_axes: Any = ()

    def __post_init__(self) -> None:
        if not isinstance(self.base, Scenario):
            raise ConfigurationError(
                f"base must be a Scenario, got {type(self.base).__name__}"
            )
        axes = self.axes
        if isinstance(axes, Mapping):
            normalized = tuple(
                SweepAxis(
                    name=str(name),
                    points=tuple(_normalize_point(str(name), p) for p in points),
                )
                for name, points in axes.items()
            )
        else:
            normalized = tuple(axes)
            for axis in normalized:
                if not isinstance(axis, SweepAxis):
                    raise ConfigurationError(
                        f"axes must be a mapping or SweepAxis tuple, "
                        f"got {type(axis).__name__}"
                    )
        object.__setattr__(self, "axes", normalized)
        random_axes = self.random_axes
        if isinstance(random_axes, Mapping):
            sampled = []
            for name, spec in random_axes.items():
                if isinstance(spec, RandomAxis):
                    sampled.append(spec)
                    continue
                if not isinstance(spec, Mapping):
                    raise ConfigurationError(
                        f"random axis {name!r} must be a dict, got {spec!r}"
                    )
                data = dict(spec)
                unknown = sorted(set(data) - set(_RANDOM_AXIS_KEYS))
                if unknown:
                    raise ConfigurationError(
                        f"random axis {name!r} has no keys {unknown} "
                        f"(have {sorted(_RANDOM_AXIS_KEYS)})"
                    )
                if "choices" in data:
                    data["choices"] = tuple(data["choices"])
                # The axis name doubles as the path, exactly like a
                # declared axis whose name is a dotted path.
                data.setdefault("path", str(name))
                sampled.append(RandomAxis(name=str(name), **data))
            sampled_axes = tuple(sampled)
        else:
            sampled_axes = tuple(random_axes)
            for axis in sampled_axes:
                if not isinstance(axis, RandomAxis):
                    raise ConfigurationError(
                        f"random_axes must be a mapping or RandomAxis "
                        f"tuple, got {type(axis).__name__}"
                    )
        object.__setattr__(self, "random_axes", sampled_axes)
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(
            self, "zip_groups",
            tuple(tuple(str(name) for name in group)
                  for group in self.zip_groups))
        lengths = {axis.name: len(axis.points) for axis in self._all_axes()}
        if len(lengths) != len(self.axes) + len(self.random_axes):
            names = sorted(axis.name for axis in self.axes)
            names += sorted(axis.name for axis in self.random_axes)
            duplicates = sorted(
                {name for name in names if names.count(name) > 1})
            raise ConfigurationError(
                f"axis names must be unique across declared and random "
                f"axes, got duplicates {duplicates}"
            )
        zipped: set = set()
        for group in self.zip_groups:
            if len(group) < 2:
                raise ConfigurationError(
                    f"a zip group pairs at least two axes, got {list(group)}"
                )
            for name in group:
                if name not in lengths:
                    raise ConfigurationError(
                        f"zip group names unknown axis {name!r} "
                        f"(have {sorted(lengths)})"
                    )
                if name in zipped:
                    raise ConfigurationError(
                        f"axis {name!r} appears in more than one zip group"
                    )
                zipped.add(name)
            counts = {lengths[name] for name in group}
            if len(counts) > 1:
                raise ConfigurationError(
                    f"zipped axes must have equal point counts, got "
                    f"{ {name: lengths[name] for name in group} }"
                )
        # Validate every point independently against the base now, so a
        # bad path or value fails at construction, not mid-sweep.
        for axis in self._all_axes():
            for point in axis.points:
                for path, value in point.sets:
                    apply_path(self.base, path, value)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def _all_axes(self) -> Tuple[SweepAxis, ...]:
        """Declared axes plus materialized sampled axes, in that order."""
        return tuple(self.axes) + tuple(
            axis.as_axis() for axis in self.random_axes)

    def _blocks(self) -> List[List[Tuple[SweepPoint, ...]]]:
        """Axes grouped for expansion: one block per product dimension.

        An ungrouped axis is its own block; a zip group collapses its
        member axes into a single block whose entries pair the members'
        points index-by-index (lockstep), positioned where the group's
        first-declared member sits.  The cartesian product over blocks
        is the sweep's grid.
        """
        group_of: Dict[str, Tuple[str, ...]] = {}
        for group in self.zip_groups:
            for name in group:
                group_of[name] = group
        blocks: List[List[Tuple[SweepPoint, ...]]] = []
        emitted: set = set()
        all_axes = self._all_axes()
        for axis in all_axes:
            group = group_of.get(axis.name)
            if group is None:
                blocks.append([(point,) for point in axis.points])
            elif axis.name not in emitted:
                members = [a for a in all_axes if a.name in group]
                emitted.update(group)
                blocks.append(list(zip(*(m.points for m in members))))
        return blocks

    def __len__(self) -> int:
        total = 1
        for block in self._blocks():
            total *= len(block)
        return total

    def expand(self) -> List[Tuple[Scenario, Dict[str, Any]]]:
        """The full grid: ``(scenario, extra_columns)`` per run.

        The cartesian product iterates blocks in declaration order with
        the first block slowest -- the row order of the nested loops a
        sweep replaces.  Zipped axes advance together inside one block
        instead of multiplying out.
        """
        if not self.axes and not self.random_axes:
            return [(self.base, {})]
        grid: List[Tuple[Scenario, Dict[str, Any]]] = []
        for combo in itertools.product(*self._blocks()):
            scenario = self.base
            cols: Dict[str, Any] = {}
            for points in combo:
                for point in points:
                    for path, value in point.sets:
                        scenario = apply_path(scenario, path, value)
                    cols.update(dict(point.cols))
            grid.append((scenario, cols))
        return grid

    def scenarios(self) -> List[Scenario]:
        """Just the expanded scenarios, in run order."""
        return [scenario for scenario, _ in self.expand()]

    def flattened(self) -> "Sweep":
        """This sweep with its whole grid inlined into one ``point`` axis.

        Every profile-scaled value each run needs is spelled out in its
        own point (as dotted-path assignments against the base), so the
        emitted JSON is *portable*: a consumer replays run ``k`` by
        reading point ``k``, with no cartesian-product expansion and no
        knowledge of the experiment profiles that derived the values.
        Expansion of the flattened sweep is provably identical to the
        original's -- same scenarios, same extra columns, same order --
        so ``repro-vod run``/``sweep`` produce row-identical output
        from either form.  ``repro-vod describe <id> --flat`` is the
        CLI spelling.
        """
        points = []
        for scenario, cols in self.expand():
            sets = _diff_scenario(self.base, scenario)
            if not sets:
                # A degenerate single-point grid still needs one
                # assignment; restating the label is a no-op move.
                sets = {"label": scenario.label}
            points.append(SweepPoint(sets=tuple(sets.items()),
                                     cols=tuple(cols.items())))
        axis = SweepAxis(name="point", points=tuple(points))
        # The inlined grid already encodes any lockstep pairing and any
        # sampled values, so the flattened sweep carries neither zip
        # groups nor random axes.
        return replace(self, axes=(axis,), zip_groups=(), random_axes=())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; the exact inverse of :meth:`from_dict`."""
        payload: Dict[str, Any] = {
            "kind": "sweep",
            "id": self.sweep_id,
            "title": self.title,
            "base": self.base.to_dict(),
            "axes": {
                axis.name: [_point_to_dict(axis, p) for p in axis.points]
                for axis in self.axes
            },
        }
        if self.random_axes:
            random_payload: Dict[str, Any] = {}
            for axis in self.random_axes:
                entry: Dict[str, Any] = {"path": axis.path,
                                         "count": axis.count}
                if axis.seed != 0:
                    entry["seed"] = axis.seed
                if axis.choices:
                    entry["choices"] = [
                        list(c) if isinstance(c, tuple) else c
                        for c in axis.choices
                    ]
                else:
                    entry["low"] = axis.low
                    entry["high"] = axis.high
                if axis.integer:
                    entry["integer"] = axis.integer
                random_payload[axis.name] = entry
            payload["random"] = random_payload
        if self.zip_groups:
            payload["zip"] = [list(group) for group in self.zip_groups]
        if self.columns:
            payload["columns"] = list(self.columns)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Sweep":
        """Rebuild a sweep from its :meth:`to_dict` form."""
        if not isinstance(payload, dict):
            raise ConfigurationError(f"a sweep must be a dict, got {payload!r}")
        data = dict(payload)
        kind = data.pop("kind", "sweep")
        if kind != "sweep":
            raise ConfigurationError(f"expected kind 'sweep', got {kind!r}")
        if "base" not in data:
            raise ConfigurationError("a sweep needs a 'base' scenario")
        base = Scenario.from_dict(data.pop("base"))
        axes = data.pop("axes", {})
        if not isinstance(axes, Mapping):
            raise ConfigurationError(f"axes must be a mapping, got {axes!r}")
        kwargs: Dict[str, Any] = {}
        if "id" in data:
            kwargs["sweep_id"] = str(data.pop("id"))
        if "title" in data:
            kwargs["title"] = str(data.pop("title"))
        if "zip" in data:
            groups = data.pop("zip")
            if not isinstance(groups, (list, tuple)):
                raise ConfigurationError(
                    f"'zip' must be a list of axis-name groups, got {groups!r}"
                )
            kwargs["zip_groups"] = tuple(tuple(group) for group in groups)
        if "random" in data:
            sampled = data.pop("random")
            if not isinstance(sampled, Mapping):
                raise ConfigurationError(
                    f"'random' must be a mapping of axis specs, "
                    f"got {sampled!r}"
                )
            kwargs["random_axes"] = sampled
        if "columns" in data:
            kwargs["columns"] = tuple(data.pop("columns"))
        if data:
            raise ConfigurationError(
                f"sweep has no fields {sorted(data)} "
                f"(have ['kind', 'id', 'title', 'base', 'axes', 'random', "
                f"'zip', 'columns'])"
            )
        return cls(base=base, axes=axes, **kwargs)

    def to_json(self, indent: int = 2) -> str:
        """JSON form (arrays for tuples; :meth:`from_json` restores them)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Sweep":
        """Rebuild a sweep from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        """Write the sweep as a JSON file."""
        Path(path).write_text(self.to_json() + "\n")


def load_sweep(path: Union[str, Path]) -> Sweep:
    """Read a :class:`Sweep` from a JSON file."""
    loaded = load(path)
    if not isinstance(loaded, Sweep):
        raise ConfigurationError(
            f"{path} holds a scenario, not a sweep; use load_scenario "
            f"or repro-vod run"
        )
    return loaded


def load(path: Union[str, Path]) -> Union[Scenario, Sweep]:
    """Read a scenario *or* sweep file, dispatching on its ``kind``."""
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read scenario file: {error}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path}: not valid JSON ({error})") from None
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{path}: expected a JSON object with a 'kind' key"
        )
    kind = payload.get("kind", "scenario")
    if kind == "sweep":
        return Sweep.from_dict(payload)
    if kind == "scenario":
        return Scenario.from_dict(payload)
    raise ConfigurationError(
        f"{path}: unknown kind {kind!r} (expected 'scenario' or 'sweep')"
    )
