"""Declarative scenarios: one serializable schema for every run.

The public composition layer of the reproduction.  A
:class:`Scenario` freezes everything one simulator execution needs
(workload model, config, engine, seed, label, scale); a :class:`Sweep`
is a scenario template plus named axes that expands to the config grids
the paper's figures sweep.  Both round-trip losslessly through plain
dicts and JSON files, so the same definition drives Python code, the
``repro-vod run`` / ``sweep`` CLI, and the built-in experiments
(``repro-vod describe <id>`` prints any migrated exhibit in this
format).

Quickstart
----------
>>> from repro.scenario import Scenario, Sweep, run_sweep
>>> from repro.trace.synthetic import PowerInfoModel
>>> from repro.core.config import SimulationConfig
>>> base = Scenario(trace=PowerInfoModel(n_users=300, n_programs=60, days=4.0),
...                 config=SimulationConfig(neighborhood_size=150,
...                                         warmup_days=1.0))
>>> rows = run_sweep(Sweep(base=base,
...                        axes={"config.strategy": ["lru", "lfu:24"]}))
>>> [row["strategy"] for row in rows]
['lru', 'lfu(24h)']
"""

from repro.scenario.model import (
    Scenario,
    config_from_dict,
    config_to_dict,
    load_scenario,
    model_from_dict,
    model_to_dict,
)
from repro.scenario.metrics import METRIC_NAMES, ROW_METRICS
from repro.scenario.runner import (
    iter_sweep_rows,
    result_row,
    run_scenario,
    run_scenarios,
    run_sweep,
    scenario_row,
)
from repro.scenario.sweep import (
    Sweep,
    SweepAxis,
    SweepPoint,
    apply_path,
    load,
    load_sweep,
)

__all__ = [
    "METRIC_NAMES",
    "ROW_METRICS",
    "Scenario",
    "Sweep",
    "SweepAxis",
    "SweepPoint",
    "apply_path",
    "config_from_dict",
    "config_to_dict",
    "iter_sweep_rows",
    "load",
    "load_scenario",
    "load_sweep",
    "model_from_dict",
    "model_to_dict",
    "result_row",
    "run_scenario",
    "run_scenarios",
    "run_sweep",
    "scenario_row",
]
