"""The :class:`Scenario`: one simulator execution as a plain value.

A scenario bundles everything a run needs -- the seeded workload model,
the :class:`~repro.core.config.SimulationConfig`, the event-engine
choice, an optional seed override, a label, the scale factor that
extrapolates measured rates back to paper scale, the section V-A trace
transforms (``population_x`` / ``catalog_x``), and the named baseline
and metric sets merged into its result rows.  It is frozen, validated
eagerly, and round-trips losslessly through plain dicts and JSON
(strategy specs serialize by their policy-registry names), so the same
object works as a Python value, a CLI file, and a sweep template.

Serialization convention: ``to_dict`` emits the identity fields of each
component plus every field that differs from its default, so files stay
readable while ``from_dict(to_dict(x)) == x`` holds exactly.  JSON
arrays come back as the tuples the dataclasses expect.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.baselines.registry import validate_baselines
from repro.cache.factory import (
    StrategySpec,
    spec_from_dict,
    spec_from_name,
    spec_to_dict,
)
from repro.core.config import SimulationConfig
from repro.errors import ConfigurationError
from repro.live.specs import (
    FairnessSpec,
    ThrottleSpec,
    coerce_live_spec,
    live_spec_to_dict,
)
from repro.scenario.metrics import validate_metrics
from repro.trace.families import WorkloadModel
from repro.trace.families import spec_from_dict as family_spec_from_dict
from repro.trace.families import spec_to_dict as family_spec_to_dict
from repro.trace.workload import Workload

#: Event-engine paths accepted by :func:`repro.core.runner.run_simulation`.
ENGINES = ("bucket", "heap", "columnar")

#: Config fields serialized even when they equal their defaults -- the
#: identity of a deployment a reader wants to see.  (The workload-side
#: equivalent lives on each family spec as ``serialize_always``.)
_CONFIG_ALWAYS = ("neighborhood_size", "per_peer_storage_gb", "strategy")


def coerce_strategy(value: Union[str, Dict[str, Any], StrategySpec]) -> StrategySpec:
    """Accept a spec, a registry name (``"lfu:72"``), or a spec dict."""
    if isinstance(value, StrategySpec):
        return value
    if isinstance(value, str):
        return spec_from_name(value)
    if isinstance(value, dict):
        return spec_from_dict(value)
    raise ConfigurationError(
        f"a strategy must be a spec, a registered name, or a dict, "
        f"got {value!r}"
    )


def _tuple_fields(cls: type) -> set:
    """Dataclass fields declared as tuples (JSON hands us lists)."""
    return {
        f.name for f in dataclasses.fields(cls)
        if "Tuple" in str(f.type) or "tuple" in str(f.type)
    }


def _component_to_dict(value: Any, always: tuple) -> Dict[str, Any]:
    """Identity fields plus non-default fields, in declaration order."""
    payload: Dict[str, Any] = {}
    for f in dataclasses.fields(value):
        if not f.init:
            continue
        current = getattr(value, f.name)
        if f.name in always:
            payload[f.name] = current
            continue
        if f.default is not dataclasses.MISSING:
            default = f.default
        elif f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
            default = f.default_factory()  # type: ignore[misc]
        else:  # pragma: no cover - all component fields have defaults
            default = dataclasses.MISSING
        if current != default:
            payload[f.name] = current
    return payload


def _component_from_dict(cls: type, payload: Dict[str, Any],
                         what: str) -> Any:
    """Rebuild a component dataclass, coercing JSON types."""
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{what} must be a dict, got {payload!r}")
    valid = {f.name for f in dataclasses.fields(cls) if f.init}
    unknown = sorted(set(payload) - valid)
    if unknown:
        raise ConfigurationError(
            f"{what} has no fields {unknown} (have {sorted(valid)})"
        )
    tuples = _tuple_fields(cls)
    kwargs: Dict[str, Any] = {}
    for key, value in payload.items():
        if key in tuples and isinstance(value, list):
            value = tuple(value)
        kwargs[key] = value
    return cls(**kwargs)


def model_to_dict(model: WorkloadModel) -> Dict[str, Any]:
    """Serialize a workload model (family + identity + non-default fields).

    Delegates to the family registry
    (:func:`repro.trace.families.spec_to_dict`); ``powerinfo`` specs
    keep the pre-registry wire format (no ``family`` key).
    """
    return family_spec_to_dict(model)


def model_from_dict(payload: Dict[str, Any]) -> WorkloadModel:
    """Rebuild a workload model from its :func:`model_to_dict` form.

    A missing ``family`` key means ``powerinfo``; unknown family names
    and unknown fields raise :class:`~repro.errors.ConfigurationError`
    with close-match suggestions.
    """
    return family_spec_from_dict(payload)


def config_to_dict(config: SimulationConfig) -> Dict[str, Any]:
    """Serialize a simulation config; the strategy goes by registry name."""
    payload = _component_to_dict(config, _CONFIG_ALWAYS)
    payload["strategy"] = spec_to_dict(config.strategy)
    return payload


def config_from_dict(payload: Dict[str, Any]) -> SimulationConfig:
    """Rebuild a simulation config from its :func:`config_to_dict` form."""
    if isinstance(payload, dict) and "strategy" in payload:
        payload = dict(payload)
        payload["strategy"] = coerce_strategy(payload["strategy"])
    return _component_from_dict(SimulationConfig, payload, "config")


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulator execution.

    Attributes
    ----------
    trace:
        The workload model the run replays: any registered family spec
        (:mod:`repro.trace.families` -- ``powerinfo``, ``trace-driven``,
        ``cdf``, the stress shapes...).
    config:
        Deployment and policy knobs (neighborhood, storage, strategy).
    engine:
        Event-engine path: ``"bucket"`` (default), ``"heap"``, or
        ``"columnar"`` (vectorized; silently falls back to ``bucket``
        when numpy is unavailable).  All are bit-identical, so the
        choice only affects speed.
    seed:
        Optional workload-seed override; ``None`` uses ``trace.seed``.
        Sweeping this axis re-runs one scenario over fresh workloads.
    label:
        Free-form name used in tables and file listings.
    scale:
        Population scale factor of the workload relative to paper scale;
        measured rates are divided by it when rows are built (the
        Fig 16b linearity the experiment profiles rely on).
    population_x / catalog_x:
        The paper's section V-A trace transforms as integer multipliers
        (population copies with jittered starts, catalog copies with
        randomized redirection), applied on top of the generated base
        trace via :mod:`repro.trace.scaling`.  ``1`` = untransformed.
        Sweep axes can address these directly, which is how the
        scalability grid varies the *workload*, not just the config.
    baselines:
        Names of baseline metrics (:mod:`repro.baselines.registry`,
        e.g. ``"no_cache"``, ``"multicast"``) computed once per distinct
        transformed trace and merged into this scenario's result rows;
        rate columns are extrapolated by ``scale``.
    metrics:
        Names of extra per-run metric sets
        (:mod:`repro.scenario.metrics`, e.g. ``"coax"``) merged into
        this scenario's result rows.
    shards:
        Cut the replay into this many per-neighborhood-group shard
        tasks (:mod:`repro.core.shard`) and reduce the results --
        bit-identical to ``shards=1`` for any count.  Strategies that
        share a cross-neighborhood feed cannot shard.
    streaming:
        Generate the trace lazily and replay it chunk by chunk, so
        peak resident session columns stay O(chunk) per worker; the
        metro-scale switch.  Requires an untransformed workload, no
        baselines, and a strategy without future knowledge.
    live:
        Drain the workload through the live headend mode
        (:mod:`repro.live`): requests flow in arrival order through an
        admission layer in front of the index server.  Requires the
        ``bucket`` engine, runs monolithic (no shards, no streaming).
        With no admission policies configured the run is bit-identical
        to the offline replay.
    throttle:
        Optional :class:`~repro.live.specs.ThrottleSpec` (the
        ``"throttle"`` admission policy) -- accepts a spec, a
        ``name[:args]`` string, or a spec dict.  Requires ``live``.
    fairness:
        Optional :class:`~repro.live.specs.FairnessSpec` (the ``"vtc"``
        admission policy), coerced the same way.  Requires ``live``.
    """

    trace: WorkloadModel
    config: SimulationConfig = field(default_factory=SimulationConfig)
    engine: str = "bucket"
    seed: Optional[int] = None
    label: str = ""
    scale: float = 1.0
    population_x: int = 1
    catalog_x: int = 1
    baselines: Tuple[str, ...] = ()
    metrics: Tuple[str, ...] = ()
    shards: int = 1
    streaming: bool = False
    live: bool = False
    throttle: Optional[ThrottleSpec] = None
    fairness: Optional[FairnessSpec] = None

    def __post_init__(self) -> None:
        if not isinstance(self.trace, WorkloadModel):
            raise ConfigurationError(
                f"trace must be a registered workload-family spec "
                f"(e.g. PowerInfoModel), got {type(self.trace).__name__}"
            )
        if not isinstance(self.config, SimulationConfig):
            raise ConfigurationError(
                f"config must be a SimulationConfig, got {type(self.config).__name__}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; choose from {list(ENGINES)}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")
        if self.seed is not None:
            # Families without a seed (trace-driven logs) refuse the
            # override; surface that at construction, not replay, time.
            self.trace.with_seed(self.seed)
        if not self.scale > 0:
            raise ConfigurationError(f"scale must be positive, got {self.scale}")
        for name in ("population_x", "catalog_x"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{name} must be an integer >= 1, got {value!r}"
                )
        if (self.population_x != 1 or self.catalog_x != 1) \
                and not self.trace.supports_transforms:
            raise ConfigurationError(
                f"workload family {self.trace.family_name!r} does not "
                f"support the section V-A population/catalog transforms"
            )
        # Normalize JSON lists to tuples so equality and hashing behave.
        object.__setattr__(self, "baselines", tuple(self.baselines))
        object.__setattr__(self, "metrics", tuple(self.metrics))
        validate_baselines(self.baselines)
        validate_metrics(self.metrics)
        if isinstance(self.shards, bool) or not isinstance(self.shards, int) \
                or self.shards < 1:
            raise ConfigurationError(
                f"shards must be an integer >= 1, got {self.shards!r}"
            )
        if not isinstance(self.streaming, bool):
            raise ConfigurationError(
                f"streaming must be a bool, got {self.streaming!r}"
            )
        if self.shards > 1 and self.config.strategy.uses_global_feed:
            raise ConfigurationError(
                f"strategy {self.config.strategy.label!r} shares a "
                f"cross-neighborhood popularity feed and cannot run sharded"
            )
        if self.shards > 1 and self.baselines:
            raise ConfigurationError(
                "baseline metrics are whole-trace analytics and cannot "
                "ride on a sharded scenario"
            )
        if self.shards > 1 and self.trace.declared_n_users() is None:
            raise ConfigurationError(
                f"workload family {self.trace.family_name!r} does not "
                f"declare its user count up front, so the replay cannot "
                f"be shard-planned; declare n_users on the trace model"
            )
        if not isinstance(self.live, bool):
            raise ConfigurationError(
                f"live must be a bool, got {self.live!r}"
            )
        object.__setattr__(
            self, "throttle", coerce_live_spec(self.throttle, ThrottleSpec))
        object.__setattr__(
            self, "fairness", coerce_live_spec(self.fairness, FairnessSpec))
        if self.live:
            if self.engine != "bucket":
                raise ConfigurationError(
                    f"live mode drains on the bucket engine only "
                    f"(got engine={self.engine!r})"
                )
            if self.shards > 1:
                raise ConfigurationError(
                    "live mode is a single arrival-order drain and "
                    "cannot run sharded"
                )
            if self.streaming:
                raise ConfigurationError(
                    "live mode feeds the drain itself; streaming replay "
                    "does not compose with it"
                )
        elif self.throttle is not None or self.fairness is not None:
            raise ConfigurationError(
                "throttle / fairness are live admission policies; set "
                "live=true to use them"
            )
        if self.streaming:
            if not self.trace.supports_streaming:
                raise ConfigurationError(
                    f"workload family {self.trace.family_name!r} cannot "
                    f"generate its trace lazily; streaming replay needs a "
                    f"streamable family (e.g. powerinfo)"
                )
            if self.config.strategy.requires_future_knowledge:
                raise ConfigurationError(
                    f"strategy {self.config.strategy.label!r} requires "
                    f"future knowledge of the whole trace and cannot run "
                    f"streamed"
                )
            if self.population_x != 1 or self.catalog_x != 1:
                raise ConfigurationError(
                    "streaming replay supports untransformed workloads "
                    "only (population_x == catalog_x == 1)"
                )
            if self.baselines:
                raise ConfigurationError(
                    "baseline metrics need the materialized trace and "
                    "cannot ride on a streaming scenario"
                )

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------

    def model(self) -> WorkloadModel:
        """The effective workload model (seed override applied)."""
        if self.seed is None:
            return self.trace
        return self.trace.with_seed(self.seed)

    def workload(self) -> Workload:
        """The effective workload: model plus the section V-A transforms."""
        return Workload(model=self.model(), population_x=self.population_x,
                        catalog_x=self.catalog_x)

    def extrapolate(self, measured: float) -> float:
        """Full-scale equivalent of a measured, population-linear rate."""
        return measured / self.scale

    def with_label(self, label: str) -> "Scenario":
        """Copy of this scenario under a different name."""
        return replace(self, label=label)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; the exact inverse of :meth:`from_dict`.

        Transform factors, baselines, and metric sets are emitted only
        when set, so files that predate them (and files that do not use
        them) stay byte-stable.
        """
        payload: Dict[str, Any] = {
            "kind": "scenario",
            "label": self.label,
            "engine": self.engine,
            "seed": self.seed,
            "scale": self.scale,
        }
        if self.population_x != 1:
            payload["population_x"] = self.population_x
        if self.catalog_x != 1:
            payload["catalog_x"] = self.catalog_x
        if self.baselines:
            payload["baselines"] = list(self.baselines)
        if self.metrics:
            payload["metrics"] = list(self.metrics)
        if self.shards != 1:
            payload["shards"] = self.shards
        if self.streaming:
            payload["streaming"] = self.streaming
        if self.live:
            payload["live"] = self.live
        if self.throttle is not None:
            payload["throttle"] = live_spec_to_dict(self.throttle)
        if self.fairness is not None:
            payload["fairness"] = live_spec_to_dict(self.fairness)
        payload["trace"] = model_to_dict(self.trace)
        payload["config"] = config_to_dict(self.config)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` form."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"a scenario must be a dict, got {payload!r}"
            )
        data = dict(payload)
        kind = data.pop("kind", "scenario")
        if kind != "scenario":
            raise ConfigurationError(
                f"expected kind 'scenario', got {kind!r}"
            )
        if "trace" not in data:
            raise ConfigurationError("a scenario needs a 'trace' model")
        trace = model_from_dict(data.pop("trace"))
        config = (config_from_dict(data.pop("config"))
                  if "config" in data else SimulationConfig())
        known = {"engine", "seed", "label", "scale", "population_x",
                 "catalog_x", "baselines", "metrics", "shards", "streaming",
                 "live", "throttle", "fairness"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"scenario has no fields {unknown} "
                f"(have {sorted(known | {'trace', 'config', 'kind'})})"
            )
        return cls(trace=trace, config=config, **data)

    def to_json(self, indent: int = 2) -> str:
        """JSON form (arrays for tuples; :meth:`from_json` restores them)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Rebuild a scenario from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> None:
        """Write the scenario as a JSON file."""
        Path(path).write_text(self.to_json() + "\n")


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Read a :class:`Scenario` from a JSON file."""
    try:
        text = Path(path).read_text()
    except OSError as error:
        raise ConfigurationError(f"cannot read scenario file: {error}") from None
    try:
        return Scenario.from_json(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path}: not valid JSON ({error})") from None
