"""Hybrid Fiber-Coax topology objects.

A :class:`CablePlant` is the whole deployment: one logical cable operator
(the central media-server site), a set of :class:`Headend` instances, and
one coaxial :class:`Neighborhood` per headend.  The paper pairs each
headend with exactly one neighborhood (the index server lives at the
headend and manages that neighborhood's cooperative cache), so we keep
that 1:1 structure.

Capacity constants live in :mod:`repro.units`; the topology exposes them
per neighborhood so feasibility checks (paper section VI-B) can be made
against the object being measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro import units
from repro.errors import TopologyError


@dataclass(frozen=True)
class Neighborhood:
    """A coaxial broadcast domain: the subscribers behind one headend.

    Attributes
    ----------
    neighborhood_id:
        Dense index of this neighborhood within the plant.
    user_ids:
        Trace user ids homed on this coax segment.  Every user owns one
        set-top box, so this is also the peer population.
    coax_downstream_bps / coax_vod_bps / coax_upstream_bps:
        Physical capacity facts for feasibility checks.
    """

    neighborhood_id: int
    user_ids: Tuple[int, ...]
    coax_downstream_bps: float = units.COAX_DOWNSTREAM_CAPACITY_BPS
    coax_vod_bps: float = units.COAX_VOD_CAPACITY_BPS
    coax_upstream_bps: float = units.COAX_UPSTREAM_CAPACITY_BPS

    def __post_init__(self) -> None:
        if self.neighborhood_id < 0:
            raise TopologyError(
                f"neighborhood_id must be non-negative, got {self.neighborhood_id}"
            )
        if not self.user_ids:
            raise TopologyError(
                f"neighborhood {self.neighborhood_id} has no subscribers"
            )

    @property
    def size(self) -> int:
        """Number of subscribers (== set-top boxes) on this coax segment."""
        return len(self.user_ids)


@dataclass(frozen=True)
class Headend:
    """An intermediate distribution point serving one neighborhood.

    The index server that orchestrates the neighborhood cache runs here
    (paper section IV-B: "The peers in each neighborhood are organized
    into a cooperative cache by an index server placed at each headend").
    """

    headend_id: int
    neighborhood: Neighborhood

    def __post_init__(self) -> None:
        if self.headend_id != self.neighborhood.neighborhood_id:
            raise TopologyError(
                f"headend {self.headend_id} paired with neighborhood "
                f"{self.neighborhood.neighborhood_id}; the plant keeps these 1:1"
            )


class CablePlant:
    """The full HFC deployment: operator, headends, neighborhoods.

    Provides user -> neighborhood resolution for the simulator and
    aggregate facts for reporting.
    """

    def __init__(self, neighborhoods: Sequence[Neighborhood]) -> None:
        if not neighborhoods:
            raise TopologyError("a cable plant needs at least one neighborhood")
        self._neighborhoods: List[Neighborhood] = list(neighborhoods)
        self._headends: List[Headend] = []
        self._user_to_neighborhood: Dict[int, int] = {}
        for index, neighborhood in enumerate(self._neighborhoods):
            if neighborhood.neighborhood_id != index:
                raise TopologyError(
                    f"neighborhood ids must be dense: position {index} holds "
                    f"id {neighborhood.neighborhood_id}"
                )
            self._headends.append(Headend(index, neighborhood))
            for user_id in neighborhood.user_ids:
                if user_id in self._user_to_neighborhood:
                    raise TopologyError(
                        f"user {user_id} appears in neighborhoods "
                        f"{self._user_to_neighborhood[user_id]} and {index}"
                    )
                self._user_to_neighborhood[user_id] = index

    def __len__(self) -> int:
        return len(self._neighborhoods)

    def __iter__(self) -> Iterator[Neighborhood]:
        return iter(self._neighborhoods)

    @property
    def neighborhoods(self) -> Tuple[Neighborhood, ...]:
        """All neighborhoods in id order."""
        return tuple(self._neighborhoods)

    @property
    def headends(self) -> Tuple[Headend, ...]:
        """All headends in id order."""
        return tuple(self._headends)

    @property
    def n_users(self) -> int:
        """Total subscriber count across the plant."""
        return len(self._user_to_neighborhood)

    def neighborhood_of(self, user_id: int) -> Neighborhood:
        """The neighborhood homing ``user_id``.

        Raises
        ------
        TopologyError
            If the user is not placed anywhere in the plant.
        """
        index = self._user_to_neighborhood.get(user_id)
        if index is None:
            raise TopologyError(f"user {user_id} is not homed in this plant")
        return self._neighborhoods[index]

    def mean_neighborhood_size(self) -> float:
        """Average subscribers per neighborhood."""
        return self.n_users / len(self._neighborhoods)
