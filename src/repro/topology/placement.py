"""Deterministic placement of trace users into coaxial neighborhoods.

Paper section V-B: "the simulator associates users in the trace with
subscribers in a neighborhood.  The simulator places subscribers in
neighborhoods uniformly at random.  Neighborhood size is specified as a
parameter ... Peer placement is the same for each execution of the
simulation with the same neighborhood size parameter.  This is done so
differences in the results of simulator executions are caused exclusively
by algorithm performance and not user placement."

We reproduce that contract exactly: the shuffle is keyed *only* by the
placement seed and the neighborhood-size parameter, never by the
experiment's own seed, so two runs that differ in caching strategy see an
identical mapping.
"""

from __future__ import annotations

from typing import List

from repro.errors import TopologyError
from repro.sim.random_streams import RandomStreams
from repro.topology.hfc import CablePlant, Neighborhood

#: Root seed of the placement shuffle.  Fixed by design (see module
#: docstring); change it only to study placement sensitivity.
PLACEMENT_SEED = 60311


def place_users(
    n_users: int,
    neighborhood_size: int,
    placement_seed: int = PLACEMENT_SEED,
) -> CablePlant:
    """Partition ``n_users`` into uniform-random neighborhoods.

    Users are shuffled deterministically (keyed by ``placement_seed`` and
    ``neighborhood_size``) and cut into consecutive groups of
    ``neighborhood_size``; the final group holds the remainder.  A
    uniform shuffle followed by equal cuts is exactly a uniform random
    assignment subject to the size constraint.

    Parameters
    ----------
    n_users:
        Total subscriber population (trace user ids ``0..n_users-1``).
    neighborhood_size:
        Target subscribers per coax segment.  The paper explores 100 to
        1,000 (section V-B: "typical real world sizes").
    placement_seed:
        Root seed of the shuffle; defaults to the fixed library seed.

    Returns
    -------
    CablePlant
        Plant with ``ceil(n_users / neighborhood_size)`` neighborhoods.
    """
    if n_users <= 0:
        raise TopologyError(f"n_users must be positive, got {n_users}")
    if neighborhood_size <= 0:
        raise TopologyError(
            f"neighborhood_size must be positive, got {neighborhood_size}"
        )
    rng = RandomStreams(placement_seed).get(f"placement-size-{neighborhood_size}")
    users = list(range(n_users))
    rng.shuffle(users)

    neighborhoods: List[Neighborhood] = []
    for start in range(0, n_users, neighborhood_size):
        members = users[start : start + neighborhood_size]
        neighborhoods.append(
            Neighborhood(
                neighborhood_id=len(neighborhoods),
                user_ids=tuple(members),
            )
        )
    return CablePlant(neighborhoods)
