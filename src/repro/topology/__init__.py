"""HFC cable plant topology model.

The paper's section II describes a three-level hierarchy -- cable
operator, headends, coaxial neighborhoods of subscribers -- connected by
a switched fiber network (operator <-> headends) and legacy broadcast
coax (headend <-> subscribers).  This package models that hierarchy:

* :mod:`repro.topology.hfc` -- the topology objects and capacity facts;
* :mod:`repro.topology.placement` -- the deterministic uniform-random
  assignment of trace users to neighborhoods required by section V-B;
* :mod:`repro.topology.sharding` -- the contiguous neighborhood-group
  partition behind sharded metro replay.
"""

from repro.topology.hfc import CablePlant, Headend, Neighborhood
from repro.topology.placement import place_users
from repro.topology.sharding import n_neighborhoods_for, partition_neighborhoods

__all__ = [
    "CablePlant",
    "Headend",
    "Neighborhood",
    "n_neighborhoods_for",
    "partition_neighborhoods",
    "place_users",
]
