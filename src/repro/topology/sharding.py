"""Partitioning a metro plant into per-shard neighborhood groups.

Neighborhood caches are independent by construction -- an index server
only ever talks to its own coax segment, and user placement
(:mod:`repro.topology.placement`) is keyed by ``(n_users,
neighborhood_size, placement_seed)`` alone -- so a metro-scale replay
can be cut along neighborhood boundaries and the per-shard results
reduced exactly (:meth:`repro.core.results.SimulationResult.merged`).
This module owns the cut itself: a deterministic partition of the dense
neighborhood id range into contiguous, balanced groups.

Contiguity is deliberate: group ``k`` is a range, every worker computes
the same partition from three integers, and the ascending-global-id
meter fold that bit-identity rests on falls out of simple
concatenation.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.errors import TopologyError


def n_neighborhoods_for(n_users: int, neighborhood_size: int) -> int:
    """How many neighborhoods ``place_users`` will cut this plant into.

    The count is derivable without building the plant -- the shuffle
    only permutes users, the cut sizes are fixed -- which is what lets
    shard planning happen before any trace or topology exists.
    """
    if n_users <= 0:
        raise TopologyError(f"n_users must be positive, got {n_users}")
    if neighborhood_size <= 0:
        raise TopologyError(
            f"neighborhood_size must be positive, got {neighborhood_size}"
        )
    return math.ceil(n_users / neighborhood_size)


def partition_neighborhoods(n_neighborhoods: int,
                            n_shards: int) -> List[Tuple[int, ...]]:
    """Cut ``0..n_neighborhoods-1`` into ``n_shards`` contiguous groups.

    The first ``n_neighborhoods % n_shards`` groups hold one extra id,
    so group sizes differ by at most one.  Concatenating the groups in
    order reproduces the full ascending id range -- the property the
    shard reduction's meter fold depends on.

    Raises
    ------
    TopologyError
        If either count is non-positive, or there are more shards than
        neighborhoods (an empty shard would simulate nothing and break
        the disjoint-union reduction).
    """
    if n_neighborhoods <= 0:
        raise TopologyError(
            f"n_neighborhoods must be positive, got {n_neighborhoods}"
        )
    if n_shards <= 0:
        raise TopologyError(f"n_shards must be positive, got {n_shards}")
    if n_shards > n_neighborhoods:
        raise TopologyError(
            f"cannot cut {n_neighborhoods} neighborhoods into {n_shards} "
            f"shards; every shard needs at least one neighborhood"
        )
    base, extra = divmod(n_neighborhoods, n_shards)
    groups: List[Tuple[int, ...]] = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        groups.append(tuple(range(start, start + size)))
        start += size
    return groups
