"""Vectorized (numpy) backend of the synthetic trace generator.

:func:`repro.trace.synthetic.generate_trace` dispatches here when the
resolved backend is ``"numpy"`` (``REPRO_TRACE_BACKEND`` / the CLI's
``--trace-backend`` flag).  The catalog, the Little's-law calibration,
and the per-user activity cumulative arrive precomputed from the shared
pure-python prologue, so both backends agree on them bit-for-bit; this
module replaces only the per-session sampling loop with whole-trace
batch draws:

* one vectorized Poisson call for every hourly arrival count;
* one uniform batch for all intra-hour start offsets;
* user picks as a single ``searchsorted`` over the activity cumulative;
* program picks per simulated hour (the hourly popularity refresh of
  ``_HourlyProgramSampler`` is kept -- decay moves on day scales, so the
  cumulative is rebuilt once per hour and each hour's picks are one
  ``searchsorted`` batch);
* session lengths as a full-view mask plus truncated-lognormal
  inverse-CDF batches grouped by distinct program length, using a
  vectorized port of the same Acklam inverse-normal approximation the
  scalar path uses.

Determinism: every batch draws from its own ``numpy`` PCG64 generator
seeded by :func:`repro.sim.random_streams.derive_seed` of the model seed
and a ``"numpy-..."``-prefixed stream name, so the backend is
bit-reproducible for a given model (and deliberately *not* stream-
compatible with the python backend -- equivalence is distribution-level,
pinned by ``tests/trace/test_backends.py``).

Records land in a :class:`~repro.trace.records.Trace` through the
columnar ``Trace.from_columns`` path after an explicit lexsort on
``(start_time, user_id, program_id)``, skipping the list constructor's
re-sort and per-record catalog scan.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.sim.random_streams import derive_seed
from repro.trace import distributions as dist
from repro.trace.records import Catalog, Trace
from repro.trace.synthetic import PowerInfoModel, _decay_factor  # noqa: F401

#: Clamp applied to inverse-CDF arguments, mirroring the scalar
#: TruncatedLogNormal.sample guard against float-boundary u values.
_PPF_EPS = 1e-12


def _rng(seed: int, name: str) -> np.random.Generator:
    """A named, independently seeded generator (numpy-side streams)."""
    return np.random.Generator(np.random.PCG64(derive_seed(seed, f"numpy-{name}")))


def _normal_ppf(p: np.ndarray) -> np.ndarray:
    """Vectorized Acklam inverse normal CDF (mirrors dist.normal_ppf).

    ``p`` must already be clamped inside the open interval; the three
    rational-approximation regions are evaluated per element.
    """
    a, b = dist._A, dist._B
    c, d = dist._C, dist._D
    out = np.empty_like(p)

    low = p < dist._P_LOW
    high = p > dist._P_HIGH
    mid = ~(low | high)

    if low.any():
        q = np.sqrt(-2.0 * np.log(p[low]))
        out[low] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if high.any():
        q = np.sqrt(-2.0 * np.log(1.0 - p[high]))
        out[high] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if mid.any():
        q = p[mid] - 0.5
        r = q * q
        out[mid] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    return out


def _program_picks(
    model: PowerInfoModel,
    catalog: Catalog,
    release_flags: Sequence[bool],
    counts: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Program ids for every session, grouped by simulated hour.

    The instantaneous weight of a program at an hour's midpoint is
    ``zipf * decay(age)`` for releases and ``zipf`` for back-catalog,
    exactly as ``_HourlyProgramSampler._refresh`` computes it (including
    the all-weights-vanished fallback to the static Zipf mix).
    """
    n = len(catalog)
    zipf = np.asarray(
        dist.zipf_weights(n, model.zipf_exponent,
                          shift=model.zipf_shift_fraction * n)
    )
    introduced = np.fromiter((p.introduced_at for p in catalog), dtype=np.float64,
                             count=n)
    release = np.asarray(release_flags, dtype=bool)
    tau = model.decay_tau_days * units.SECONDS_PER_DAY
    floor = model.decay_floor

    offsets = np.concatenate(([0], np.cumsum(counts)))
    programs = np.empty(int(counts.sum()), dtype=np.int64)
    active_hours = np.nonzero(counts)[0]
    # Hour-chunked 2D refresh: one (chunk x catalog) decay/cumsum pass
    # replaces per-hour small-array calls, while the chunk bound keeps
    # the intermediate matrices a few MB even at paper scale.
    chunk_hours = max(1, min(len(active_hours), 2_000_000 // max(n, 1)))
    for start in range(0, len(active_hours), chunk_hours):
        hours = active_hours[start:start + chunk_hours]
        midpoints = (hours + 0.5) * units.SECONDS_PER_HOUR
        age = midpoints[:, None] - introduced[None, :]
        decay = floor + (1.0 - floor) * np.exp(-np.maximum(age, 0.0) / tau)
        decay[age < 0.0] = 0.0
        weights = np.where(release[None, :], decay * zipf[None, :],
                           zipf[None, :])
        cum = np.cumsum(weights, axis=1)
        totals = cum[:, -1]
        # Pathological window (every program introduced later): the
        # scalar sampler falls back to the static Zipf mix too.
        dead = totals <= 0.0
        if dead.any():
            cum[dead] = np.cumsum(zipf)
            totals = cum[:, -1]
        cum /= totals[:, None]
        cum[:, -1] = 1.0
        for row, hour in enumerate(hours):
            lo, hi = offsets[hour], offsets[hour + 1]
            programs[lo:hi] = np.searchsorted(cum[row], rng.random(hi - lo),
                                              side="left")
    return programs


def _session_durations(
    model: PowerInfoModel,
    program_lengths: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Watched durations: full-view atom + truncated lognormal body.

    Body draws are inverse-CDF batches grouped by distinct program
    length (the catalog has a handful), each restricted to the same
    ``[min(min_session, L/2), L]`` band as the scalar sampler.
    """
    total = program_lengths.size
    mu, sigma = model.short_session_mu, model.short_session_sigma
    full_mask = rng.random(total) < model.full_view_probability
    durations = np.where(full_mask, program_lengths, 0.0)

    body_idx = np.nonzero(~full_mask)[0]
    body_u = rng.random(body_idx.size)
    body_len = program_lengths[body_idx]
    for length in np.unique(body_len):
        lower = min(model.min_session_seconds, length / 2.0)
        cdf_lo = dist.normal_cdf((math.log(lower) - mu) / sigma)
        cdf_hi = dist.normal_cdf((math.log(length) - mu) / sigma)
        if cdf_hi - cdf_lo <= 1e-12:
            # Mirror TruncatedLogNormal's zero-mass guard: the scalar
            # backend refuses this window, so silently pinning every
            # draw to the boundary here would break backend parity.
            raise ConfigurationError(
                f"truncation window [{lower}, {length}] carries no "
                f"probability mass for LogNormal(mu={mu}, sigma={sigma})"
            )
        group = body_len == length
        u = cdf_lo + body_u[group] * (cdf_hi - cdf_lo)
        u = np.clip(u, _PPF_EPS, 1.0 - _PPF_EPS)
        values = np.exp(mu + sigma * _normal_ppf(u))
        durations[body_idx[group]] = np.clip(values, lower, length)
    return durations


def generate_records_numpy(
    model: PowerInfoModel,
    catalog: Catalog,
    release_flags: Sequence[bool],
    daily_sessions: float,
    shares: List[float],
    user_cum: Sequence[float],
) -> Trace:
    """Sample every session of ``model`` in whole-trace batches.

    Called by :func:`repro.trace.synthetic.generate_trace` with the
    shared prologue's outputs (catalog, calibrated daily session rate,
    normalized diurnal shares, user-activity cumulative).
    """
    seed = model.seed
    total_hours = int(math.ceil(model.days * units.HOURS_PER_DAY))
    window_end = model.duration_seconds

    lam = daily_sessions * np.asarray(shares)[
        np.arange(total_hours) % units.HOURS_PER_DAY
    ]
    counts = _rng(seed, "hourly-counts").poisson(lam)
    total = int(counts.sum())
    if total == 0:
        return Trace([], catalog, n_users=model.n_users)

    hour_of = np.repeat(np.arange(total_hours), counts)
    starts = (
        hour_of * float(units.SECONDS_PER_HOUR)
        + _rng(seed, "event-times").random(total) * units.SECONDS_PER_HOUR
    )
    keep = starts < window_end
    if not keep.all():
        # Only the trailing partial hour can overshoot; like the scalar
        # path, the dropped arrivals consume no further draws.
        starts = starts[keep]
        hour_of = hour_of[keep]
        counts = np.bincount(hour_of, minlength=total_hours)
        total = starts.size
        if total == 0:
            return Trace([], catalog, n_users=model.n_users)

    # Sort the starts *before* drawing the remaining columns: a start's
    # value pins its hour, so sorting never crosses the per-hour count
    # boundaries the program sampler groups by, and assigning iid
    # user/program/duration draws to time-ordered arrivals is the same
    # distribution as assigning them to draw-ordered arrivals.  The
    # trace then comes out chronological with no global lexsort and no
    # four-column gather at the end.
    starts.sort()

    users = np.searchsorted(
        np.asarray(user_cum), _rng(seed, "event-users").random(total), side="left"
    )
    programs = _program_picks(model, catalog, release_flags, counts,
                              _rng(seed, "event-programs"))
    lengths = np.fromiter((p.length_seconds for p in catalog), dtype=np.float64,
                          count=len(catalog))
    durations = _session_durations(model, lengths[programs],
                                   _rng(seed, "event-lengths"))

    if total > 1 and bool((starts[1:] == starts[:-1]).any()):
        # Two identical float starts (vanishingly rare with continuous
        # draws, but possible): fall back to the full-key sort so the
        # (start, user, program) contract holds exactly, not just the
        # start ordering.
        order = np.lexsort((programs, users, starts))
        starts, users = starts[order], users[order]
        programs, durations = programs[order], durations[order]

    return Trace.from_columns(
        starts.tolist(),
        users.tolist(),
        programs.tolist(),
        durations.tolist(),
        catalog,
        model.n_users,
    )
