"""Vectorized (numpy) backend of the synthetic trace generator.

:func:`repro.trace.synthetic.generate_trace` dispatches here when the
resolved backend is ``"numpy"`` (``REPRO_TRACE_BACKEND`` / the CLI's
``--trace-backend`` flag).  The catalog, the Little's-law calibration,
and the per-user activity cumulative arrive precomputed from the shared
pure-python prologue, so both backends agree on them bit-for-bit; this
module replaces only the per-session sampling loop with whole-trace
batch draws:

* one vectorized Poisson call for every hourly arrival count;
* one uniform batch for all intra-hour start offsets;
* user picks as a single ``searchsorted`` over the activity cumulative;
* program picks per simulated hour (the hourly popularity refresh of
  ``_HourlyProgramSampler`` is kept -- decay moves on day scales, so the
  cumulative is rebuilt once per hour and each hour's picks are one
  ``searchsorted`` batch);
* session lengths as a full-view mask plus truncated-lognormal
  inverse-CDF batches grouped by distinct program length, using a
  vectorized port of the same Acklam inverse-normal approximation the
  scalar path uses.

Determinism: every batch draws from its own ``numpy`` PCG64 generator
seeded by :func:`repro.sim.random_streams.derive_seed` of the model seed
and a ``"numpy-..."``-prefixed stream name, so the backend is
bit-reproducible for a given model (and deliberately *not* stream-
compatible with the python backend -- equivalence is distribution-level,
pinned by ``tests/trace/test_backends.py``).

Records land in a :class:`~repro.trace.records.Trace` through the
columnar ``Trace.from_columns`` path after an explicit lexsort on
``(start_time, user_id, program_id)``, skipping the list constructor's
re-sort and per-record catalog scan.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.sim.random_streams import derive_seed
from repro.trace import distributions as dist
from repro.trace.records import Catalog, Trace
from repro.trace.synthetic import PowerInfoModel, _decay_factor  # noqa: F401

#: Clamp applied to inverse-CDF arguments, mirroring the scalar
#: TruncatedLogNormal.sample guard against float-boundary u values.
_PPF_EPS = 1e-12


def _rng(seed: int, name: str) -> np.random.Generator:
    """A named, independently seeded generator (numpy-side streams)."""
    return np.random.Generator(np.random.PCG64(derive_seed(seed, f"numpy-{name}")))


def _normal_ppf(p: np.ndarray) -> np.ndarray:
    """Vectorized Acklam inverse normal CDF (mirrors dist.normal_ppf).

    ``p`` must already be clamped inside the open interval; the three
    rational-approximation regions are evaluated per element.
    """
    a, b = dist._A, dist._B
    c, d = dist._C, dist._D
    out = np.empty_like(p)

    low = p < dist._P_LOW
    high = p > dist._P_HIGH
    mid = ~(low | high)

    if low.any():
        q = np.sqrt(-2.0 * np.log(p[low]))
        out[low] = (
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if high.any():
        q = np.sqrt(-2.0 * np.log(1.0 - p[high]))
        out[high] = -(
            ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        ) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if mid.any():
        q = p[mid] - 0.5
        r = q * q
        out[mid] = (
            ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        ) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    return out


def _program_picks(
    model: PowerInfoModel,
    catalog: Catalog,
    release_flags: Sequence[bool],
    counts: np.ndarray,
    rng: np.random.Generator,
    hour_offset: int = 0,
) -> np.ndarray:
    """Program ids for every session, grouped by simulated hour.

    The instantaneous weight of a program at an hour's midpoint is
    ``zipf * decay(age)`` for releases and ``zipf`` for back-catalog,
    exactly as ``_HourlyProgramSampler._refresh`` computes it (including
    the all-weights-vanished fallback to the static Zipf mix).

    ``hour_offset`` shifts ``counts[0]`` to an absolute simulated hour so
    the streaming generator can hand in one chunk of counts at a time and
    still evaluate decay at the same absolute midpoints as a whole-trace
    call.
    """
    n = len(catalog)
    zipf = np.asarray(
        dist.zipf_weights(n, model.zipf_exponent,
                          shift=model.zipf_shift_fraction * n)
    )
    introduced = np.fromiter((p.introduced_at for p in catalog), dtype=np.float64,
                             count=n)
    release = np.asarray(release_flags, dtype=bool)
    tau = model.decay_tau_days * units.SECONDS_PER_DAY
    floor = model.decay_floor

    offsets = np.concatenate(([0], np.cumsum(counts)))
    programs = np.empty(int(counts.sum()), dtype=np.int64)
    active_hours = np.nonzero(counts)[0]
    # Hour-chunked 2D refresh: one (chunk x catalog) decay/cumsum pass
    # replaces per-hour small-array calls, while the chunk bound keeps
    # the intermediate matrices a few MB even at paper scale.
    chunk_hours = max(1, min(len(active_hours), 2_000_000 // max(n, 1)))
    for start in range(0, len(active_hours), chunk_hours):
        hours = active_hours[start:start + chunk_hours]
        midpoints = (hours + hour_offset + 0.5) * units.SECONDS_PER_HOUR
        age = midpoints[:, None] - introduced[None, :]
        decay = floor + (1.0 - floor) * np.exp(-np.maximum(age, 0.0) / tau)
        decay[age < 0.0] = 0.0
        weights = np.where(release[None, :], decay * zipf[None, :],
                           zipf[None, :])
        cum = np.cumsum(weights, axis=1)
        totals = cum[:, -1]
        # Pathological window (every program introduced later): the
        # scalar sampler falls back to the static Zipf mix too.
        dead = totals <= 0.0
        if dead.any():
            cum[dead] = np.cumsum(zipf)
            totals = cum[:, -1]
        cum /= totals[:, None]
        cum[:, -1] = 1.0
        for row, hour in enumerate(hours):
            lo, hi = offsets[hour], offsets[hour + 1]
            programs[lo:hi] = np.searchsorted(cum[row], rng.random(hi - lo),
                                              side="left")
    return programs


def _session_durations(
    model: PowerInfoModel,
    program_lengths: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Watched durations: full-view atom + truncated lognormal body.

    Body draws are inverse-CDF batches grouped by distinct program
    length (the catalog has a handful), each restricted to the same
    ``[min(min_session, L/2), L]`` band as the scalar sampler.
    """
    total = program_lengths.size
    full_mask = rng.random(total) < model.full_view_probability
    body_u = rng.random(int((~full_mask).sum()))
    return _session_durations_from(model, program_lengths, full_mask, body_u)


def _session_durations_from(
    model: PowerInfoModel,
    program_lengths: np.ndarray,
    full_mask: np.ndarray,
    body_u: np.ndarray,
) -> np.ndarray:
    """Durations from pre-drawn uniforms (elementwise, so chunk-safe).

    Split out of :func:`_session_durations` because the streaming
    generator draws the full-view mask and the body uniforms from two
    generator clones (batch order draws *all* masks before *any* body
    uniform, which a single sequentially-consumed stream cannot
    reproduce chunk by chunk).
    """
    mu, sigma = model.short_session_mu, model.short_session_sigma
    durations = np.where(full_mask, program_lengths, 0.0)

    body_idx = np.nonzero(~full_mask)[0]
    body_len = program_lengths[body_idx]
    for length in np.unique(body_len):
        lower = min(model.min_session_seconds, length / 2.0)
        cdf_lo = dist.normal_cdf((math.log(lower) - mu) / sigma)
        cdf_hi = dist.normal_cdf((math.log(length) - mu) / sigma)
        if cdf_hi - cdf_lo <= 1e-12:
            # Mirror TruncatedLogNormal's zero-mass guard: the scalar
            # backend refuses this window, so silently pinning every
            # draw to the boundary here would break backend parity.
            raise ConfigurationError(
                f"truncation window [{lower}, {length}] carries no "
                f"probability mass for LogNormal(mu={mu}, sigma={sigma})"
            )
        group = body_len == length
        u = cdf_lo + body_u[group] * (cdf_hi - cdf_lo)
        u = np.clip(u, _PPF_EPS, 1.0 - _PPF_EPS)
        values = np.exp(mu + sigma * _normal_ppf(u))
        durations[body_idx[group]] = np.clip(values, lower, length)
    return durations


def generate_records_numpy(
    model: PowerInfoModel,
    catalog: Catalog,
    release_flags: Sequence[bool],
    daily_sessions: float,
    shares: List[float],
    user_cum: Sequence[float],
) -> Trace:
    """Sample every session of ``model`` in whole-trace batches.

    Called by :func:`repro.trace.synthetic.generate_trace` with the
    shared prologue's outputs (catalog, calibrated daily session rate,
    normalized diurnal shares, user-activity cumulative).
    """
    seed = model.seed
    total_hours = int(math.ceil(model.days * units.HOURS_PER_DAY))
    window_end = model.duration_seconds

    lam = daily_sessions * np.asarray(shares)[
        np.arange(total_hours) % units.HOURS_PER_DAY
    ]
    counts = _rng(seed, "hourly-counts").poisson(lam)
    total = int(counts.sum())
    if total == 0:
        return Trace([], catalog, n_users=model.n_users)

    hour_of = np.repeat(np.arange(total_hours), counts)
    starts = (
        hour_of * float(units.SECONDS_PER_HOUR)
        + _rng(seed, "event-times").random(total) * units.SECONDS_PER_HOUR
    )
    keep = starts < window_end
    if not keep.all():
        # Only the trailing partial hour can overshoot; like the scalar
        # path, the dropped arrivals consume no further draws.
        starts = starts[keep]
        hour_of = hour_of[keep]
        counts = np.bincount(hour_of, minlength=total_hours)
        total = starts.size
        if total == 0:
            return Trace([], catalog, n_users=model.n_users)

    # Sort the starts *before* drawing the remaining columns: a start's
    # value pins its hour, so sorting never crosses the per-hour count
    # boundaries the program sampler groups by, and assigning iid
    # user/program/duration draws to time-ordered arrivals is the same
    # distribution as assigning them to draw-ordered arrivals.  The
    # trace then comes out chronological with no global lexsort and no
    # four-column gather at the end.
    starts.sort()

    users = np.searchsorted(
        np.asarray(user_cum), _rng(seed, "event-users").random(total), side="left"
    )
    programs = _program_picks(model, catalog, release_flags, counts,
                              _rng(seed, "event-programs"))
    lengths = np.fromiter((p.length_seconds for p in catalog), dtype=np.float64,
                          count=len(catalog))
    durations = _session_durations(model, lengths[programs],
                                   _rng(seed, "event-lengths"))

    if total > 1 and bool((starts[1:] == starts[:-1]).any()):
        # Two identical float starts (vanishingly rare with continuous
        # draws, but possible): fall back to the full-key sort so the
        # (start, user, program) contract holds exactly, not just the
        # start ordering.
        order = np.lexsort((programs, users, starts))
        starts, users = starts[order], users[order]
        programs, durations = programs[order], durations[order]

    return Trace.from_columns(
        starts.tolist(),
        users.tolist(),
        programs.tolist(),
        durations.tolist(),
        catalog,
        model.n_users,
    )


def stream_records_numpy(
    model: PowerInfoModel,
    catalog: Catalog,
    release_flags: Sequence[bool],
    daily_sessions: float,
    shares: List[float],
    user_cum: Sequence[float],
    chunk_hours: int,
):
    """Yield the batch generator's records hour-chunk by hour-chunk.

    Bit-identical to :func:`generate_records_numpy`: every chunk's
    columns equal the corresponding slice of the whole-trace batch.
    Holding that equality while keeping memory O(chunk) relies on three
    PCG64 facts (all pinned by ``tests/trace/test_streaming.py``):

    * ``Generator.random(n)`` consumed in sequential pieces equals one
      batch draw, so the times/users/programs/mask streams are simply
      drawn per chunk in order;
    * ``bit_generator.advance(k)`` skips exactly ``k`` doubles, which
      lets the final-hour overshoot (the only hour the batch path
      filters) be *peeked* up front from a clone of the times stream,
      and lets the body-duration uniforms come from a clone of the
      lengths stream advanced past all ``total`` full-view mask draws
      (batch order draws every mask before any body uniform);
    * ``Generator.poisson(lam_array)`` consumes its stream element by
      element, so the O(hours) hourly counts can be drawn whole-trace
      up front.

    Chunks are yielded as ``(start_hour, end_hour, starts, users,
    programs, durations)`` tuples of numpy arrays, ascending and
    non-overlapping; empty chunks are skipped.  Each chunk is sorted by
    ``(start, user, program)`` exactly as the batch path orders the
    same rows: hour blocks are disjoint (a start never leaves its
    hour), so the batch's global sort is the concatenation of the
    per-chunk sorts.  The one theoretical divergence is a start that
    rounds to exactly a chunk-boundary float *and* collides with a
    start on the far side -- a sub-2^-50 coincidence the batch path's
    own tie fallback already treats as pathological.
    """
    if chunk_hours < 1:
        raise ConfigurationError(
            f"chunk_hours must be >= 1, got {chunk_hours}")
    seed = model.seed
    total_hours = int(math.ceil(model.days * units.HOURS_PER_DAY))
    window_end = model.duration_seconds

    lam = daily_sessions * np.asarray(shares)[
        np.arange(total_hours) % units.HOURS_PER_DAY
    ]
    counts = _rng(seed, "hourly-counts").poisson(lam)
    pre_total = int(counts.sum())
    if pre_total == 0:
        return

    # Peek the trailing partial hour: the batch path drops starts past
    # the window *before* drawing users/programs/durations, so the kept
    # total must be known before the first chunk is emitted (it sizes
    # the advance() of the body-uniform clone below).
    dropped = 0
    c_last = int(counts[-1])
    if c_last > 0:
        peek = _rng(seed, "event-times")
        peek.bit_generator.advance(pre_total - c_last)
        last_starts = (
            (total_hours - 1) * float(units.SECONDS_PER_HOUR)
            + peek.random(c_last) * units.SECONDS_PER_HOUR
        )
        dropped = int((last_starts >= window_end).sum())
    total_kept = pre_total - dropped
    if total_kept == 0:
        return

    rng_times = _rng(seed, "event-times")
    rng_users = _rng(seed, "event-users")
    rng_programs = _rng(seed, "event-programs")
    rng_mask = _rng(seed, "event-lengths")
    rng_body = _rng(seed, "event-lengths")
    rng_body.bit_generator.advance(total_kept)

    user_cum_arr = np.asarray(user_cum)
    lengths = np.fromiter((p.length_seconds for p in catalog),
                          dtype=np.float64, count=len(catalog))

    for h0 in range(0, total_hours, chunk_hours):
        h1 = min(h0 + chunk_hours, total_hours)
        chunk_counts = counts[h0:h1]
        c_pre = int(chunk_counts.sum())
        if c_pre == 0:
            continue
        hour_of = np.repeat(np.arange(h0, h1), chunk_counts)
        starts = (
            hour_of * float(units.SECONDS_PER_HOUR)
            + rng_times.random(c_pre) * units.SECONDS_PER_HOUR
        )
        keep = starts < window_end
        if not keep.all():
            starts = starts[keep]
            hour_of = hour_of[keep]
            chunk_counts = np.bincount(hour_of - h0, minlength=h1 - h0)
        total = starts.size
        if total == 0:
            continue
        starts.sort()

        users = np.searchsorted(user_cum_arr, rng_users.random(total),
                                side="left")
        programs = _program_picks(model, catalog, release_flags,
                                  chunk_counts, rng_programs,
                                  hour_offset=h0)
        full_mask = rng_mask.random(total) < model.full_view_probability
        body_u = rng_body.random(int((~full_mask).sum()))
        durations = _session_durations_from(model, lengths[programs],
                                            full_mask, body_u)

        if total > 1 and bool((starts[1:] == starts[:-1]).any()):
            order = np.lexsort((programs, users, starts))
            starts, users = starts[order], users[order]
            programs, durations = programs[order], durations[order]

        yield (h0, h1, starts, users, programs, durations)
