"""The paper's trace-scaling transforms (section V-A).

For the scalability experiments (Figs 15/16, Table 16a) the paper scales
the PowerInfo trace multiplicatively rather than re-modelling it:

* **Population x n** -- "We create n copies of each user, and for each
  event in the trace, we execute n events -- one for each copy -- to the
  same program.  In this case, we randomly change the start time between
  1 and 60 seconds to eliminate problems caused by synchronous accesses."
* **Catalog x n** -- "we first create n copies of every program in the
  trace.  For each event in the trace, we substitute one of the n copies
  of the original program at random."

Both transforms are implemented exactly as described, deterministically
(seeded), and preserve the statistical character of the base trace.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.sim.random_streams import RandomStreams
from repro.trace.records import Catalog, Program, SessionRecord, Trace


def scale_population(trace: Trace, factor: int, seed: int = 160) -> Trace:
    """Multiply the user population by an integer ``factor``.

    Copy ``k`` of user ``u`` gets id ``u + k * n_users``.  The original
    events (copy 0) are kept verbatim; every additional copy's event is
    jittered forward by a uniform 1-60 s, per the paper.
    """
    if factor < 1:
        raise ConfigurationError(f"population factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    rng = RandomStreams(seed).get(f"population-scale-{factor}")
    base_users = trace.n_users
    records: List[SessionRecord] = []
    for record in trace:
        records.append(record)
        for copy in range(1, factor):
            records.append(
                SessionRecord(
                    start_time=record.start_time + rng.uniform(1.0, 60.0),
                    user_id=record.user_id + copy * base_users,
                    program_id=record.program_id,
                    duration_seconds=record.duration_seconds,
                )
            )
    return Trace(records, trace.catalog, n_users=base_users * factor)


def scale_catalog(trace: Trace, factor: int, seed: int = 161) -> Trace:
    """Multiply the catalog size by an integer ``factor``.

    Copy ``k`` of program ``p`` gets id ``p + k * n_programs`` and inherits
    its length and introduction time.  Each event is redirected to one of
    the ``factor`` copies of its original program uniformly at random, so
    aggregate demand is unchanged but per-program demand is diluted --
    exactly the effect the paper studies in Fig 16(c).
    """
    if factor < 1:
        raise ConfigurationError(f"catalog factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    rng = RandomStreams(seed).get(f"catalog-scale-{factor}")
    base_programs = len(trace.catalog)
    programs: List[Program] = []
    for copy in range(factor):
        for program in trace.catalog:
            programs.append(
                Program(
                    program_id=program.program_id + copy * base_programs,
                    length_seconds=program.length_seconds,
                    introduced_at=program.introduced_at,
                )
            )
    catalog = Catalog(programs)
    records = [
        SessionRecord(
            start_time=record.start_time,
            user_id=record.user_id,
            program_id=record.program_id + rng.randrange(factor) * base_programs,
            duration_seconds=record.duration_seconds,
        )
        for record in trace
    ]
    return Trace(records, catalog, n_users=trace.n_users)
