"""The paper's trace-scaling transforms (section V-A).

For the scalability experiments (Figs 15/16, Table 16a) the paper scales
the PowerInfo trace multiplicatively rather than re-modelling it:

* **Population x n** -- "We create n copies of each user, and for each
  event in the trace, we execute n events -- one for each copy -- to the
  same program.  In this case, we randomly change the start time between
  1 and 60 seconds to eliminate problems caused by synchronous accesses."
* **Catalog x n** -- "we first create n copies of every program in the
  trace.  For each event in the trace, we substitute one of the n copies
  of the original program at random."

Both transforms are implemented exactly as described, deterministically
(seeded), and preserve the statistical character of the base trace.

Each transform has two implementations behind the trace-backend gate
(``REPRO_TRACE_BACKEND`` / :func:`~repro.trace.synthetic.resolve_trace_backend`):
a record-object path and a columnar numpy path.  Unlike the generator
backends, the two paths here are **bit-identical**, not merely
distribution-equivalent: both draw the same values from the same seeded
stream in the same order, compute the same float sums, and sort with the
same stable ``(start, user, program)`` key -- so a fig15-style grid gets
its sweep setup vectorized without changing a single record
(``tests/trace/test_scaling.py`` pins this).
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.sim.random_streams import RandomStreams
from repro.trace.records import Catalog, Program, SessionRecord, Trace
from repro.trace.synthetic import resolve_trace_backend


def scale_population(trace: Trace, factor: int, seed: int = 160) -> Trace:
    """Multiply the user population by an integer ``factor``.

    Copy ``k`` of user ``u`` gets id ``u + k * n_users``.  The original
    events (copy 0) are kept verbatim; every additional copy's event is
    jittered forward by a uniform 1-60 s, per the paper.
    """
    if factor < 1:
        raise ConfigurationError(f"population factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    rng = RandomStreams(seed).get(f"population-scale-{factor}")
    base_users = trace.n_users
    if resolve_trace_backend() == "numpy":
        return _scale_population_numpy(trace, factor, rng, base_users)
    records: List[SessionRecord] = []
    for record in trace:
        records.append(record)
        for copy in range(1, factor):
            records.append(
                SessionRecord(
                    start_time=record.start_time + rng.uniform(1.0, 60.0),
                    user_id=record.user_id + copy * base_users,
                    program_id=record.program_id,
                    duration_seconds=record.duration_seconds,
                )
            )
    return Trace(records, trace.catalog, n_users=base_users * factor)


def _scale_population_numpy(trace: Trace, factor: int, rng,
                            base_users: int) -> Trace:
    """Columnar population scaling, bit-identical to the record path.

    The jitter draws stay on the Python ``random`` stream in the exact
    scalar order (record-major, copies ``1..factor-1`` inner) -- only
    the construction and the sort are vectorized.  Rows are laid out in
    the scalar construction order (record-major, copy 0 first) before a
    stable lexsort, so ties under the ``(start, user, program)`` key
    resolve exactly as ``sorted()`` resolves them in the record path.
    """
    import numpy as np

    starts, users, programs, durations = trace.columns()
    n = len(starts)
    uniform = rng.uniform
    jitter = np.asarray(
        [uniform(1.0, 60.0) for _ in range(n * (factor - 1))],
        dtype=np.float64,
    ).reshape(n, factor - 1)
    start_col = np.asarray(starts, dtype=np.float64)
    out_starts = np.empty((n, factor), dtype=np.float64)
    out_starts[:, 0] = start_col
    out_starts[:, 1:] = start_col[:, None] + jitter
    out_users = (np.asarray(users, dtype=np.int64)[:, None]
                 + np.arange(factor, dtype=np.int64) * base_users)
    out_programs = np.repeat(np.asarray(programs, dtype=np.int64), factor)
    out_durations = np.repeat(np.asarray(durations, dtype=np.float64), factor)
    flat_starts = out_starts.ravel()
    flat_users = out_users.ravel()
    order = np.lexsort((out_programs, flat_users, flat_starts))
    return Trace.from_columns(
        flat_starts[order].tolist(),
        flat_users[order].tolist(),
        out_programs[order].tolist(),
        out_durations[order].tolist(),
        trace.catalog,
        base_users * factor,
    )


def scale_catalog(trace: Trace, factor: int, seed: int = 161) -> Trace:
    """Multiply the catalog size by an integer ``factor``.

    Copy ``k`` of program ``p`` gets id ``p + k * n_programs`` and inherits
    its length and introduction time.  Each event is redirected to one of
    the ``factor`` copies of its original program uniformly at random, so
    aggregate demand is unchanged but per-program demand is diluted --
    exactly the effect the paper studies in Fig 16(c).
    """
    if factor < 1:
        raise ConfigurationError(f"catalog factor must be >= 1, got {factor}")
    if factor == 1:
        return trace
    rng = RandomStreams(seed).get(f"catalog-scale-{factor}")
    base_programs = len(trace.catalog)
    programs: List[Program] = []
    for copy in range(factor):
        for program in trace.catalog:
            programs.append(
                Program(
                    program_id=program.program_id + copy * base_programs,
                    length_seconds=program.length_seconds,
                    introduced_at=program.introduced_at,
                )
            )
    catalog = Catalog(programs)
    if resolve_trace_backend() == "numpy":
        return _scale_catalog_numpy(trace, factor, rng, base_programs, catalog)
    records = [
        SessionRecord(
            start_time=record.start_time,
            user_id=record.user_id,
            program_id=record.program_id + rng.randrange(factor) * base_programs,
            duration_seconds=record.duration_seconds,
        )
        for record in trace
    ]
    return Trace(records, catalog, n_users=trace.n_users)


def _scale_catalog_numpy(trace: Trace, factor: int, rng, base_programs: int,
                         catalog: Catalog) -> Trace:
    """Columnar catalog scaling, bit-identical to the record path.

    One ``randrange`` draw per record in record order (the scalar
    sequence); redirecting programs can reorder ties under the
    ``(start, user, program)`` sort key, so the stable lexsort over
    record order reproduces ``sorted()`` exactly.
    """
    import numpy as np

    starts, users, programs, durations = trace.columns()
    randrange = rng.randrange
    draws = np.asarray([randrange(factor) for _ in range(len(starts))],
                       dtype=np.int64)
    new_programs = np.asarray(programs, dtype=np.int64) + draws * base_programs
    start_col = np.asarray(starts, dtype=np.float64)
    user_col = np.asarray(users, dtype=np.int64)
    order = np.lexsort((new_programs, user_col, start_col))
    return Trace.from_columns(
        start_col[order].tolist(),
        user_col[order].tolist(),
        new_programs[order].tolist(),
        np.asarray(durations, dtype=np.float64)[order].tolist(),
        catalog,
        trace.n_users,
    )
