"""Streaming trace generation: hour-chunked records, O(chunk) memory.

:func:`open_trace_stream` runs the same shared prologue as
:func:`repro.trace.synthetic.generate_trace` (catalog, Little's-law
calibration, diurnal shares, user-activity cumulative -- all
bit-identical across backends) but instead of materializing the full
:class:`~repro.trace.records.Trace` it returns a re-streamable
:class:`TraceStream` whose :meth:`~TraceStream.chunks` generator yields
:class:`TraceChunk` column slabs covering ``chunk_hours`` simulated
hours each, in start order.

Both backends stream bit-identically to their batch counterparts:

* the numpy path delegates to
  :func:`repro.trace.vectorized.stream_records_numpy`, which replays the
  batch sampler's draw order chunk by chunk via sequential stream
  consumption plus two ``advance()`` clones (final-hour peek, body
  uniforms);
* the python path re-runs ``generate_trace``'s per-hour loop with
  persistent samplers and streams, cutting the record list at chunk
  boundaries -- hour blocks are disjoint, so sorting each chunk with the
  ``SessionRecord`` ordering reproduces the batch constructor's global
  sort slice by slice.

``TraceStream.materialize()`` concatenates the chunks back into a
``Trace`` equal to ``generate_trace(model, backend)`` -- the equality
both replay modes and the test suite pin.

Peak memory: the generator keeps O(hours) hourly counts plus one chunk
of columns alive at a time; ``TraceChunk`` is deliberately a plain
class (weakref-able) so the bounded-memory test can assert chunks are
collected as the consumer advances.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence

from repro import units
from repro.errors import ConfigurationError
from repro.sim.random_streams import RandomStreams
from repro.trace.records import Catalog, SessionRecord, Trace
from repro.trace.synthetic import (
    PowerInfoModel,
    _arrival_profile,
    _build_catalog,
    _HourlyProgramSampler,
    _sample_poisson,
    _SessionLengthSampler,
    calibrate_sessions_per_user_per_day,
    resolve_trace_backend,
)

#: Default chunk span.  Six hours of a 1M-user metro plant is a few
#: hundred thousand sessions -- tens of MB of columns, far under the
#: whole-trace footprint, while still amortizing per-chunk overhead.
DEFAULT_CHUNK_HOURS = 6


class TraceChunk:
    """One contiguous span of simulated hours' worth of sessions.

    Columns are plain python lists (the same values ``Trace.from_columns``
    would ingest), already sorted by ``(start_time, user_id,
    program_id)``.  Not a dataclass and no ``__slots__`` on purpose:
    the bounded-memory test holds weakrefs to yielded chunks.
    """

    def __init__(
        self,
        index: int,
        start_hour: int,
        end_hour: int,
        start_times: List[float],
        user_ids: List[int],
        program_ids: List[int],
        durations: List[float],
    ) -> None:
        self.index = index
        self.start_hour = start_hour
        self.end_hour = end_hour
        self.start_times = start_times
        self.user_ids = user_ids
        self.program_ids = program_ids
        self.durations = durations

    @property
    def start_second(self) -> float:
        """Chunk window start (inclusive), in simulated seconds."""
        return self.start_hour * float(units.SECONDS_PER_HOUR)

    @property
    def end_second(self) -> float:
        """Chunk window end (exclusive), in simulated seconds."""
        return self.end_hour * float(units.SECONDS_PER_HOUR)

    def __len__(self) -> int:
        return len(self.start_times)

    def records(self) -> List[SessionRecord]:
        """Materialize this chunk's rows as ``SessionRecord`` objects.

        Built fresh on every call (no caching) so a replay driver that
        drops the returned list keeps peak memory at one chunk.
        """
        return list(map(SessionRecord, self.start_times, self.user_ids,
                        self.program_ids, self.durations))


class TraceStream:
    """A lazily generated trace: prologue up front, records on demand.

    Re-streamable -- every :meth:`chunks` call restarts generation from
    the model seed, so independent consumers (or a retry) see identical
    chunks without any buffering.
    """

    def __init__(
        self,
        model: PowerInfoModel,
        backend: str,
        chunk_hours: int,
        catalog: Catalog,
        release_flags: Sequence[bool],
        daily_sessions: float,
        shares: List[float],
        user_cum: Sequence[float],
    ) -> None:
        self._model = model
        self._backend = backend
        self._chunk_hours = chunk_hours
        self._catalog = catalog
        self._release_flags = release_flags
        self._daily_sessions = daily_sessions
        self._shares = shares
        self._user_cum = user_cum

    @property
    def model(self) -> PowerInfoModel:
        return self._model

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def chunk_hours(self) -> int:
        return self._chunk_hours

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def n_users(self) -> int:
        return self._model.n_users

    @property
    def end_time(self) -> float:
        """The trace window end -- what ``Trace.end_time`` reports."""
        return self._model.duration_seconds

    def chunks(self) -> Iterator[TraceChunk]:
        """Yield ascending, non-overlapping, non-empty chunks."""
        if self._backend == "numpy":
            from repro.trace.vectorized import stream_records_numpy

            raw = stream_records_numpy(
                self._model, self._catalog, self._release_flags,
                self._daily_sessions, self._shares, self._user_cum,
                self._chunk_hours,
            )
            for index, (h0, h1, starts, users, programs, durs) in enumerate(raw):
                yield TraceChunk(index, h0, h1, starts.tolist(),
                                 users.tolist(), programs.tolist(),
                                 durs.tolist())
            return
        yield from self._chunks_python()

    def _chunks_python(self) -> Iterator[TraceChunk]:
        """The reference per-session loop, cut at chunk boundaries.

        Mirrors ``generate_trace``'s python body statement for
        statement; samplers and streams persist across chunks so the
        draw sequence is identical to the batch run.
        """
        model = self._model
        catalog = self._catalog
        shares = self._shares
        user_cum = self._user_cum
        daily_sessions = self._daily_sessions
        from bisect import bisect_left

        program_sampler = _HourlyProgramSampler(model, catalog,
                                                self._release_flags)
        length_sampler = _SessionLengthSampler(model)

        streams = RandomStreams(model.seed)
        rng_counts = streams.get("hourly-counts")
        rng_times = streams.get("event-times")
        rng_users = streams.get("event-users")
        rng_programs = streams.get("event-programs")
        rng_lengths = streams.get("event-lengths")

        total_hours = int(math.ceil(model.days * units.HOURS_PER_DAY))
        window_end = model.duration_seconds
        index = 0
        for h0 in range(0, total_hours, self._chunk_hours):
            h1 = min(h0 + self._chunk_hours, total_hours)
            records: List[SessionRecord] = []
            for hour in range(h0, h1):
                hod = hour % units.HOURS_PER_DAY
                lam = daily_sessions * shares[hod]
                count = _sample_poisson(rng_counts, lam)
                hour_start = hour * units.SECONDS_PER_HOUR
                for _ in range(count):
                    start = (hour_start
                             + rng_times.random() * units.SECONDS_PER_HOUR)
                    if start >= window_end:
                        continue
                    user_id = bisect_left(user_cum, rng_users.random())
                    program_id = program_sampler.sample(start, rng_programs)
                    program = catalog[program_id]
                    duration = length_sampler.sample(program, rng_lengths)
                    records.append(
                        SessionRecord(
                            start_time=start,
                            user_id=user_id,
                            program_id=program_id,
                            duration_seconds=duration,
                        )
                    )
            if not records:
                continue
            records.sort()
            yield TraceChunk(
                index, h0, h1,
                [r.start_time for r in records],
                [r.user_id for r in records],
                [r.program_id for r in records],
                [r.duration_seconds for r in records],
            )
            index += 1

    def materialize(self) -> Trace:
        """Concatenate every chunk into a full ``Trace``.

        Equal to ``generate_trace(self.model, self.backend)`` -- useful
        for tests and for consumers that decide streaming is not worth
        it for a small model.
        """
        starts: List[float] = []
        users: List[int] = []
        programs: List[int] = []
        durations: List[float] = []
        for chunk in self.chunks():
            starts.extend(chunk.start_times)
            users.extend(chunk.user_ids)
            programs.extend(chunk.program_ids)
            durations.extend(chunk.durations)
        return Trace.from_columns(starts, users, programs, durations,
                                  self._catalog, self._model.n_users)


def open_trace_stream(
    model: PowerInfoModel,
    backend: Optional[str] = None,
    chunk_hours: int = DEFAULT_CHUNK_HOURS,
) -> TraceStream:
    """Run the shared generation prologue and return a ``TraceStream``.

    ``backend``/``chunk_hours`` semantics match ``generate_trace`` plus
    the chunk span; the prologue (catalog, calibration, activity mix) is
    the exact shared code path, so a stream and a batch trace of the
    same model agree on everything but laziness.
    """
    if chunk_hours < 1:
        raise ConfigurationError(
            f"chunk_hours must be >= 1, got {chunk_hours}")
    backend = resolve_trace_backend(backend)
    streams = RandomStreams(model.seed)
    catalog, release_flags = _build_catalog(model, streams)
    rate = calibrate_sessions_per_user_per_day(model, catalog, release_flags)
    shares = model.normalized_diurnal()
    daily_sessions = rate * model.n_users
    user_cum, session_mass_x = _arrival_profile(model, streams)
    if session_mass_x != 1.0:
        daily_sessions *= session_mass_x
    return TraceStream(model, backend, chunk_hours, catalog, release_flags,
                       daily_sessions, shares, user_cum)
