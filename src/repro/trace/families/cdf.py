"""The ``cdf`` family: synthetic sessions from piecewise-CDF specs.

Published VoD/CDN measurement papers rarely ship raw logs; they publish
*distributions* -- a session-length CDF, a popularity curve ("20% of
titles draw 90% of accesses").  This family turns exactly those two
artifacts into a replayable workload: the caller writes the published
curves down as piecewise CDFs in the scenario file, and the generator
inverse-transform samples them (the PrintQueue
``generate_flows_by_CDF_sample`` technique).

Both curves are small tuples of ``(cdf, value)`` points:

``session_length_cdf``
    A step function: a uniform draw ``u`` maps to the *value* of the
    first point whose cumulative probability reaches ``u``.  Sampled
    session lengths therefore take only the listed values -- the
    piecewise-constant reading of a published empirical CDF.
``popularity_cdf``
    ``(catalog_fraction, access_fraction)`` points, both ascending to
    1.0: the first ``catalog_fraction`` of programs (most popular
    first, id 0 on top) jointly receive ``access_fraction`` of all
    accesses.  Each segment's access mass is split evenly across its
    programs, yielding a per-program weight table.

Arrivals are hourly Poisson (the same :func:`_sample_poisson` variate
the powerinfo generator uses) with an optional 24-entry diurnal weight
profile.  Every draw comes from a named
:class:`~repro.sim.random_streams.RandomStreams` stream rooted at
``seed``, and the generator is pure Python with no backend variants, so
the trace is byte-identical everywhere -- in-process, in any worker,
under either trace backend setting.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.random_streams import RandomStreams
from repro.trace.distributions import cumulative
from repro.trace.families import WorkloadModel, workload_family
from repro.trace.records import Catalog, Program, SessionRecord, Trace

_SECONDS_PER_HOUR = 3600.0

#: Defaults digestible in tests: mass on short clips with a long tail.
_DEFAULT_LENGTH_CDF = (
    (0.25, 240.0), (0.5, 480.0), (0.85, 1500.0), (1.0, 3600.0),
)

#: A strong head: 2% of titles take 35% of accesses, 20% take 90%.
_DEFAULT_POPULARITY_CDF = ((0.02, 0.35), (0.2, 0.9), (1.0, 1.0))


def _validate_cdf_points(
    name: str, points: Tuple[Tuple[float, float], ...],
) -> None:
    """Shared shape checks: pairs, ascending both columns, final cdf 1."""
    if not points:
        raise ConfigurationError(f"{name} must have at least one point")
    previous_cdf = 0.0
    previous_value = 0.0
    for point in points:
        if not isinstance(point, tuple) or len(point) != 2:
            raise ConfigurationError(
                f"{name} points must be (cdf, value) pairs, got {point!r}"
            )
        cdf, value = point
        if not previous_cdf < cdf <= 1.0:
            raise ConfigurationError(
                f"{name} cumulative column must ascend strictly through "
                f"(0, 1], got {cdf} after {previous_cdf}"
            )
        if value <= previous_value:
            raise ConfigurationError(
                f"{name} value column must ascend strictly and stay "
                f"positive, got {value} after {previous_value}"
            )
        previous_cdf, previous_value = cdf, value
    if previous_cdf != 1.0:
        raise ConfigurationError(
            f"{name} must end at cumulative probability 1.0, "
            f"got {previous_cdf}"
        )


def _step_sample(points: Tuple[Tuple[float, float], ...], u: float) -> float:
    """Inverse-transform a step CDF: the value at the first point >= u."""
    for cdf, value in points:
        if u <= cdf:
            return value
    return points[-1][1]


def _popularity_weights(
    points: Tuple[Tuple[float, float], ...], n_programs: int,
) -> List[float]:
    """Per-program access weights from a (catalog%, access%) curve.

    Program ids are popularity ranks (id 0 most popular); each curve
    segment's access mass is divided evenly among the programs whose
    rank falls inside that segment.  Rounding can leave a segment
    empty on tiny catalogs; its mass is dropped and the remainder is
    renormalized by :func:`cumulative`.
    """
    weights = [0.0] * n_programs
    previous_boundary = 0
    previous_access = 0.0
    for catalog_fraction, access_fraction in points:
        boundary = min(n_programs, round(catalog_fraction * n_programs))
        if catalog_fraction == points[-1][0]:
            boundary = n_programs
        count = boundary - previous_boundary
        if count > 0:
            share = (access_fraction - previous_access) / count
            for program_id in range(previous_boundary, boundary):
                weights[program_id] = share
        previous_boundary = boundary
        previous_access = access_fraction
    return weights


@workload_family("cdf", summary="synthetic sessions sampled from "
                 "piecewise session-length and popularity CDFs")
@dataclass(frozen=True)
class CDFModel(WorkloadModel):
    """Synthetic workload specified by published piecewise CDFs."""

    n_users: int = 1000
    n_programs: int = 200
    days: float = 3.0
    seed: int = 2007
    #: Mean viewing sessions per subscriber per day.
    sessions_per_user_per_day: float = 2.0
    session_length_cdf: Tuple[Tuple[float, float], ...] = _DEFAULT_LENGTH_CDF
    popularity_cdf: Tuple[Tuple[float, float], ...] = _DEFAULT_POPULARITY_CDF
    #: Relative arrival weight per hour of day (flat by default); any
    #: positive 24-vector works, it is normalized internally.
    diurnal_weights: Tuple[float, ...] = (1.0,) * 24

    serialize_always: ClassVar[Tuple[str, ...]] = (
        "n_users", "n_programs", "days", "seed")

    def __post_init__(self) -> None:
        # Deep-freeze: JSON hands us lists; hashing (LRU memo keys,
        # sweep point identity) needs tuples all the way down.
        for field_name in ("session_length_cdf", "popularity_cdf"):
            value = tuple(
                tuple(point) if isinstance(point, list) else point
                for point in getattr(self, field_name)
            )
            object.__setattr__(self, field_name, value)
        object.__setattr__(
            self, "diurnal_weights", tuple(self.diurnal_weights))
        if self.n_users < 1:
            raise ConfigurationError(
                f"n_users must be >= 1, got {self.n_users}")
        if self.n_programs < 1:
            raise ConfigurationError(
                f"n_programs must be >= 1, got {self.n_programs}")
        if self.days <= 0:
            raise ConfigurationError(f"days must be positive, got {self.days}")
        if self.sessions_per_user_per_day <= 0:
            raise ConfigurationError(
                f"sessions_per_user_per_day must be positive, "
                f"got {self.sessions_per_user_per_day}"
            )
        _validate_cdf_points("session_length_cdf", self.session_length_cdf)
        _validate_cdf_points("popularity_cdf", self.popularity_cdf)
        if self.popularity_cdf[-1][1] != 1.0:
            raise ConfigurationError(
                f"popularity_cdf must allocate all accesses (final access "
                f"fraction 1.0), got {self.popularity_cdf[-1][1]}"
            )
        if len(self.diurnal_weights) != 24:
            raise ConfigurationError(
                f"diurnal_weights needs one weight per hour of day (24), "
                f"got {len(self.diurnal_weights)}"
            )
        if any(w < 0 for w in self.diurnal_weights) or \
                sum(self.diurnal_weights) <= 0:
            raise ConfigurationError(
                "diurnal_weights must be non-negative with a positive sum"
            )

    def build_trace(self, backend: Optional[str] = None) -> Trace:
        """Sample the spec's CDFs into a trace (``backend`` ignored)."""
        from repro.trace.synthetic import _sample_poisson

        longest = self.session_length_cdf[-1][1]
        catalog = Catalog([
            # Every program is long enough for any sampled session, so
            # the length CDF alone governs durations -- the published
            # curve is reproduced exactly, not clipped per title.
            Program(program_id=i, length_seconds=longest)
            for i in range(self.n_programs)
        ])
        program_cdf = cumulative(
            _popularity_weights(self.popularity_cdf, self.n_programs))
        diurnal_total = sum(self.diurnal_weights)
        streams = RandomStreams(self.seed)
        counts_rng = streams.get("hourly-counts")
        times_rng = streams.get("event-times")
        users_rng = streams.get("event-users")
        programs_rng = streams.get("event-programs")
        lengths_rng = streams.get("event-lengths")
        records: List[SessionRecord] = []
        n_hours = int(round(self.days * 24.0))
        for hour in range(n_hours):
            share = self.diurnal_weights[hour % 24] / diurnal_total
            lam = (self.n_users * self.sessions_per_user_per_day
                   * self.days * 24.0 / n_hours * share)
            for _ in range(_sample_poisson(counts_rng, lam)):
                start = (hour + times_rng.random()) * _SECONDS_PER_HOUR
                user_id = min(int(users_rng.random() * self.n_users),
                              self.n_users - 1)
                program_id = bisect_left(program_cdf, programs_rng.random())
                duration = _step_sample(
                    self.session_length_cdf, lengths_rng.random())
                records.append(SessionRecord(
                    start_time=start,
                    user_id=user_id,
                    program_id=min(program_id, self.n_programs - 1),
                    duration_seconds=duration,
                ))
        return Trace(records, catalog, n_users=self.n_users)


def sampled_fractions(points: Sequence[Tuple[float, float]],
                      n: int, seed: int) -> List[float]:
    """``n`` deterministic step-CDF samples -- a test/inspection helper."""
    frozen = tuple(tuple(p) for p in points)
    _validate_cdf_points("cdf", frozen)
    rng = RandomStreams(seed).get("cdf-samples")
    return [_step_sample(frozen, rng.random()) for _ in range(n)]
