"""The ``trace-driven`` family: replay an external session log.

Downstream users run the simulator against their own measured logs.
This family makes such a log a first-class scenario ``trace`` value: a
small frozen spec (path + ingestion knobs) that loads the file, ingests
it through the trusted
:meth:`~repro.trace.records.Trace.from_columns` path, and validates it
eagerly (:mod:`repro.trace.validation`) so a statistically degenerate
log fails at build time with named findings instead of producing
meaningless caching results.

Two file formats:

``container`` (default)
    The :mod:`repro.trace.io` two-section CSV container (``#meta`` /
    ``#catalog`` / ``#records``) -- what :func:`~repro.trace.io.
    dump_trace` writes, catalog included.
``columns``
    A flat four-column CSV (``start_time,user_id,program_id,
    duration_seconds`` header row) -- the shape raw request logs
    usually take.  Rows are sorted and the catalog is inferred: each
    program's length is its longest observed session (the paper infers
    lengths from the session-length ECDF jump the same way, §V-A).

Determinism: the spec is a pure function of the file contents, so any
worker regenerating from the spec builds the byte-identical trace.
There is no seed -- :meth:`with_seed` refuses the scenario-level seed
override -- and the §V-A transforms are refused too (scaled copies of a
measured log are not measurements; synthesize a model instead).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import ClassVar, List, Optional, Tuple

from repro.errors import ConfigurationError, TraceError, TraceFormatError
from repro.trace.families import WorkloadModel, workload_family
from repro.trace.records import Catalog, Program, Trace

_COLUMN_HEADER = ["start_time", "user_id", "program_id", "duration_seconds"]

#: Accepted ``format`` values.
TRACE_FILE_FORMATS = ("container", "columns")


@workload_family("trace-driven", summary="replay an external session log "
                 "(CSV container or flat columns), validated on ingest")
@dataclass(frozen=True)
class TraceFileModel(WorkloadModel):
    """An external session log as a workload spec.

    Attributes
    ----------
    path:
        The log file.  Relative paths resolve against the working
        directory (scenario files ship fixture logs next to
        themselves).
    format:
        ``"container"`` (the :mod:`repro.trace.io` format) or
        ``"columns"`` (flat four-column CSV, catalog inferred).
    n_users:
        Declared subscriber population.  ``None`` takes the file's own
        count (container) or the highest referenced user id + 1
        (columns); sharded replay requires a declared count.
    min_sessions / min_span_days:
        Validation thresholds (:func:`repro.trace.validation.validate`)
        below which ingestion fails; the defaults are what the
        reproduction's experiments need.
    """

    path: str = ""
    format: str = "container"
    n_users: Optional[int] = None
    min_sessions: int = 100
    min_span_days: float = 2.0

    #: A measured log is a fixed artifact: no lazy re-generation and no
    #: §V-A multiplicative copies of real measurements.
    supports_streaming: ClassVar[bool] = False
    supports_transforms: ClassVar[bool] = False

    def __post_init__(self) -> None:
        if self.format not in TRACE_FILE_FORMATS:
            raise ConfigurationError(
                f"unknown trace file format {self.format!r}; choose from "
                f"{list(TRACE_FILE_FORMATS)}"
            )
        if self.n_users is not None and (
                isinstance(self.n_users, bool)
                or not isinstance(self.n_users, int) or self.n_users < 1):
            raise ConfigurationError(
                f"n_users must be an integer >= 1 or null, got {self.n_users!r}"
            )
        if self.min_sessions < 0:
            raise ConfigurationError(
                f"min_sessions must be >= 0, got {self.min_sessions}"
            )
        if self.min_span_days < 0:
            raise ConfigurationError(
                f"min_span_days must be >= 0, got {self.min_span_days}"
            )

    def with_seed(self, seed: int) -> "WorkloadModel":
        raise ConfigurationError(
            "workload family 'trace-driven' replays a fixed log and has "
            "no seed to override"
        )

    def build_trace(self, backend: Optional[str] = None) -> Trace:
        """Load, ingest through ``Trace.from_columns``, and validate."""
        if not self.path:
            raise ConfigurationError(
                "a trace-driven workload needs a 'path' to its log file"
            )
        try:
            if self.format == "columns":
                trace = self._load_columns()
            else:
                trace = self._load_container()
        except OSError as error:
            raise ConfigurationError(
                f"cannot read trace file: {error}"
            ) from None
        except (TraceError, TraceFormatError) as error:
            raise ConfigurationError(
                f"{self.path}: not a usable session log ({error})"
            ) from None
        self._validate(trace)
        return trace

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _load_container(self) -> Trace:
        from repro.trace.io import load_trace

        loaded = load_trace(self.path)
        n_users = loaded.n_users if self.n_users is None else self.n_users
        # Re-enter through the trusted columnar path: the container
        # loader already sorted the records, so this re-checks the
        # aggregate invariants (and the declared user count) cheaply.
        return Trace.from_columns(*loaded.columns(), loaded.catalog, n_users)

    def _load_columns(self) -> Trace:
        rows: List[Tuple[float, int, int, float]] = []
        with open(self.path, "r", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header != _COLUMN_HEADER:
                raise TraceFormatError(
                    f"bad column header {header!r}, expected "
                    f"{_COLUMN_HEADER!r}"
                )
            for line_number, fields in enumerate(reader, start=2):
                if not fields:
                    continue
                try:
                    rows.append((float(fields[0]), int(fields[1]),
                                 int(fields[2]), float(fields[3])))
                except (ValueError, IndexError) as exc:
                    raise TraceFormatError(
                        f"line {line_number}: cannot parse row "
                        f"{fields!r}: {exc}"
                    ) from exc
        if not rows:
            raise TraceFormatError("the log contains no session rows")
        rows.sort()
        n_programs = max(row[2] for row in rows) + 1
        longest = [0.0] * n_programs
        for _, _, program_id, duration in rows:
            if duration > longest[program_id]:
                longest[program_id] = duration
        catalog = Catalog([
            # Never-accessed ids still need a positive length; one
            # second is inert (no session can reference them).
            Program(program_id=i, length_seconds=longest[i] or 1.0)
            for i in range(n_programs)
        ])
        n_users = self.n_users
        if n_users is None:
            n_users = max(row[1] for row in rows) + 1
        return Trace.from_columns(
            [row[0] for row in rows], [row[1] for row in rows],
            [row[2] for row in rows], [row[3] for row in rows],
            catalog, n_users,
        )

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self, trace: Trace) -> None:
        from repro.trace.validation import validate

        report = validate(trace, min_sessions=self.min_sessions,
                          min_span_days=self.min_span_days)
        if not report.ok:
            problems = "; ".join(
                f"{finding.code}: {finding.message}"
                for finding in report.errors()
            )
            raise ConfigurationError(
                f"{self.path}: the log cannot support meaningful caching "
                f"experiments ({problems})"
            )


def resolved_path(spec: TraceFileModel, base: Optional[Path] = None) -> Path:
    """The spec's path, resolved against ``base`` when relative."""
    path = Path(spec.path)
    if base is not None and not path.is_absolute():
        return base / path
    return path
