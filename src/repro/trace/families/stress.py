"""Stress-shape families: adversarial transforms over any base workload.

The paper evaluates steady-state PowerInfo-like demand; these families
answer the "what breaks it?" questions reviewers ask.  Each wraps a
``base`` spec from *any* registered family (nested serialization via
``nested_family_fields``) and perturbs the generated trace:

``flash-crowd``
    A premiere spike: for a few hours, one program receives a Poisson
    burst of extra sessions at ``spike_x`` times the trace's mean
    arrival rate -- the pattern that blows past steady-state cache
    provisioning.
``catalog-churn``
    A popularity shift mid-replay: at ``churn_day`` the program ids of
    later sessions are re-mapped by a seeded permutation (within
    equal-length classes, so session durations stay valid), modeling a
    catalog refresh that invalidates warmed caches.
``zipf-beta``
    Heterogeneous per-user request rates: every session's user id is
    re-drawn from a Zipf(``beta``) distribution over a seeded
    user permutation (the icarus "zipf-beta receivers" shape), so a
    heavy head of users dominates the request stream while times,
    programs and durations are untouched.

Determinism: each shape draws only from named
:class:`~repro.sim.random_streams.RandomStreams` streams rooted at a
seed derived (:func:`~repro.sim.random_streams.derive_seed`) from the
base spec's own seed and the family name, so the perturbation is a pure
function of the frozen spec.  The scenario-level seed override flows
*through* to the base: ``with_seed`` replaces the base's seed, which
also re-roots the perturbation streams.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import ClassVar, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.random_streams import RandomStreams, derive_seed
from repro.trace.distributions import cumulative, zipf_weights
from repro.trace.families import (
    WorkloadModel,
    coerce_trace_model,
    workload_family,
)
from repro.trace.records import SessionRecord, Trace
from repro.trace.synthetic import PowerInfoModel, _sample_poisson

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class _StressModel(WorkloadModel):
    """Shared plumbing of the stress shapes: a wrapped ``base`` spec."""

    base: WorkloadModel = field(default_factory=PowerInfoModel)

    #: Perturbations rewrite the whole record list, so none of these
    #: families can stream chunks lazily even when the base could.
    supports_streaming: ClassVar[bool] = False
    nested_family_fields: ClassVar[Tuple[str, ...]] = ("base",)

    def __post_init__(self) -> None:
        if not isinstance(self.base, WorkloadModel):
            object.__setattr__(
                self, "base", coerce_trace_model(self.base))

    def declared_n_users(self) -> Optional[int]:
        """The perturbed trace keeps the base trace's user-id space."""
        return self.base.declared_n_users()

    def with_seed(self, seed: int) -> "WorkloadModel":
        """Re-seed the base; the perturbation streams derive from it."""
        return replace(self, base=self.base.with_seed(seed))

    def _streams(self) -> RandomStreams:
        """Perturbation streams: rooted at (base seed, family name)."""
        root = getattr(self.base, "seed", 0)
        root = root if isinstance(root, int) else 0
        return RandomStreams(derive_seed(root, self.family_name))


@workload_family("flash-crowd", summary="premiere spike: a Poisson burst "
                 "of extra sessions on one program over a short window")
@dataclass(frozen=True)
class FlashCrowdModel(_StressModel):
    """A premiere spike layered on the base trace."""

    #: Spike window start, in days from the trace origin.
    spike_day: float = 1.0
    #: Spike window length, in hours.
    spike_hours: float = 3.0
    #: Extra arrival intensity on the target program, as a multiple of
    #: the base trace's mean per-hour session rate.
    spike_x: float = 5.0
    #: Program receiving the spike; ``None`` targets the base trace's
    #: most popular program (ties break to the lowest id).
    program_id: Optional[int] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.spike_day < 0:
            raise ConfigurationError(
                f"spike_day must be >= 0, got {self.spike_day}")
        if self.spike_hours <= 0:
            raise ConfigurationError(
                f"spike_hours must be positive, got {self.spike_hours}")
        if self.spike_x <= 0:
            raise ConfigurationError(
                f"spike_x must be positive, got {self.spike_x}")

    def build_trace(self, backend: Optional[str] = None) -> Trace:
        base_trace = self.base.build_trace(backend)
        if not len(base_trace):
            raise ConfigurationError(
                "flash-crowd needs a non-empty base trace to spike")
        target = self.program_id
        if target is None:
            target = base_trace.most_popular_program()
        elif target not in base_trace.catalog:
            raise ConfigurationError(
                f"flash-crowd targets program {target}, but the base "
                f"catalog has {len(base_trace.catalog)} programs"
            )
        span_hours = max(
            (base_trace.end_time - base_trace.start_time)
            / _SECONDS_PER_HOUR, 1.0)
        mean_rate = len(base_trace) / span_hours
        _, user_column, program_column, duration_column = \
            base_trace.columns()
        # Spike sessions resample the base trace's own empirical
        # columns: users from the user column, durations from the
        # target program's observed session lengths (every program's
        # durations, capped to the target's length, when the target was
        # never watched).
        target_durations = [
            duration_column[i] for i in range(len(program_column))
            if program_column[i] == target
        ]
        length_cap = base_trace.catalog[target].length_seconds
        if not target_durations:
            target_durations = [
                min(d, length_cap) for d in duration_column]
        streams = self._streams()
        counts_rng = streams.get("spike-counts")
        events_rng = streams.get("spike-events")
        window_start = self.spike_day * _SECONDS_PER_DAY
        extra: List[SessionRecord] = []
        full_hours = int(self.spike_hours)
        for hour in range(full_hours + 1):
            hour_fraction = min(self.spike_hours - hour, 1.0)
            if hour_fraction <= 0:
                break
            lam = self.spike_x * mean_rate * hour_fraction
            hour_start = window_start + hour * _SECONDS_PER_HOUR
            for _ in range(_sample_poisson(counts_rng, lam)):
                start = hour_start + (events_rng.random() * hour_fraction
                                      * _SECONDS_PER_HOUR)
                user_id = user_column[
                    int(events_rng.random() * len(user_column))]
                duration = target_durations[
                    int(events_rng.random() * len(target_durations))]
                extra.append(SessionRecord(
                    start_time=start,
                    user_id=user_id,
                    program_id=target,
                    duration_seconds=duration,
                ))
        return Trace(list(base_trace.records) + extra, base_trace.catalog,
                     n_users=base_trace.n_users)


@workload_family("catalog-churn", summary="mid-replay popularity shift: "
                 "seeded program re-mapping from churn_day onward")
@dataclass(frozen=True)
class CatalogChurnModel(_StressModel):
    """A popularity shift partway through the base trace."""

    #: Day (trace clock) at which the re-mapping takes effect.
    churn_day: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.churn_day < 0:
            raise ConfigurationError(
                f"churn_day must be >= 0, got {self.churn_day}")

    def build_trace(self, backend: Optional[str] = None) -> Trace:
        base_trace = self.base.build_trace(backend)
        # Permute ids only within equal-length classes: a session's
        # duration can never exceed its (new) program's length, so the
        # remapped records stay valid by construction.
        classes: Dict[float, List[int]] = {}
        for program in base_trace.catalog:
            classes.setdefault(
                program.length_seconds, []).append(program.program_id)
        shuffle_rng = self._streams().get("churn-permutation")
        mapping: Dict[int, int] = {}
        for length in sorted(classes):
            ids = sorted(classes[length])
            shuffled = list(ids)
            shuffle_rng.shuffle(shuffled)
            mapping.update(zip(ids, shuffled))
        churn_time = self.churn_day * _SECONDS_PER_DAY
        records = [
            record if record.start_time < churn_time
            else replace(record, program_id=mapping[record.program_id])
            for record in base_trace.records
        ]
        return Trace(records, base_trace.catalog,
                     n_users=base_trace.n_users)


@workload_family("zipf-beta", summary="heterogeneous user activity: "
                 "session users re-drawn from a Zipf(beta) head")
@dataclass(frozen=True)
class ZipfBetaModel(_StressModel):
    """Zipf-skewed per-user request rates over the base trace."""

    #: Zipf exponent over user activity ranks; 0 degenerates to the
    #: base trace's own (roughly uniform) user mix.
    beta: float = 1.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.beta < 0:
            raise ConfigurationError(
                f"beta must be non-negative, got {self.beta}")

    def build_trace(self, backend: Optional[str] = None) -> Trace:
        base_trace = self.base.build_trace(backend)
        n_users = base_trace.n_users
        if n_users < 1:
            raise ConfigurationError(
                "zipf-beta needs a base trace with at least one user")
        user_cdf = cumulative(zipf_weights(n_users, self.beta))
        streams = self._streams()
        # Which concrete user sits at each activity rank is itself
        # seeded, so rank 0 is not always user 0.
        rank_to_user = list(range(n_users))
        streams.get("user-ranks").shuffle(rank_to_user)
        draws_rng = streams.get("user-draws")
        records = [
            replace(record, user_id=rank_to_user[
                min(bisect_left(user_cdf, draws_rng.random()),
                    n_users - 1)])
            for record in base_trace.records
        ]
        return Trace(records, base_trace.catalog, n_users=n_users)
