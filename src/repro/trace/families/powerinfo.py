"""The ``powerinfo`` family: the paper's calibrated synthetic workload.

The spec class itself is :class:`~repro.trace.synthetic.PowerInfoModel`
-- it predates the family registry and every layer imports it from
:mod:`repro.trace.synthetic`, so that module keeps owning the class and
its ``@workload_family("powerinfo")`` registration.  This module exists
so the lazy registry table has one import per family; it re-exports the
class for symmetry with the other family modules.
"""

from __future__ import annotations

from repro.trace.synthetic import PowerInfoModel

__all__ = ["PowerInfoModel"]
