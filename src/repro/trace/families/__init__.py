"""Workload families: a decorator registry of trace-model specs.

Every workload the simulator can replay is described by a small frozen
dataclass -- a *trace model* -- that regenerates its trace
deterministically, byte for byte, in this process or any worker.  This
package generalizes the single hard-pinned
:class:`~repro.trace.synthetic.PowerInfoModel` into a registry of such
models, mirroring the cache-policy registry
(:mod:`repro.cache.policies.registry`)::

    @workload_family("cdf", summary="piecewise-CDF synthetic sessions")
    @dataclass(frozen=True)
    class CDFModel(WorkloadModel):
        ...

Registered families:

``powerinfo``
    The calibrated synthetic PowerInfo workload -- the paper's trace
    (:mod:`repro.trace.synthetic`; bit-identical to the pre-registry
    generator).
``trace-driven``
    Replay of an external session log ingested through the trusted
    :meth:`~repro.trace.records.Trace.from_columns` path, with eager
    statistical validation (:mod:`repro.trace.families.tracefile`).
``cdf``
    Synthetic sessions whose length and popularity follow caller-given
    piecewise CDFs, so published distributions from other VoD/CDN
    papers drop in as scenarios (:mod:`repro.trace.families.cdf`).
``flash-crowd`` / ``catalog-churn`` / ``zipf-beta``
    Stress shapes wrapping any base family: premiere spikes, mid-replay
    popularity shifts, heterogeneous per-user request rates
    (:mod:`repro.trace.families.stress`).

Serialization: :func:`spec_to_dict` / :func:`spec_from_dict` round-trip
every registered spec through plain dicts.  The ``powerinfo`` family
omits its ``family`` key so scenario files that predate the registry
stay byte-stable; every other family carries ``"family": <name>``.

This module is deliberately import-light (the registry is imported *by*
:mod:`repro.trace.synthetic` during package init); the family modules
themselves load lazily on first lookup, exactly like the live-admission
table.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.errors import ConfigurationError, suggest

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle)
    from repro.trace.records import Trace

SpecClass = TypeVar("SpecClass", bound=type)


class WorkloadModel:
    """Base class of every registered workload-family spec.

    Subclasses are small frozen dataclasses whose fields fully determine
    the generated trace.  Capability flags are class-level so the
    scenario layer can validate a configuration eagerly, before any
    records exist:

    ``supports_streaming``
        The family can generate its trace lazily, chunk by chunk
        (:mod:`repro.trace.streaming`); only ``powerinfo`` can today.
    ``supports_transforms``
        The section V-A population/catalog transforms
        (:mod:`repro.trace.scaling`) may be applied on top of the
        generated trace.
    ``serialize_always``
        Fields :func:`spec_to_dict` emits even at their defaults -- the
        identity of the workload a reader wants to see.
    ``nested_family_fields``
        Fields holding another :class:`WorkloadModel` (the stress
        shapes' ``base``), recursed through serialization.
    """

    #: Set by :func:`workload_family` on registration.
    family_name: ClassVar[str]

    supports_streaming: ClassVar[bool] = False
    supports_transforms: ClassVar[bool] = True
    serialize_always: ClassVar[Tuple[str, ...]] = ()
    nested_family_fields: ClassVar[Tuple[str, ...]] = ()

    def build_trace(self, backend: Optional[str] = None) -> "Trace":
        """Generate this model's trace (deterministic in the spec).

        ``backend`` selects a generator implementation where the family
        has more than one (``powerinfo``); single-implementation
        families ignore it and are byte-identical regardless.
        """
        raise NotImplementedError

    def declared_n_users(self) -> Optional[int]:
        """The trace's user count, knowable without building the trace.

        ``None`` means the count is only discovered at build time (an
        external log with no declared population), which rules out
        sharded replay -- shard planning needs the id space up front.
        """
        n_users = getattr(self, "n_users", None)
        return n_users if isinstance(n_users, int) else None

    def with_seed(self, seed: int) -> "WorkloadModel":
        """A copy of this spec rooted at ``seed`` (the scenario override)."""
        try:
            return dataclasses.replace(self, seed=seed)
        except TypeError:
            raise ConfigurationError(
                f"workload family {self.family_name!r} has no seed to "
                f"override"
            ) from None


@dataclass(frozen=True)
class FamilyInfo:
    """One registered workload family: name, spec class, description."""

    name: str
    spec_class: type
    summary: str

    def parameters(self) -> List[Tuple[str, object]]:
        """``(field, default)`` pairs of the spec's dataclass surface."""
        params: List[Tuple[str, object]] = []
        for field in dataclasses.fields(self.spec_class):
            if not field.init:
                continue
            if field.default is not dataclasses.MISSING:
                default = field.default
            elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                default = field.default_factory()  # type: ignore[misc]
            else:
                default = "<required>"
            params.append((field.name, default))
        return params

    def capabilities(self) -> str:
        """Short human-readable capability tags for CLI listings."""
        tags = []
        if self.spec_class.supports_streaming:
            tags.append("streaming")
        if self.spec_class.supports_transforms:
            tags.append("transforms")
        return "+".join(tags) or "-"


_REGISTRY: Dict[str, FamilyInfo] = {}


def workload_family(name: str, summary: str = "") -> Callable[[SpecClass], SpecClass]:
    """Class decorator registering a workload-model spec under ``name``."""

    def register(spec_class: SpecClass) -> SpecClass:
        if name in _REGISTRY:
            raise ConfigurationError(
                f"workload family {name!r} registered twice "
                f"({_REGISTRY[name].spec_class.__name__} and "
                f"{spec_class.__name__})"
            )
        doc = (spec_class.__doc__ or "").strip().splitlines()
        _REGISTRY[name] = FamilyInfo(
            name=name,
            spec_class=spec_class,
            summary=summary or (doc[0] if doc else ""),
        )
        spec_class.family_name = name
        return spec_class

    return register


def _table() -> Dict[str, FamilyInfo]:
    """The registry with every family module guaranteed to have run.

    The spec classes live in their own modules (``powerinfo`` in
    :mod:`repro.trace.synthetic`); importing them here, lazily, makes
    lookups work no matter which package the caller entered through --
    the same idiom as the live-admission table.
    """
    import repro.trace.families.cdf  # noqa: F401  (registration side effect)
    import repro.trace.families.powerinfo  # noqa: F401
    import repro.trace.families.stress  # noqa: F401
    import repro.trace.families.tracefile  # noqa: F401

    return _REGISTRY


def family_names() -> List[str]:
    """Registered workload-family names, sorted."""
    return sorted(_table())


def get_family(name: str) -> FamilyInfo:
    """Look up one registered workload family.

    Raises
    ------
    ConfigurationError
        For unknown names, with a close-match suggestion and the list
        of registered ones -- the same contract CLI experiment names
        follow.
    """
    table = _table()
    try:
        return table[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload family {name!r}"
            f"{suggest(str(name), family_names())} "
            f"(choose from {family_names()})"
        ) from None


def iter_families() -> List[FamilyInfo]:
    """All registered workload families, in name order."""
    table = _table()
    return [table[name] for name in family_names()]


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def spec_to_dict(model: WorkloadModel) -> Dict[str, Any]:
    """Serialize a workload spec: family + identity + non-default fields.

    ``powerinfo`` omits the ``family`` key (it is the ``from_dict``
    default), so scenario files written before the registry existed --
    and files that do not use it -- stay byte-stable.  Nested family
    fields (the stress shapes' ``base``) recurse.
    """
    name = getattr(model, "family_name", None)
    if not isinstance(model, WorkloadModel) or name is None:
        raise ConfigurationError(
            f"{type(model).__name__} is not a registered workload-family "
            f"spec; register it with @workload_family to make it "
            f"serializable"
        )
    payload: Dict[str, Any] = {}
    if name != "powerinfo":
        payload["family"] = name
    for field in dataclasses.fields(model):
        if not field.init:
            continue
        value = getattr(model, field.name)
        if field.name not in model.serialize_always:
            if field.default is not dataclasses.MISSING:
                if value == field.default:
                    continue
            elif field.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
                if value == field.default_factory():  # type: ignore[misc]
                    continue
        if isinstance(value, WorkloadModel):
            value = spec_to_dict(value)
        payload[field.name] = value
    return payload


def spec_from_dict(payload: Dict[str, Any]) -> WorkloadModel:
    """Rebuild a workload spec from its :func:`spec_to_dict` form.

    A missing ``family`` key means ``powerinfo`` (the pre-registry file
    format).  Unknown families and unknown fields raise
    :class:`~repro.errors.ConfigurationError` with close-match hints.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"a trace model must be a dict, got {payload!r}"
        )
    data = dict(payload)
    info = get_family(str(data.pop("family", "powerinfo")))
    cls = info.spec_class
    valid = {f.name for f in dataclasses.fields(cls) if f.init}
    unknown = sorted(set(data) - valid)
    if unknown:
        raise ConfigurationError(
            f"workload family {info.name!r} has no fields {unknown} "
            f"(have {sorted(valid)})"
        )
    tuples = {
        f.name for f in dataclasses.fields(cls)
        if "Tuple" in str(f.type) or "tuple" in str(f.type)
    }
    nested = cls.nested_family_fields
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key in nested and isinstance(value, (dict, str)):
            value = coerce_trace_model(value)
        elif key in tuples and isinstance(value, list):
            value = tuple(
                tuple(v) if isinstance(v, list) else v for v in value
            )
        kwargs[key] = value
    return cls(**kwargs)


def coerce_trace_model(
    value: Union[str, Dict[str, Any], WorkloadModel],
) -> WorkloadModel:
    """Accept a spec, a family name, or a spec dict (scenario ``trace``)."""
    if isinstance(value, WorkloadModel):
        return value
    if isinstance(value, str):
        return get_family(value).spec_class()
    if isinstance(value, dict):
        return spec_from_dict(value)
    raise ConfigurationError(
        f"a trace model must be a spec, a registered family name, or a "
        f"dict, got {value!r}"
    )
