"""Sanity checks and a summary report for imported traces.

Downstream users will run the simulator against their own session logs
(via :mod:`repro.trace.io`).  A trace that parses can still be
statistically degenerate -- one user, one hour of data, no repeats --
and will then produce meaningless caching results.  :func:`validate`
checks the properties the simulator's results actually depend on and
returns machine-readable findings instead of failing late and obscurely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro import units
from repro.trace.records import Trace
from repro.trace.stats import hourly_data_rate

#: Severity levels, in increasing order of concern.
INFO = "info"
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One validation observation."""

    severity: str
    code: str
    message: str


@dataclass
class ValidationReport:
    """All findings plus the summary statistics they were derived from."""

    n_sessions: int
    n_users: int
    n_programs: int
    span_days: float
    repeat_fraction: float
    peak_to_trough: float
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return all(f.severity != ERROR for f in self.findings)

    def errors(self) -> List[Finding]:
        """Only the error-severity findings."""
        return [f for f in self.findings if f.severity == ERROR]

    def summary(self) -> str:
        """Human-readable digest."""
        lines = [
            f"sessions={self.n_sessions}  users={self.n_users}  "
            f"programs={self.n_programs}  span={self.span_days:.1f}d  "
            f"repeats={self.repeat_fraction:.0%}  "
            f"peak/trough={self.peak_to_trough:.1f}x",
        ]
        for finding in self.findings:
            lines.append(f"[{finding.severity}] {finding.code}: {finding.message}")
        if not self.findings:
            lines.append("no findings: trace looks healthy")
        return "\n".join(lines)


def validate(
    trace: Trace,
    min_sessions: int = 100,
    min_span_days: float = 2.0,
    min_repeat_fraction: float = 0.2,
) -> ValidationReport:
    """Check that ``trace`` can support meaningful caching experiments.

    Parameters are the thresholds below which findings escalate; the
    defaults reflect what the reproduction experiments need (multi-day
    span for warm-up, enough repeats for any cache to matter).
    """
    n_sessions = len(trace)
    counts = trace.sessions_per_program() if n_sessions else {}
    accessed_programs = len(counts)
    repeats = sum(c - 1 for c in counts.values())
    repeat_fraction = repeats / n_sessions if n_sessions else 0.0

    if n_sessions:
        rates = hourly_data_rate(trace)
        positive = [r for r in rates if r > 0]
        peak_to_trough = (max(rates) / min(positive)) if positive else 0.0
    else:
        peak_to_trough = 0.0

    report = ValidationReport(
        n_sessions=n_sessions,
        n_users=trace.n_users,
        n_programs=len(trace.catalog),
        span_days=trace.span_days,
        repeat_fraction=repeat_fraction,
        peak_to_trough=peak_to_trough,
    )
    add = report.findings.append

    if n_sessions == 0:
        add(Finding(ERROR, "empty", "trace contains no sessions"))
        return report
    if n_sessions < min_sessions:
        add(Finding(ERROR, "too-few-sessions",
                    f"{n_sessions} sessions < required {min_sessions}"))
    if trace.span_days < min_span_days:
        add(Finding(ERROR, "short-span",
                    f"trace spans {trace.span_days:.2f} days; experiments "
                    f"need at least {min_span_days} for warm-up"))
    if repeat_fraction < min_repeat_fraction:
        add(Finding(WARNING, "few-repeats",
                    f"only {repeat_fraction:.0%} of sessions are repeat "
                    "accesses; caching results will be miss-dominated"))
    if trace.n_users < 10:
        add(Finding(WARNING, "tiny-population",
                    f"{trace.n_users} users cannot form realistic "
                    "neighborhoods"))
    if accessed_programs < len(trace.catalog) * 0.05:
        add(Finding(INFO, "sparse-catalog",
                    f"only {accessed_programs}/{len(trace.catalog)} catalog "
                    "programs are ever accessed"))
    if peak_to_trough < 1.5:
        add(Finding(INFO, "flat-diurnal",
                    "hourly load is nearly flat; 'peak hour' metrics will "
                    "not be meaningful"))

    mean_length = sum(
        r.duration_seconds for r in trace
    ) / n_sessions
    if mean_length > 2 * units.SECONDS_PER_HOUR:
        add(Finding(WARNING, "long-sessions",
                    f"mean session {mean_length / 60:.0f} min is unusually "
                    "long for VoD; check duration units"))
    return report
