"""Workloads: a registered trace model plus the paper's scaling transforms.

The scalability experiments (Figs 15/16, Table 16a) do not re-model the
workload -- they *transform* the base trace multiplicatively (section
V-A): population copies with jittered start times, catalog copies with
randomized redirection (:mod:`repro.trace.scaling`).  A
:class:`Workload` captures one such transformed trace as a small frozen
value -- any registered :class:`~repro.trace.families.WorkloadModel`
spec plus the two scale factors -- so the scenario layer can serialize
it, sweep axes can vary it, and parallel workers can regenerate the
exact trace from a few-field dataclass instead of pickling tens of
millions of records.

Determinism: the base trace is deterministic in its model (the family
contract), and both transforms consume fixed-seed random streams, so
the same workload always yields the byte-identical trace -- in this
process or any worker.

Memoization mirrors :func:`repro.trace.synthetic.cached_trace`: the
identity workload shares the model-trace cache directly; transformed
traces keep a small LRU of their own (population-major sweeps reuse the
population step across every catalog factor).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigurationError
from repro.trace.families import WorkloadModel
from repro.trace.records import Trace
from repro.trace.scaling import scale_catalog, scale_population
from repro.trace.synthetic import (
    PowerInfoModel,
    cached_trace,
    resolve_trace_backend,
)


@dataclass(frozen=True)
class Workload:
    """One (possibly transformed) workload as a hashable value.

    Attributes
    ----------
    model:
        The registered workload-family spec the workload starts from.
    population_x:
        Integer population multiplier (paper section V-A: ``n`` copies
        of every user, extra copies jittered 1-60 s).  ``1`` = identity.
    catalog_x:
        Integer catalog multiplier (``n`` copies of every program, each
        event redirected to a uniform-random copy).  ``1`` = identity.
    """

    model: WorkloadModel
    population_x: int = 1
    catalog_x: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.model, WorkloadModel):
            raise ConfigurationError(
                f"model must be a registered workload-family spec "
                f"(e.g. PowerInfoModel), got {type(self.model).__name__}"
            )
        for name in ("population_x", "catalog_x"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"{name} must be an integer >= 1, got {value!r}"
                )
        if not self.is_identity and not self.model.supports_transforms:
            raise ConfigurationError(
                f"workload family {self.model.family_name!r} does not "
                f"support the population/catalog transforms "
                f"(population_x={self.population_x}, "
                f"catalog_x={self.catalog_x})"
            )

    @property
    def is_identity(self) -> bool:
        """Whether this workload is just the base trace, untransformed."""
        return self.population_x == 1 and self.catalog_x == 1

    def build(self) -> Trace:
        """Generate the transformed trace from scratch (no caches).

        Population scaling applies first, catalog scaling second -- the
        order the paper's grid construction uses, and the order every
        cached path must reproduce for bit-identical results.
        """
        trace = self.model.build_trace()
        trace = scale_population(trace, self.population_x)
        return scale_catalog(trace, self.catalog_x)


@lru_cache(maxsize=3)
def _cached_family_trace(model: WorkloadModel, backend: str) -> Trace:
    """Per-model memo for non-powerinfo families.

    ``powerinfo`` keeps resolving through the long-standing
    :func:`~repro.trace.synthetic.cached_trace` (so object identity
    with every pre-registry caller is preserved); the other families
    get a small LRU of their own -- big enough for a stress shape, its
    base, and one more model in a mixed sweep.
    """
    return model.build_trace(backend)


def cached_model_trace(model: WorkloadModel) -> Trace:
    """The (memoized) untransformed trace of any registered spec."""
    if isinstance(model, PowerInfoModel):
        return cached_trace(model)
    return _cached_family_trace(model, resolve_trace_backend())


# maxsize=1 on both memos deliberately mirrors the residency of the old
# hand-rolled grid loop (one population intermediate + one scaled trace
# at a time): a population-major grid gets full hit rates, while peak
# memory stays ~one 5x trace per stage even at paper scale.  A worker
# interleaving factors merely re-applies a linear-time transform.

@lru_cache(maxsize=1)
def _cached_population_trace(model: WorkloadModel, factor: int,
                             backend: str) -> Trace:
    """The population-scaled intermediate, shared across catalog factors."""
    return scale_population(cached_model_trace(model), factor)


@lru_cache(maxsize=1)
def _cached_transformed_trace(workload: Workload, backend: str) -> Trace:
    """Memoized transform composition for non-identity workloads."""
    if workload.population_x > 1:
        base = _cached_population_trace(workload.model, workload.population_x,
                                        backend)
    else:
        base = cached_model_trace(workload.model)
    return scale_catalog(base, workload.catalog_x)


def cached_workload_trace(workload: Workload) -> Trace:
    """The (memoized) trace of ``workload``.

    Identity workloads resolve straight through
    :func:`cached_model_trace`, so every layer that replays "the trace
    of this model" keeps sharing one generation per process.
    Transformed traces are cached in a deliberately small LRU (scaled
    traces are up to ``population_x`` times the base trace); evicted
    entries simply re-apply the linear-time transforms.  Like
    ``cached_trace``, entries key on the resolved generator backend so
    a mid-process ``REPRO_TRACE_BACKEND`` flip never serves a stale
    other-backend transform.
    """
    if workload.is_identity:
        return cached_model_trace(workload.model)
    return _cached_transformed_trace(workload, resolve_trace_backend())
