"""Trace serialization.

Generated workloads can be expensive to synthesize at scale, and
downstream users may want to run the simulator against their own session
logs.  This module defines a simple two-section CSV container:

* a catalog section -- one row per program (id, length, introduction);
* a records section -- one row per session (start, user, program,
  duration).

The format is line-oriented, diff-friendly, and loads with no third-party
dependencies.
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import List, TextIO, Union

from repro.errors import TraceFormatError
from repro.trace.records import Catalog, Program, SessionRecord, Trace

_CATALOG_HEADER = ["program_id", "length_seconds", "introduced_at"]
_RECORD_HEADER = ["start_time", "user_id", "program_id", "duration_seconds"]
_CATALOG_MARK = "#catalog"
_RECORDS_MARK = "#records"
_META_MARK = "#meta"


def dump_trace(trace: Trace, destination: Union[str, Path, TextIO]) -> None:
    """Write ``trace`` to a path or text file object."""
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            _write(trace, handle)
    else:
        _write(trace, destination)


def dumps_trace(trace: Trace) -> str:
    """Serialize ``trace`` to a string."""
    buffer = _io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def load_trace(source: Union[str, Path, TextIO]) -> Trace:
    """Read a trace previously written by :func:`dump_trace`."""
    if isinstance(source, (str, Path)):
        with open(source, "r", newline="") as handle:
            return _read(handle)
    return _read(source)


def loads_trace(text: str) -> Trace:
    """Parse a trace from a string."""
    return _read(_io.StringIO(text))


def _write(trace: Trace, handle: TextIO) -> None:
    writer = csv.writer(handle)
    handle.write(f"{_META_MARK}\n")
    writer.writerow(["n_users", trace.n_users])
    handle.write(f"{_CATALOG_MARK}\n")
    writer.writerow(_CATALOG_HEADER)
    for program in trace.catalog:
        writer.writerow(
            [program.program_id, repr(program.length_seconds), repr(program.introduced_at)]
        )
    handle.write(f"{_RECORDS_MARK}\n")
    writer.writerow(_RECORD_HEADER)
    for record in trace:
        writer.writerow(
            [
                repr(record.start_time),
                record.user_id,
                record.program_id,
                repr(record.duration_seconds),
            ]
        )


def _read(handle: TextIO) -> Trace:
    section = None
    n_users = None
    programs: List[Program] = []
    records: List[SessionRecord] = []
    expect_header = False
    for line_number, raw in enumerate(handle, start=1):
        line = raw.rstrip("\n").rstrip("\r")
        if not line:
            continue
        if line in (_META_MARK, _CATALOG_MARK, _RECORDS_MARK):
            section = line
            expect_header = section != _META_MARK
            continue
        if section is None:
            raise TraceFormatError(
                f"line {line_number}: content before any section marker"
            )
        fields = next(csv.reader([line]))
        if expect_header:
            expected = _CATALOG_HEADER if section == _CATALOG_MARK else _RECORD_HEADER
            if fields != expected:
                raise TraceFormatError(
                    f"line {line_number}: bad {section} header {fields!r}, "
                    f"expected {expected!r}"
                )
            expect_header = False
            continue
        try:
            if section == _META_MARK:
                if fields[0] == "n_users":
                    n_users = int(fields[1])
                else:
                    raise TraceFormatError(
                        f"line {line_number}: unknown meta key {fields[0]!r}"
                    )
            elif section == _CATALOG_MARK:
                programs.append(
                    Program(
                        program_id=int(fields[0]),
                        length_seconds=float(fields[1]),
                        introduced_at=float(fields[2]),
                    )
                )
            else:
                records.append(
                    SessionRecord(
                        start_time=float(fields[0]),
                        user_id=int(fields[1]),
                        program_id=int(fields[2]),
                        duration_seconds=float(fields[3]),
                    )
                )
        except (ValueError, IndexError) as exc:
            raise TraceFormatError(
                f"line {line_number}: cannot parse {section} row {line!r}: {exc}"
            ) from exc
    if section is None:
        raise TraceFormatError("input contains no trace sections")
    return Trace(records, Catalog(programs), n_users=n_users)
