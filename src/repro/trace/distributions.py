"""Probability distributions used by the synthetic workload generator.

Implemented from scratch (no scipy dependency in the core library) so the
generator is self-contained:

* Zipf weights over a finite support -- program popularity skew;
* the standard normal CDF and its inverse (Acklam's rational
  approximation) -- building blocks for lognormal sampling;
* truncated lognormal sampling via inverse-CDF -- session lengths are
  heavy-tailed but can never exceed the program length, and rejection
  sampling would be unboundedly slow for short programs;
* the closed-form mean of ``min(X, L)`` for lognormal ``X`` -- used by
  the analytic calibration that pins the no-cache peak load to the
  paper's 17 Gb/s anchor.
"""

from __future__ import annotations

import math
import random
from typing import List, Sequence

from repro.errors import ConfigurationError

# --------------------------------------------------------------------------
# Zipf
# --------------------------------------------------------------------------


def zipf_weights(n: int, exponent: float, shift: float = 0.0) -> List[float]:
    """Normalized Zipf-Mandelbrot weights over ranks ``1..n``.

    ``weights[k]`` is proportional to ``(k + 1 + shift) ** -exponent``;
    the list sums to 1.0.  ``shift = 0`` is classic Zipf; positive shifts
    flatten the head, the form Yu et al. (EuroSys 2006) report for real
    VoD popularity: the very top titles are closer to each other than a
    pure power law predicts, while the tail still decays fast.  Exponent
    0 degenerates to a uniform distribution.
    """
    if n <= 0:
        raise ConfigurationError(f"zipf support size must be positive, got {n}")
    if exponent < 0:
        raise ConfigurationError(f"zipf exponent must be non-negative, got {exponent}")
    if shift < 0:
        raise ConfigurationError(f"zipf shift must be non-negative, got {shift}")
    raw = [(rank + 1 + shift) ** -exponent for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def cumulative(weights: Sequence[float]) -> List[float]:
    """Running sum of ``weights`` with the final entry forced to 1.0.

    Forcing the last entry removes float-accumulation slop so that a
    uniform draw in [0, 1) can never bisect past the end.
    """
    out: List[float] = []
    acc = 0.0
    for w in weights:
        if w < 0:
            raise ConfigurationError(f"negative weight {w} in distribution")
        acc += w
        out.append(acc)
    if not out or acc <= 0:
        raise ConfigurationError("cannot build cumulative of empty/zero weights")
    scale = 1.0 / acc
    out = [v * scale for v in out]
    out[-1] = 1.0
    return out


# --------------------------------------------------------------------------
# Normal CDF and inverse CDF
# --------------------------------------------------------------------------

_SQRT2 = math.sqrt(2.0)


def normal_cdf(x: float) -> float:
    """Standard normal cumulative distribution function."""
    return 0.5 * (1.0 + math.erf(x / _SQRT2))


# Coefficients for Acklam's inverse normal CDF approximation
# (relative error < 1.15e-9 over the full open interval).
_A = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
      1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
_B = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
      6.680131188771972e+01, -1.328068155288572e+01)
_C = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
      -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
_D = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
      3.754408661907416e+00)

_P_LOW = 0.02425
_P_HIGH = 1.0 - _P_LOW


def normal_ppf(p: float) -> float:
    """Inverse of the standard normal CDF (percent-point function).

    Raises
    ------
    ConfigurationError
        If ``p`` is outside the open interval (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ConfigurationError(f"normal_ppf requires 0 < p < 1, got {p}")
    if p < _P_LOW:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    if p > _P_HIGH:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((_C[0] * q + _C[1]) * q + _C[2]) * q + _C[3]) * q + _C[4]) * q + _C[5]) / (
            (((_D[0] * q + _D[1]) * q + _D[2]) * q + _D[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((_A[0] * r + _A[1]) * r + _A[2]) * r + _A[3]) * r + _A[4]) * r + _A[5]) * q / (
        ((((_B[0] * r + _B[1]) * r + _B[2]) * r + _B[3]) * r + _B[4]) * r + 1.0
    )


# --------------------------------------------------------------------------
# Truncated lognormal
# --------------------------------------------------------------------------


class TruncatedLogNormal:
    """LogNormal(``mu``, ``sigma``) truncated to ``[lower, upper]``.

    Sampling uses the inverse-CDF method restricted to the truncated
    probability band, so every draw costs exactly one uniform variate
    regardless of how aggressive the truncation is.
    """

    def __init__(self, mu: float, sigma: float, lower: float, upper: float) -> None:
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if lower <= 0:
            raise ConfigurationError(f"lower bound must be positive, got {lower}")
        if upper <= lower:
            raise ConfigurationError(
                f"upper bound {upper} must exceed lower bound {lower}"
            )
        self.mu = mu
        self.sigma = sigma
        self.lower = lower
        self.upper = upper
        self._cdf_lower = self._cdf(lower)
        self._cdf_upper = self._cdf(upper)
        if self._cdf_upper - self._cdf_lower <= 1e-12:
            raise ConfigurationError(
                f"truncation window [{lower}, {upper}] carries no probability "
                f"mass for LogNormal(mu={mu}, sigma={sigma})"
            )

    def _cdf(self, x: float) -> float:
        return normal_cdf((math.log(x) - self.mu) / self.sigma)

    def sample(self, rng: random.Random) -> float:
        """Draw one variate from the truncated distribution."""
        u = self._cdf_lower + rng.random() * (self._cdf_upper - self._cdf_lower)
        # Clamp away from {0, 1}: u can touch the boundary through float
        # rounding, and normal_ppf requires the open interval.
        u = min(max(u, 1e-12), 1.0 - 1e-12)
        value = math.exp(self.mu + self.sigma * normal_ppf(u))
        return min(max(value, self.lower), self.upper)


def lognormal_capped_mean(mu: float, sigma: float, cap: float) -> float:
    """Closed-form ``E[min(X, cap)]`` for ``X ~ LogNormal(mu, sigma)``.

    Standard result::

        E[min(X, L)] = exp(mu + sigma^2/2) * Phi((ln L - mu - sigma^2)/sigma)
                       + L * (1 - Phi((ln L - mu)/sigma))

    Used by the workload calibrator, which needs the expected session
    length for each program length without Monte Carlo noise.
    """
    if cap <= 0:
        raise ConfigurationError(f"cap must be positive, got {cap}")
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    ln_cap = math.log(cap)
    mean_full = math.exp(mu + sigma * sigma / 2.0)
    below = normal_cdf((ln_cap - mu - sigma * sigma) / sigma)
    above = 1.0 - normal_cdf((ln_cap - mu) / sigma)
    return mean_full * below + cap * above


def lognormal_truncated_mean(mu: float, sigma: float, lower: float, upper: float) -> float:
    """Mean of ``X ~ LogNormal(mu, sigma)`` conditioned on ``lower <= X <= upper``.

    Distinct from :func:`lognormal_capped_mean`: truncation *renormalizes*
    the retained probability mass instead of piling the excess onto the
    bound, so the truncated mean is strictly smaller than the capped mean
    for heavy upper tails.  This is the exact expectation of
    :class:`TruncatedLogNormal` samples and therefore what workload
    calibration must use.
    """
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    if lower <= 0 or upper <= lower:
        raise ConfigurationError(
            f"need 0 < lower < upper, got [{lower}, {upper}]"
        )

    def partial_expectation(bound: float) -> float:
        """E[X ; X <= bound] = exp(mu + s^2/2) * Phi((ln b - mu - s^2)/s)."""
        return math.exp(mu + sigma * sigma / 2.0) * normal_cdf(
            (math.log(bound) - mu - sigma * sigma) / sigma
        )

    mass = normal_cdf((math.log(upper) - mu) / sigma) - normal_cdf(
        (math.log(lower) - mu) / sigma
    )
    if mass <= 1e-12:
        raise ConfigurationError(
            f"truncation window [{lower}, {upper}] carries no probability "
            f"mass for LogNormal(mu={mu}, sigma={sigma})"
        )
    return (partial_expectation(upper) - partial_expectation(lower)) / mass
