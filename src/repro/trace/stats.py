"""Trace analyses behind the paper's workload-characterization figures.

Each public function maps to a paper exhibit:

* :func:`popularity_timeseries`  -> Fig 2 (skew in file popularity)
* :func:`session_length_cdf`     -> Fig 3 / Fig 6 (session-length ECDFs)
* :func:`infer_program_length`   -> the section V-A length-inference trick
* :func:`hourly_data_rate`       -> Fig 7 (most popular hours)
* :func:`popularity_decay`       -> Fig 12 (popularity after introduction)

All functions operate on plain :class:`~repro.trace.records.Trace` objects
so they work equally on synthetic and imported traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.errors import TraceError
from repro.trace.records import Trace

#: The paper's peak-hour reporting window (19:00-22:59).
PEAK_HOURS: Tuple[int, ...] = (19, 20, 21, 22)


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: sorted sample values and cumulative probabilities."""

    values: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def probability_at(self, x: float) -> float:
        """P(X <= x) under the empirical distribution."""
        # Linear scan is fine: ECDFs here have at most a few thousand points
        # and this accessor is used for spot checks, not inner loops.
        prob = 0.0
        for value, cumulative in zip(self.values, self.probabilities):
            if value <= x:
                prob = cumulative
            else:
                break
        return prob

    def quantile(self, q: float) -> float:
        """Smallest sample value with cumulative probability >= ``q``."""
        if not 0.0 <= q <= 1.0:
            raise TraceError(f"quantile must be in [0, 1], got {q}")
        for value, cumulative in zip(self.values, self.probabilities):
            if cumulative >= q:
                return value
        return self.values[-1]


def ecdf(samples: Sequence[float]) -> Ecdf:
    """Build an :class:`Ecdf` from raw samples."""
    if not samples:
        raise TraceError("cannot build an ECDF from zero samples")
    ordered = sorted(samples)
    n = len(ordered)
    values: List[float] = []
    probs: List[float] = []
    for index, value in enumerate(ordered, start=1):
        if values and value == values[-1]:
            probs[-1] = index / n
        else:
            values.append(value)
            probs.append(index / n)
    return Ecdf(tuple(values), tuple(probs))


# --------------------------------------------------------------------------
# Fig 2 -- popularity skew
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PopularitySkew:
    """Sessions initiated per window for programs at several popularity ranks.

    ``window_starts[i]`` is the start time of window ``i``; the three
    series give the per-window session-initiation counts of the most
    popular program and of the programs sitting at the 99% and 95%
    popularity quantiles, exactly the three curves of Fig 2.
    """

    window_starts: Tuple[float, ...]
    max_series: Tuple[int, ...]
    q99_series: Tuple[int, ...]
    q95_series: Tuple[int, ...]
    max_program: int
    q99_program: int
    q95_program: int

    def peak_counts(self) -> Tuple[int, int, int]:
        """Largest per-window count of each series (max, q99, q95)."""
        return (
            max(self.max_series, default=0),
            max(self.q99_series, default=0),
            max(self.q95_series, default=0),
        )


def _program_at_quantile(ranked: List[Tuple[int, int]], quantile: float) -> int:
    """Program id at a popularity quantile of the ranked (count, id) list.

    ``ranked`` must be sorted most-popular-first.  ``quantile=0.99`` picks
    the program more popular than 99% of the catalog's *accessed* items.
    """
    if not ranked:
        raise TraceError("cannot take popularity quantile of an empty ranking")
    position = int(round((1.0 - quantile) * (len(ranked) - 1)))
    return ranked[position][1]


def popularity_timeseries(
    trace: Trace,
    window_seconds: float = 15.0 * units.SECONDS_PER_MINUTE,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> PopularitySkew:
    """Reproduce Fig 2: session initiations per 15-minute window.

    Ranks programs by total sessions in ``[start, end)``, picks the most
    popular program plus the 99%- and 95%-quantile programs, and counts
    their session initiations in tumbling windows.
    """
    if window_seconds <= 0:
        raise TraceError(f"window must be positive, got {window_seconds}")
    lo = trace.start_time if start is None else start
    hi = trace.end_time if end is None else end
    records = trace.records_between(lo, hi)
    if not records:
        raise TraceError(f"no sessions in window [{lo}, {hi})")

    totals: Dict[int, int] = {}
    for record in records:
        totals[record.program_id] = totals.get(record.program_id, 0) + 1
    ranked = sorted(((count, pid) for pid, count in totals.items()), reverse=True)
    ranked_pairs = [(count, pid) for count, pid in ranked]
    max_program = ranked_pairs[0][1]
    q99_program = _program_at_quantile(ranked_pairs, 0.99)
    q95_program = _program_at_quantile(ranked_pairs, 0.95)

    n_windows = max(1, int(math.ceil((hi - lo) / window_seconds)))
    series = {pid: [0] * n_windows for pid in (max_program, q99_program, q95_program)}
    for record in records:
        if record.program_id in series:
            index = min(n_windows - 1, int((record.start_time - lo) / window_seconds))
            series[record.program_id][index] += 1

    window_starts = tuple(lo + i * window_seconds for i in range(n_windows))
    return PopularitySkew(
        window_starts=window_starts,
        max_series=tuple(series[max_program]),
        q99_series=tuple(series[q99_program]),
        q95_series=tuple(series[q95_program]),
        max_program=max_program,
        q99_program=q99_program,
        q95_program=q95_program,
    )


# --------------------------------------------------------------------------
# Figs 3 and 6 -- session lengths
# --------------------------------------------------------------------------


def session_length_cdf(trace: Trace, program_id: Optional[int] = None) -> Ecdf:
    """ECDF of session lengths, optionally for a single program.

    With ``program_id`` of the most popular program this is Fig 3 (and,
    at full x-range, Fig 6).
    """
    if program_id is None:
        durations = [r.duration_seconds for r in trace]
    else:
        durations = [r.duration_seconds for r in trace if r.program_id == program_id]
    if not durations:
        raise TraceError(
            f"no sessions found{'' if program_id is None else f' for program {program_id}'}"
        )
    return ecdf(durations)


@dataclass(frozen=True)
class AttritionSummary:
    """Mid-stream attrition facts the paper quotes against multicast.

    For the paper's most popular (100-minute) program: "50% of the
    sessions last less than 8 minutes.  Only 13% of all sessions surpass
    the half way mark."
    """

    program_id: int
    program_length_seconds: float
    median_session_seconds: float
    fraction_past_halfway: float
    fraction_completing: float


def attrition_summary(trace: Trace, program_id: Optional[int] = None) -> AttritionSummary:
    """Quantify short-attention viewing for one program (default: most popular)."""
    if program_id is None:
        program_id = trace.most_popular_program()
    program = trace.catalog[program_id]
    durations = [r.duration_seconds for r in trace if r.program_id == program_id]
    if not durations:
        raise TraceError(f"program {program_id} has no sessions")
    distribution = ecdf(durations)
    halfway = program.length_seconds / 2.0
    past_half = sum(1 for d in durations if d > halfway) / len(durations)
    completing = sum(
        1 for d in durations if d >= program.length_seconds - 1.0
    ) / len(durations)
    return AttritionSummary(
        program_id=program_id,
        program_length_seconds=program.length_seconds,
        median_session_seconds=distribution.quantile(0.5),
        fraction_past_halfway=past_half,
        fraction_completing=completing,
    )


def infer_program_length(durations: Sequence[float],
                         tolerance_seconds: float = 60.0) -> float:
    """Infer a program's length from its session-duration ECDF jump.

    The paper (section V-A) observes that every program's session-length
    ECDF has a pronounced jump at the true running time, contributed by
    viewers who watch to the end, and extracts lengths by inspecting the
    ECDFs.  This automates the inspection: cluster durations within
    ``tolerance_seconds`` and return the center of the *latest* cluster
    that holds a materially larger share of sessions than its neighborhood
    of the tail.

    Works even when the completion atom is modest (~13% of sessions)
    because no other duration value recurs: abandonment points are
    smeared across the program, while completions all land on the same
    running time -- necessarily the *longest* duration observed.
    """
    if not durations:
        raise TraceError("cannot infer a length from zero sessions")
    ordered = sorted(durations)
    n = len(ordered)
    clusters: List[Tuple[float, int]] = []  # (longest value in cluster, count)
    anchor = ordered[0]
    count = 0
    last_value = ordered[0]
    for value in ordered:
        if value - anchor <= tolerance_seconds:
            count += 1
            last_value = value
        else:
            clusters.append((last_value, count))
            anchor = value
            count = 1
            last_value = value
    clusters.append((last_value, count))

    # Primary signal: an atom at the maximum duration.  Completions all
    # watch exactly the running time, so the final cluster carries
    # repeated mass whenever anyone finished the program.
    final_value, final_count = clusters[-1]
    if final_count >= max(2, round(0.01 * n)):
        return final_value

    # No one completed (or a stray outlier sits alone at the top): fall
    # back to the heaviest cluster in the upper half of the duration
    # range, favoring the longest on ties.
    threshold = ordered[-1] / 2.0
    tail = [c for c in clusters if c[0] >= threshold] or clusters
    best_value, best_count = tail[0]
    for value, cluster_count in tail:
        if cluster_count >= best_count:
            best_value, best_count = value, cluster_count
    return best_value


# --------------------------------------------------------------------------
# Fig 7 -- diurnal load
# --------------------------------------------------------------------------


def hourly_data_rate(trace: Trace) -> List[float]:
    """Average delivered data rate (bits/s) per hour of day (Fig 7).

    Spreads each session's bits across the wall-clock hours it spans, then
    averages every hour-of-day bucket over the days the trace covers.
    """
    if len(trace) == 0:
        raise TraceError("cannot compute hourly rates of an empty trace")
    n_days = max(1.0, math.ceil(trace.end_time / units.SECONDS_PER_DAY))
    bits_by_hour_of_day = [0.0] * units.HOURS_PER_DAY
    for record in trace:
        start = record.start_time
        remaining = record.duration_seconds
        while remaining > 0:
            hour_end = (math.floor(start / units.SECONDS_PER_HOUR) + 1) * units.SECONDS_PER_HOUR
            span = min(remaining, hour_end - start)
            bits_by_hour_of_day[units.hour_of_day(start)] += span * units.STREAM_RATE_BPS
            start += span
            remaining -= span
    seconds_per_bucket = n_days * units.SECONDS_PER_HOUR
    return [bits / seconds_per_bucket for bits in bits_by_hour_of_day]


def peak_hour_rate(trace: Trace) -> float:
    """Average delivered rate (bits/s) over the 19:00-23:00 peak window."""
    rates = hourly_data_rate(trace)
    return sum(rates[h] for h in PEAK_HOURS) / len(PEAK_HOURS)


# --------------------------------------------------------------------------
# Fig 12 -- popularity decay after introduction
# --------------------------------------------------------------------------


def popularity_decay(
    trace: Trace,
    max_days: int = 14,
    min_first_day_sessions: int = 10,
) -> List[float]:
    """Average sessions/day vs. days since introduction (Fig 12).

    Considers programs introduced inside the trace window early enough to
    observe ``max_days`` days of life, and with a non-trivial first-day
    audience (quiet programs only add noise).  Returns mean sessions per
    program for each day offset ``0..max_days-1``.
    """
    window_end = trace.end_time
    eligible = [
        p
        for p in trace.catalog
        if p.introduced_at >= 0
        and p.introduced_at + max_days * units.SECONDS_PER_DAY <= window_end
    ]
    if not eligible:
        raise TraceError(
            f"no programs are observable for {max_days} days after introduction"
        )
    eligible_ids = {p.program_id: p.introduced_at for p in eligible}
    per_program: Dict[int, List[int]] = {
        pid: [0] * max_days for pid in eligible_ids
    }
    for record in trace:
        introduced = eligible_ids.get(record.program_id)
        if introduced is None:
            continue
        day = int((record.start_time - introduced) // units.SECONDS_PER_DAY)
        if 0 <= day < max_days:
            per_program[record.program_id][day] += 1

    active = [
        counts
        for counts in per_program.values()
        if counts[0] >= min_first_day_sessions
    ]
    if not active:
        raise TraceError(
            f"no program reached {min_first_day_sessions} first-day sessions; "
            "lower min_first_day_sessions or use a denser trace"
        )
    return [
        sum(counts[day] for counts in active) / len(active)
        for day in range(max_days)
    ]


def decay_ratio(curve: Sequence[float], day: int = 7) -> float:
    """Fractional popularity drop between day 0 and ``day`` of a decay curve.

    The paper reports "a week after introduction, programs are accessed
    80% less often than the first day", i.e. a ratio of ~0.8.
    """
    if len(curve) <= day:
        raise TraceError(f"decay curve has only {len(curve)} days, need {day + 1}")
    if curve[0] <= 0:
        raise TraceError("day-0 popularity is zero; ratio undefined")
    return 1.0 - curve[day] / curve[0]
