"""Workload traces: data model, statistics, synthesis, and scaling.

The paper's evaluation is driven by the *PowerInfo* trace of a deployed
VoD system (China Telecom, 2004).  That trace is proprietary, so this
package provides:

* :mod:`repro.trace.records` -- the trace data model (`Program`,
  `Catalog`, `SessionRecord`, `Trace`);
* :mod:`repro.trace.synthetic` -- a statistical workload generator
  calibrated to every property of the trace the paper publishes
  (popularity skew, session-length mixture, diurnal profile,
  post-introduction popularity decay, 17 Gb/s no-cache peak), with a
  numpy-gated vectorized backend (:mod:`repro.trace.vectorized`,
  selected via ``REPRO_TRACE_BACKEND``);
* :mod:`repro.trace.families` -- the workload-family registry
  (``@workload_family``): the powerinfo model above plus trace-driven
  log replay, piecewise-CDF synthetics, and stress shapes, all
  serializable specs regenerating byte-identical traces;
* :mod:`repro.trace.share` -- zero-copy trace hand-off to sweep
  workers: flat columns in a mapped file, attached instead of
  regenerated;
* :mod:`repro.trace.scaling` -- the paper's §V-A population/catalog
  scaling transforms;
* :mod:`repro.trace.workload` -- a model plus those transforms as one
  hashable, picklable value (`Workload`), with process-wide memoized
  materialization (`cached_workload_trace`);
* :mod:`repro.trace.stats` -- the analyses behind Figures 2, 3, 6, 7
  and 12;
* :mod:`repro.trace.io` -- CSV serialization so generated workloads can
  be saved and replayed.
"""

from repro.trace.families import WorkloadModel, family_names, workload_family
from repro.trace.records import Catalog, Program, SessionRecord, Trace
from repro.trace.synthetic import (
    PowerInfoModel,
    generate_trace,
    resolve_trace_backend,
    set_trace_backend,
)
from repro.trace.scaling import scale_catalog, scale_population
from repro.trace.workload import Workload, cached_workload_trace

__all__ = [
    "Catalog",
    "Program",
    "SessionRecord",
    "Trace",
    "PowerInfoModel",
    "Workload",
    "WorkloadModel",
    "cached_workload_trace",
    "family_names",
    "generate_trace",
    "resolve_trace_backend",
    "scale_catalog",
    "scale_population",
    "set_trace_backend",
    "workload_family",
]
