"""Zero-copy trace hand-off between a sweep parent and its workers.

A PowerInfo-scale :class:`~repro.trace.records.Trace` is tens of
millions of :class:`~repro.trace.records.SessionRecord` objects --
pickling one per pool task would dwarf the simulation, which is why
:mod:`repro.core.parallel` historically shipped the few-field
:class:`~repro.trace.workload.Workload` and had every worker
*regenerate* the trace.  Regeneration is deterministic but not free:
each worker pays the full generator (or transform) cost per distinct
workload it touches.

This module removes that cost.  The parent serializes a generated trace
once into flat typed columns inside an unlinked-on-cleanup file
(``publish_trace``), and each worker maps the file and rebuilds the
trace through the trusted ``Trace.from_columns`` path
(``attach_trace``).  The payload crossing the process boundary is a
:class:`TraceShareHandle` -- a frozen few-field dataclass -- so the
scheme is safe under both ``fork`` and ``spawn`` start methods, and the
mapped pages are shared by every worker on the host through the page
cache (the "shared memory" is the OS's, with none of the
``multiprocessing.shared_memory`` resource-tracker lifetime hazards).

Layout (version 1; little-endian header, native-order columns -- the
file's lifetime is one sweep on one host, never a cross-machine
artifact)::

    header   magic ``REPROTR1`` + uint64 n_records, n_programs, n_users
    records  start_times f8[n] | durations f8[n] | users q[n] | programs q[n]
    catalog  length_seconds f8[m] | introduced_at f8[m]

Readers slice the single mapped buffer with ``memoryview.cast``, so no
column is copied until record objects are built.  Everything here is
pure stdlib (``mmap`` + ``struct`` + ``array``); numpy is never
required, keeping the pure-python CI leg and the container image happy.
"""

from __future__ import annotations

import mmap
import os
import struct
import tempfile
from array import array
from dataclasses import dataclass
from typing import Optional

from repro.errors import TraceError
from repro.trace.records import Catalog, Program, Trace

#: File magic: 8 bytes identifying a version-1 trace share.
_MAGIC = b"REPROTR1"
_HEADER = struct.Struct("<8sQQQ")

#: ``REPRO_TRACE_SHARE`` gates the whole mechanism: ``auto`` (default)
#: publishes whenever a sweep actually fans out to multiple processes;
#: ``off`` forces the legacy regenerate-in-worker path.
_SHARE_MODES = ("auto", "off")


def share_enabled() -> bool:
    """Whether sweep parents should publish traces for their workers."""
    mode = os.environ.get("REPRO_TRACE_SHARE", "auto")
    if mode not in _SHARE_MODES:
        raise TraceError(
            f"REPRO_TRACE_SHARE must be one of {_SHARE_MODES}, got {mode!r}"
        )
    return mode == "auto"


@dataclass(frozen=True)
class TraceShareHandle:
    """A published trace as a tiny picklable value.

    Workers use the counts to slice the mapped file without trusting
    its header, and the handle doubles as the worker-side memo key, so
    two tasks sharing a workload attach (and materialize) once per
    worker process.
    """

    path: str
    n_records: int
    n_programs: int
    n_users: int


def publish_trace(trace: Trace, directory: Optional[str] = None) -> TraceShareHandle:
    """Serialize ``trace`` into a mappable column file; return its handle.

    The file lands in ``directory`` (default: the system temp dir) and
    stays until :func:`unlink_trace` -- callers own the lifetime, which
    must cover every worker attach.  Raises ``OSError`` if the file
    cannot be written (no space, unwritable dir); callers fall back to
    the regenerate path.
    """
    records = trace.records
    n = len(records)
    catalog = trace.catalog
    fd, path = tempfile.mkstemp(prefix="repro-trace-", suffix=".cols",
                                dir=directory)
    try:
        with os.fdopen(fd, "wb") as out:
            out.write(_HEADER.pack(_MAGIC, n, len(catalog), trace.n_users))
            # Generator feeds: no n-element intermediate list per column
            # in the very prelude this module exists to keep cheap.
            array("d", trace.start_times).tofile(out)
            array("d", (r.duration_seconds for r in records)).tofile(out)
            array("q", (r.user_id for r in records)).tofile(out)
            array("q", (r.program_id for r in records)).tofile(out)
            array("d", (p.length_seconds for p in catalog)).tofile(out)
            array("d", (p.introduced_at for p in catalog)).tofile(out)
    except BaseException:
        os.unlink(path)
        raise
    return TraceShareHandle(path=path, n_records=n,
                            n_programs=len(catalog), n_users=trace.n_users)


class SharedColumns:
    """Typed views over a mapped trace share, without record objects.

    The shard runner's attach path: a worker that simulates one
    neighborhood group wants to *filter* the published columns down to
    its own users before paying for ``SessionRecord`` construction, so
    it needs the raw columns rather than the finished ``Trace``.  Use
    as a context manager; every view (and the mapping behind it) dies
    at ``__exit__``, so copy whatever survives the block.
    """

    def __init__(self, handle: TraceShareHandle) -> None:
        n, m = handle.n_records, handle.n_programs
        expected = _HEADER.size + 8 * (4 * n + 2 * m)
        self._views: list = []
        self._mapped: Optional[mmap.mmap] = None
        with open(handle.path, "rb") as fh:
            if os.fstat(fh.fileno()).st_size != expected:
                raise TraceError(
                    f"trace share {handle.path} has the wrong size for "
                    f"{n} records / {m} programs"
                )
            # length=0 maps the whole file; an empty trace share is
            # smaller than a page but mmap handles that fine.
            self._mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            magic, fn, fm, fusers = _HEADER.unpack_from(self._mapped, 0)
            if magic != _MAGIC or (fn, fm, fusers) != (n, m, handle.n_users):
                raise TraceError(
                    f"trace share {handle.path} header does not match its "
                    f"handle (corrupt or stale file)"
                )
            view = memoryview(self._mapped)
            self._views.append(view)
            offset = _HEADER.size
            sections = []
            for code, count in (("d", n), ("d", n), ("q", n), ("q", n),
                                ("d", m), ("d", m)):
                size = 8 * count
                section = view[offset:offset + size].cast(code)
                self._views.append(section)
                sections.append(section)
                offset += size
            starts, durations, users, programs, lengths, introduced = sections
            self.start_times = starts
            self.durations = durations
            self.user_ids = users
            self.program_ids = programs
            self.catalog = Catalog([
                Program(program_id=i, length_seconds=lengths[i],
                        introduced_at=introduced[i])
                for i in range(m)
            ])
            self.n_users = handle.n_users
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Release every view and the mapping (idempotent)."""
        for section in reversed(self._views):
            section.release()
        self._views.clear()
        if self._mapped is not None:
            self._mapped.close()
            self._mapped = None

    def __enter__(self) -> "SharedColumns":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def attach_columns(handle: TraceShareHandle) -> SharedColumns:
    """Map ``handle``'s column file into typed views (no records built)."""
    return SharedColumns(handle)


def attach_trace(handle: TraceShareHandle) -> Trace:
    """Rebuild the published trace by mapping ``handle``'s column file.

    The file is mapped read-only and sliced into typed memoryviews;
    record objects are built straight off those views (the only copy in
    the whole hand-off).  Corrupt or truncated files raise
    :class:`~repro.errors.TraceError` -- and ``Trace.from_columns``
    re-checks the ordering/id invariants -- rather than feeding a
    damaged trace to a simulation.
    """
    with attach_columns(handle) as cols:
        return Trace.from_columns(cols.start_times, cols.user_ids,
                                  cols.program_ids, cols.durations,
                                  cols.catalog, cols.n_users)


def unlink_trace(handle: TraceShareHandle) -> None:
    """Delete a published column file (idempotent).

    Safe while workers still hold mappings: on POSIX the pages live
    until the last map goes away.
    """
    try:
        os.unlink(handle.path)
    except FileNotFoundError:
        pass
