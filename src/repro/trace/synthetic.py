"""Synthetic PowerInfo-like workload generator.

The paper's evaluation is driven by the proprietary *PowerInfo* trace
(China Telecom VoD, 2004: 41,698 users, 8,278 programs, ~20M transactions
over 7 months).  This module substitutes a statistical model calibrated to
every property of that trace the paper publishes:

========================  =================================================
Published property         Model component
========================  =================================================
Heavy popularity skew      Zipf base weights over programs (Fig 2)
Short attention spans      lognormal session lengths, median ~8 min (Fig 3)
Full-view ECDF jump        an atom of probability at the program length
                           (Fig 6; also how program lengths are inferred)
Diurnal peak 19:00-23:00   24-bucket arrival-rate profile (Fig 7)
Post-release decay         exponential popularity decay, ~80% down after
                           7 days (Fig 12)
17 Gb/s no-cache peak      analytic calibration of the per-user session
                           rate via Little's law (Figs 7/8/15)
========================  =================================================

Why this substitution preserves the paper's behaviour: every experiment in
the paper is a function of exactly these statistics.  Popularity skew and
catalog size set the achievable hit ratio; the session-length mixture sets
byte weighting and mid-stream attrition; the diurnal profile sets the peak
that all loads are reported against; the decay dynamics drive the LFU
history-length trade-off (Fig 11).

Determinism: generation consumes named sub-streams of a
:class:`~repro.sim.random_streams.RandomStreams` rooted at ``seed``, so the
same model parameters always yield the identical trace.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, replace
from bisect import bisect_left
from functools import lru_cache
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from repro import units
from repro.errors import ConfigurationError
from repro.sim.random_streams import RandomStreams
from repro.trace import distributions as dist
from repro.trace.families import WorkloadModel, workload_family
from repro.trace.records import Catalog, Program, SessionRecord, Trace

# --------------------------------------------------------------------------
# Generator backends
# --------------------------------------------------------------------------

#: Concrete generator backends.  ``python`` is the reference per-session
#: sampler below; ``numpy`` is the vectorized batch sampler in
#: :mod:`repro.trace.vectorized`.  The two draw from differently named
#: random streams, so their traces differ record-by-record while agreeing
#: on every modeled distribution (pinned by tests/trace/test_backends.py);
#: each backend is individually bit-reproducible for a given model.
TRACE_BACKENDS = ("python", "numpy")

#: Process-wide backend override installed by :func:`set_trace_backend`
#: (the CLI's ``--trace-backend`` flag).  ``None`` defers to the
#: ``REPRO_TRACE_BACKEND`` environment variable, then auto-detection.
_backend_override: Optional[str] = None

#: The ``REPRO_TRACE_BACKEND`` value that predates the active override
#: (restored when the override is cleared, so a temporary pin never
#: erases a setting the user supplied).
_env_before_override: Optional[str] = None


def numpy_available() -> bool:
    """Whether the numpy backend can run in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_trace_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``name`` may be ``"python"``, ``"numpy"``, ``"auto"`` (numpy when
    importable, else python), or ``None`` -- which consults the
    :func:`set_trace_backend` override, then the ``REPRO_TRACE_BACKEND``
    environment variable, then defaults to ``auto``.  Asking for numpy
    explicitly when it is not importable is a configuration error;
    ``auto`` silently falls back, so the container (and the pure-python
    CI leg) never needs numpy installed.
    """
    if name is None:
        name = _backend_override
    if name is None:
        name = os.environ.get("REPRO_TRACE_BACKEND", "auto")
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name not in TRACE_BACKENDS:
        raise ConfigurationError(
            f"unknown trace backend {name!r}; choose from "
            f"{('auto',) + TRACE_BACKENDS}"
        )
    if name == "numpy" and not numpy_available():
        raise ConfigurationError(
            "trace backend 'numpy' requested but numpy is not importable; "
            "install numpy or use REPRO_TRACE_BACKEND=python"
        )
    return name


def set_trace_backend(name: Optional[str]) -> None:
    """Pin the generator backend for this process (and its workers).

    The choice is mirrored into ``REPRO_TRACE_BACKEND`` so pool workers
    resolve identically under both ``fork`` and ``spawn`` start
    methods.  ``None`` clears the override and restores whatever
    ``REPRO_TRACE_BACKEND`` value predated it -- a temporary pin never
    erases a setting the user put in the environment themselves.
    """
    global _backend_override, _env_before_override
    if name is not None and name != "auto":
        # Validate eagerly so a typo fails at the flag, not mid-sweep.
        resolve_trace_backend(name)
    if name is None:
        if _backend_override is not None:
            if _env_before_override is None:
                os.environ.pop("REPRO_TRACE_BACKEND", None)
            else:
                os.environ["REPRO_TRACE_BACKEND"] = _env_before_override
            _env_before_override = None
        _backend_override = None
        return
    if _backend_override is None:
        _env_before_override = os.environ.get("REPRO_TRACE_BACKEND")
    _backend_override = name
    os.environ["REPRO_TRACE_BACKEND"] = name

#: User and catalog scale of the real PowerInfo trace (paper section V-A).
POWERINFO_USERS = 41_698
POWERINFO_PROGRAMS = 8_278

#: Peak-hour window the paper reports all loads against (section V-A:
#: "user activity reaches its climax between 7PM and 11PM").
PEAK_HOURS: Tuple[int, ...] = (19, 20, 21, 22)

#: Average no-cache server load during peak hours for the full PowerInfo
#: population (paper section VI-A: "With no cache, central servers must
#: support 17 Gb/s").
POWERINFO_PEAK_GBPS = 17.0

#: Relative arrival intensity per hour of day (normalized internally).
#: Chosen to match the Fig 7 shape: a 19:00-23:00 prime-time bulge roughly
#: 20x the 04:00 trough.
DEFAULT_DIURNAL_WEIGHTS: Tuple[float, ...] = (
    0.40, 0.25, 0.16, 0.12, 0.10, 0.10, 0.14, 0.22,  # 00:00 - 07:59
    0.32, 0.42, 0.52, 0.62, 0.72, 0.70, 0.64, 0.62,  # 08:00 - 15:59
    0.70, 0.90, 1.35, 2.05, 2.30, 2.25, 1.90, 0.95,  # 16:00 - 23:59
)

#: Program running times (minutes) and their catalog shares.  TV-movie
#: heavy, matching the 30-120 minute range the paper's figures imply
#: (Fig 3/6 discuss a ~100 minute program).
DEFAULT_LENGTH_MINUTES: Tuple[float, ...] = (30.0, 45.0, 60.0, 90.0, 100.0, 120.0)
DEFAULT_LENGTH_WEIGHTS: Tuple[float, ...] = (0.20, 0.15, 0.25, 0.15, 0.15, 0.10)


@workload_family("powerinfo", summary="calibrated synthetic PowerInfo "
                 "workload (the paper's trace)")
@dataclass(frozen=True)
class PowerInfoModel(WorkloadModel):
    """Parameters of the synthetic PowerInfo workload.

    The defaults reproduce the published trace at full scale over a
    configurable window.  Experiments typically shrink ``n_users`` and
    ``days`` and extrapolate rates linearly (the paper itself demonstrates
    the linearity in Fig 16(b)).

    Attributes
    ----------
    n_users:
        Subscriber population (ids ``0..n_users-1``).
    n_programs:
        Catalog size at generation time.
    days:
        Length of the generated window in days.
    seed:
        Root seed for all randomness.
    target_peak_gbps:
        Desired average no-cache server load over :data:`PEAK_HOURS` *at
        the anchor population*; the effective target scales linearly with
        ``n_users / anchor_users``.  ``None`` disables calibration, in
        which case ``sessions_per_user_per_day`` must be given.
    anchor_users:
        Population at which ``target_peak_gbps`` applies.
    sessions_per_user_per_day:
        Explicit arrival intensity; overrides calibration when set.
    zipf_exponent:
        Skew of the base program popularity.
    full_view_probability:
        Probability a session watches the program to completion (the
        Fig 6 ECDF atom; the paper reports "only 13% of all sessions
        surpass the half way mark" for the most popular program).
    short_session_median_seconds / short_session_sigma:
        Lognormal parameters of the non-complete sessions (median ~8
        minutes per Fig 3).
    min_session_seconds:
        Floor on session length (a channel-surf tap).
    release_fraction:
        Fraction of programs that behave like fresh releases whose
        popularity decays after introduction; the rest are evergreen
        back-catalog.
    decay_tau_days / decay_floor:
        Exponential decay constant and residual popularity of releases.
        ``tau = 4.35`` gives the paper's ~80% drop seven days after
        introduction (Fig 12).
    backcatalog_max_age_days:
        Releases introduced before the window start are aged uniformly up
        to this bound.
    user_activity_sigma:
        Lognormal spread of per-user activity propensity (0 = all users
        equally active).
    abusive_fraction / abusive_rate_x:
        Adversarial workload knob (FAIRSERVE's ``abusive_users``): a
        seeded ``abusive_fraction`` of subscribers arrive with their
        activity propensity inflated ``abusive_rate_x``-fold.  Abusers
        add real load *on top of* the calibrated baseline -- every other
        subscriber's absolute arrival rate is unchanged -- so the knob
        models a binge minority stressing admission control rather than
        a recalibrated plant.  ``abusive_fraction = 0.0`` (the default)
        leaves generation bit-identical to a model without the knob.
    diurnal_weights:
        24 relative hourly intensities.
    length_minutes / length_weights:
        Categorical distribution of program running times.
    """

    n_users: int = POWERINFO_USERS
    n_programs: int = POWERINFO_PROGRAMS
    days: float = 14.0
    seed: int = 2007
    target_peak_gbps: Optional[float] = POWERINFO_PEAK_GBPS
    anchor_users: int = POWERINFO_USERS
    sessions_per_user_per_day: Optional[float] = None
    #: Yu et al. (EuroSys 2006) report PowerInfo program popularity as
    #: Zipf-like with a *flattened head* (Zipf-Mandelbrot).  The pair
    #: (exponent, shift fraction) below is calibrated against the ICDCS
    #: paper's own cache geometry: ~35-40% of accesses fall on the top 2%
    #: of the catalog (the 1 TB operating point) while ~90% fall on the
    #: top 20% (the 10 TB point where all strategies converge near 88%).
    zipf_exponent: float = 1.5
    #: Mandelbrot head-flattening shift, as a fraction of the catalog
    #: size so skew is scale-invariant (shift = fraction * n_programs).
    zipf_shift_fraction: float = 0.01
    full_view_probability: float = 0.13
    short_session_median_seconds: float = 8.0 * units.SECONDS_PER_MINUTE
    short_session_sigma: float = 1.1
    min_session_seconds: float = 30.0
    release_fraction: float = 0.6
    decay_tau_days: float = 4.35
    decay_floor: float = 0.02
    backcatalog_max_age_days: float = 120.0
    user_activity_sigma: float = 0.6
    abusive_fraction: float = 0.0
    abusive_rate_x: float = 6.0
    diurnal_weights: Tuple[float, ...] = DEFAULT_DIURNAL_WEIGHTS
    length_minutes: Tuple[float, ...] = DEFAULT_LENGTH_MINUTES
    length_weights: Tuple[float, ...] = DEFAULT_LENGTH_WEIGHTS

    #: The only family with a lazy hour-chunked generator
    #: (:mod:`repro.trace.streaming`), hence the only streamable one.
    supports_streaming: ClassVar[bool] = True
    serialize_always: ClassVar[Tuple[str, ...]] = (
        "n_users", "n_programs", "days", "seed")

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ConfigurationError(f"n_users must be positive, got {self.n_users}")
        if self.n_programs <= 0:
            raise ConfigurationError(f"n_programs must be positive, got {self.n_programs}")
        if self.days <= 0:
            raise ConfigurationError(f"days must be positive, got {self.days}")
        if len(self.diurnal_weights) != units.HOURS_PER_DAY:
            raise ConfigurationError(
                f"diurnal_weights needs {units.HOURS_PER_DAY} entries, "
                f"got {len(self.diurnal_weights)}"
            )
        if not 0.0 <= self.full_view_probability <= 1.0:
            raise ConfigurationError(
                f"full_view_probability must be in [0, 1], got {self.full_view_probability}"
            )
        if not 0.0 <= self.release_fraction <= 1.0:
            raise ConfigurationError(
                f"release_fraction must be in [0, 1], got {self.release_fraction}"
            )
        if not 0.0 <= self.decay_floor <= 1.0:
            raise ConfigurationError(
                f"decay_floor must be in [0, 1], got {self.decay_floor}"
            )
        if self.decay_tau_days <= 0:
            raise ConfigurationError(
                f"decay_tau_days must be positive, got {self.decay_tau_days}"
            )
        if len(self.length_minutes) != len(self.length_weights):
            raise ConfigurationError(
                "length_minutes and length_weights must have equal lengths "
                f"({len(self.length_minutes)} vs {len(self.length_weights)})"
            )
        if not 0.0 <= self.abusive_fraction <= 1.0:
            raise ConfigurationError(
                f"abusive_fraction must be in [0, 1], got {self.abusive_fraction}"
            )
        if self.abusive_rate_x <= 0:
            raise ConfigurationError(
                f"abusive_rate_x must be positive, got {self.abusive_rate_x}"
            )
        if self.target_peak_gbps is None and self.sessions_per_user_per_day is None:
            raise ConfigurationError(
                "either target_peak_gbps or sessions_per_user_per_day must be set"
            )

    def scaled_to(self, n_users: int, days: Optional[float] = None) -> "PowerInfoModel":
        """A copy of the model resized to ``n_users`` (and optionally ``days``).

        The peak-load anchor scales automatically because it is expressed
        relative to ``anchor_users``.
        """
        return replace(self, n_users=n_users, days=self.days if days is None else days)

    def build_trace(self, backend: Optional[str] = None) -> Trace:
        """The family build hook: exactly :func:`generate_trace`."""
        return generate_trace(self, backend)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def short_session_mu(self) -> float:
        """Lognormal ``mu`` of the short-session length distribution."""
        return math.log(self.short_session_median_seconds)

    @property
    def duration_seconds(self) -> float:
        """Window length in seconds."""
        return self.days * units.SECONDS_PER_DAY

    def normalized_diurnal(self) -> List[float]:
        """Hourly arrival shares summing to 1.0."""
        total = sum(self.diurnal_weights)
        if total <= 0:
            raise ConfigurationError("diurnal weights must have positive sum")
        return [w / total for w in self.diurnal_weights]

    def effective_target_gbps(self) -> Optional[float]:
        """Peak-load target after scaling to this model's population."""
        if self.target_peak_gbps is None:
            return None
        return self.target_peak_gbps * (self.n_users / self.anchor_users)


# --------------------------------------------------------------------------
# Catalog construction
# --------------------------------------------------------------------------


def _build_catalog(model: PowerInfoModel, streams: RandomStreams) -> Tuple[Catalog, List[bool]]:
    """Create the program catalog and the per-program release flags.

    Releases are biased toward the popular (low-rank) end of the Zipf
    distribution: in a real VoD catalog the most-watched items are the
    recent arrivals.  Concretely, a program at popularity rank ``r`` (0 is
    most popular) is a release with probability interpolating from 0.9 at
    the head to a level that preserves the overall ``release_fraction``.
    """
    rng_len = streams.get("catalog-lengths")
    rng_intro = streams.get("catalog-introductions")
    rng_release = streams.get("catalog-release-flags")

    length_cum = dist.cumulative(model.length_weights)
    lengths_s = [m * units.SECONDS_PER_MINUTE for m in model.length_minutes]

    n = model.n_programs
    head = max(1, n // 10)
    head_p = min(0.9, model.release_fraction * 2.0)
    if n > head:
        tail_p = max(0.0, (model.release_fraction * n - head_p * head) / (n - head))
        tail_p = min(1.0, tail_p)
    else:
        tail_p = head_p

    programs: List[Program] = []
    release_flags: List[bool] = []
    window = model.duration_seconds
    for program_id in range(n):
        length = lengths_s[bisect_left(length_cum, rng_len.random())]
        p_release = head_p if program_id < head else tail_p
        is_release = rng_release.random() < p_release
        if is_release:
            # Releases appear throughout the window, plus a pre-window band
            # so the trace starts with some items mid-decay.
            introduced = rng_intro.uniform(-7.0 * units.SECONDS_PER_DAY, window)
        else:
            introduced = -rng_intro.uniform(0.0, model.backcatalog_max_age_days) * units.SECONDS_PER_DAY
        programs.append(
            Program(program_id=program_id, length_seconds=length, introduced_at=introduced)
        )
        release_flags.append(is_release)
    return Catalog(programs), release_flags


def _decay_factor(model: PowerInfoModel, age_seconds: float) -> float:
    """Popularity multiplier for a release of the given age.

    Zero before introduction; ``floor + (1 - floor) * exp(-age/tau)``
    afterwards, which yields the paper's ~80% drop at seven days with the
    default ``tau``.
    """
    if age_seconds < 0:
        return 0.0
    tau = model.decay_tau_days * units.SECONDS_PER_DAY
    return model.decay_floor + (1.0 - model.decay_floor) * math.exp(-age_seconds / tau)


def _mean_decay_factor(model: PowerInfoModel, introduced_at: float) -> float:
    """Time-average of :func:`_decay_factor` over the generation window.

    Closed form of ``(1/T) * integral_0^T g(t - intro) dt`` used only by
    the analytic calibrator.
    """
    window = model.duration_seconds
    tau = model.decay_tau_days * units.SECONDS_PER_DAY
    floor = model.decay_floor
    start = max(introduced_at, 0.0)
    if start >= window:
        return 0.0
    age0 = start - introduced_at  # age when the window (or program) starts
    span = window - start
    integral = floor * span + (1.0 - floor) * tau * (
        math.exp(-age0 / tau) - math.exp(-(age0 + span) / tau)
    )
    return integral / window


# --------------------------------------------------------------------------
# Calibration
# --------------------------------------------------------------------------


def expected_session_seconds(model: PowerInfoModel, catalog: Catalog,
                             release_flags: Sequence[bool]) -> float:
    """Popularity-weighted expected session length, in seconds.

    Combines the full-view atom with the closed-form *truncated*
    lognormal mean for each program (mirroring the sampler exactly),
    weighting programs by their window-averaged popularity.  This is the
    ``E[S]`` of the Little's-law calibration.
    """
    zipf = dist.zipf_weights(
        len(catalog), model.zipf_exponent,
        shift=model.zipf_shift_fraction * len(catalog),
    )
    weighted = 0.0
    total_weight = 0.0
    mu, sigma = model.short_session_mu, model.short_session_sigma
    fv = model.full_view_probability
    mean_by_length: Dict[float, float] = {}
    for program, is_release in zip(catalog, release_flags):
        weight = zipf[program.program_id]
        if is_release:
            weight *= _mean_decay_factor(model, program.introduced_at)
        if weight <= 0:
            continue
        length = program.length_seconds
        short_mean = mean_by_length.get(length)
        if short_mean is None:
            # Must mirror _SessionLengthSampler: truncated (not capped)
            # lognormal with the same lower bound.
            lower = min(model.min_session_seconds, length / 2.0)
            short_mean = dist.lognormal_truncated_mean(mu, sigma, lower, length)
            mean_by_length[length] = short_mean
        weighted += weight * (fv * length + (1.0 - fv) * short_mean)
        total_weight += weight
    if total_weight <= 0:
        raise ConfigurationError("all program weights vanished during calibration")
    return weighted / total_weight


def calibrate_sessions_per_user_per_day(model: PowerInfoModel, catalog: Catalog,
                                        release_flags: Sequence[bool]) -> float:
    """Per-user daily session rate hitting the model's peak-load target.

    Little's law at the peak plateau: the average number of concurrent
    streams during peak hours is ``lambda_peak * E[S]``, and each stream
    is ``STREAM_RATE_BPS``.  Solving for the daily per-user rate::

        N_daily = C_target / E[S] * 3600 / mean(diurnal share over peak hours)
        rate    = N_daily / n_users
    """
    if model.sessions_per_user_per_day is not None:
        return model.sessions_per_user_per_day
    target_gbps = model.effective_target_gbps()
    assert target_gbps is not None  # enforced in __post_init__
    concurrency = units.gbps(target_gbps) / units.STREAM_RATE_BPS
    mean_session = expected_session_seconds(model, catalog, release_flags)
    shares = model.normalized_diurnal()
    peak_share = sum(shares[h] for h in PEAK_HOURS) / len(PEAK_HOURS)
    arrivals_per_second_at_peak = concurrency / mean_session
    daily_sessions = arrivals_per_second_at_peak * units.SECONDS_PER_HOUR / peak_share
    return daily_sessions / model.n_users


# --------------------------------------------------------------------------
# Sampling helpers
# --------------------------------------------------------------------------


def _sample_poisson(rng, lam: float) -> int:
    """Poisson variate; Knuth for small means, normal approximation above.

    The generator draws one count per simulated hour, with means ranging
    from a handful (tiny test traces) to tens of thousands (full scale),
    so both regimes matter.
    """
    if lam <= 0:
        return 0
    if lam < 30.0:
        threshold = math.exp(-lam)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count
    return max(0, round(rng.gauss(lam, math.sqrt(lam))))


class _HourlyProgramSampler:
    """Samples program ids from the time-varying popularity distribution.

    The instantaneous weight of program ``p`` at time ``t`` is
    ``zipf_p * decay(t - introduced_p)`` (releases) or ``zipf_p``
    (back-catalog).  Weights are refreshed once per simulated hour --
    popularity moves on day scales, so hourly staleness is invisible --
    and sampling is a single bisect over the cached cumulative array.
    """

    def __init__(self, model: PowerInfoModel, catalog: Catalog,
                 release_flags: Sequence[bool]) -> None:
        self._model = model
        self._catalog = catalog
        self._release_flags = list(release_flags)
        self._zipf = dist.zipf_weights(
        len(catalog), model.zipf_exponent,
        shift=model.zipf_shift_fraction * len(catalog),
    )
        self._hour = -1
        self._cum: List[float] = []

    def _refresh(self, hour: int) -> None:
        model = self._model
        midpoint = (hour + 0.5) * units.SECONDS_PER_HOUR
        weights = []
        for program, is_release in zip(self._catalog, self._release_flags):
            w = self._zipf[program.program_id]
            if is_release:
                w *= _decay_factor(model, midpoint - program.introduced_at)
            weights.append(w)
        if not any(w > 0 for w in weights):
            # Pathological window (e.g. every program introduced later):
            # fall back to the static Zipf mix rather than dividing by zero.
            weights = list(self._zipf)
        self._cum = dist.cumulative(weights)
        self._hour = hour

    def sample(self, time_seconds: float, rng) -> int:
        hour = int(time_seconds // units.SECONDS_PER_HOUR)
        if hour != self._hour:
            self._refresh(hour)
        return bisect_left(self._cum, rng.random())


class _SessionLengthSampler:
    """Draws watched durations: full-view atom + truncated lognormal body.

    The distribution cache keys on the computed ``(lower, length)`` pair
    rather than ``length`` alone: the truncation window's lower bound is
    ``min(min_session_seconds, length / 2)``, so two models differing
    only in ``min_session_seconds`` (or a future sampler shared across
    models) must never collide on a same-length entry.
    """

    def __init__(self, model: PowerInfoModel) -> None:
        self._model = model
        self._by_window: Dict[Tuple[float, float], dist.TruncatedLogNormal] = {}

    def sample(self, program: Program, rng) -> float:
        model = self._model
        length = program.length_seconds
        if rng.random() < model.full_view_probability:
            return length
        lower = min(model.min_session_seconds, length / 2.0)
        body = self._by_window.get((lower, length))
        if body is None:
            body = dist.TruncatedLogNormal(
                model.short_session_mu, model.short_session_sigma, lower, length
            )
            self._by_window[(lower, length)] = body
        return body.sample(rng)


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------


def generate_trace(model: PowerInfoModel, backend: Optional[str] = None) -> Trace:
    """Generate a synthetic PowerInfo-like trace from ``model``.

    Deterministic in ``model`` (including its seed) *per backend*.
    ``backend`` selects the sampling implementation -- ``"python"`` (the
    reference per-session loop below), ``"numpy"`` (the vectorized batch
    sampler, ~4x faster), ``"auto"``, or ``None`` to defer to
    :func:`resolve_trace_backend` (``REPRO_TRACE_BACKEND``).  The
    catalog, the calibration, and the per-user activity mix are computed
    by shared code and are bit-identical across backends; only the
    per-session draws differ stream-wise, preserving every modeled
    distribution.  Returns a :class:`~repro.trace.records.Trace` sorted
    by session start time: sampling proceeds in per-hour buckets with
    random intra-hour offsets (so the raw sample stream is unordered
    within an hour), and the chronological invariant is restored before
    construction (the python path by ``Trace``'s sort, the numpy path by
    an explicit lexsort).
    """
    backend = resolve_trace_backend(backend)
    streams = RandomStreams(model.seed)
    catalog, release_flags = _build_catalog(model, streams)
    rate = calibrate_sessions_per_user_per_day(model, catalog, release_flags)

    shares = model.normalized_diurnal()
    daily_sessions = rate * model.n_users

    user_cum, session_mass_x = _arrival_profile(model, streams)
    if session_mass_x != 1.0:
        daily_sessions *= session_mass_x

    if backend == "numpy":
        from repro.trace.vectorized import generate_records_numpy

        return generate_records_numpy(
            model, catalog, release_flags, daily_sessions, shares, user_cum
        )

    program_sampler = _HourlyProgramSampler(model, catalog, release_flags)
    length_sampler = _SessionLengthSampler(model)

    rng_counts = streams.get("hourly-counts")
    rng_times = streams.get("event-times")
    rng_users = streams.get("event-users")
    rng_programs = streams.get("event-programs")
    rng_lengths = streams.get("event-lengths")

    total_hours = int(math.ceil(model.days * units.HOURS_PER_DAY))
    records: List[SessionRecord] = []
    window_end = model.duration_seconds
    for hour in range(total_hours):
        hod = hour % units.HOURS_PER_DAY
        lam = daily_sessions * shares[hod]
        count = _sample_poisson(rng_counts, lam)
        hour_start = hour * units.SECONDS_PER_HOUR
        for _ in range(count):
            start = hour_start + rng_times.random() * units.SECONDS_PER_HOUR
            if start >= window_end:
                continue
            user_id = bisect_left(user_cum, rng_users.random())
            program_id = program_sampler.sample(start, rng_programs)
            program = catalog[program_id]
            duration = length_sampler.sample(program, rng_lengths)
            records.append(
                SessionRecord(
                    start_time=start,
                    user_id=user_id,
                    program_id=program_id,
                    duration_seconds=duration,
                )
            )
    return Trace(records, catalog, n_users=model.n_users)


@lru_cache(maxsize=3)
def _cached_trace(model: PowerInfoModel, backend: str) -> Trace:
    """Backend-keyed memo behind :func:`cached_trace`."""
    return generate_trace(model, backend=backend)


def cached_trace(model: PowerInfoModel) -> Trace:
    """Memoized :func:`generate_trace`, keyed by the (frozen) model.

    Every layer that replays "the trace of this model" -- experiment
    profiles, scenario runs, sweep groups -- shares this cache, so a
    profile's workload is generated once per process no matter which
    API drives the run.  The cache is tiny (traces are tens of MB at
    medium scale); distinct models beyond its size simply regenerate.
    The resolved generator backend is part of the key, so flipping
    ``REPRO_TRACE_BACKEND`` mid-process can never serve a stale
    other-backend trace.
    """
    return _cached_trace(model, resolve_trace_backend())


def _user_activity_cumulative(model: PowerInfoModel, streams: RandomStreams) -> List[float]:
    """Cumulative user-selection weights (lognormal activity propensity).

    ``user_activity_sigma == 0`` yields a uniform user mix; larger values
    concentrate sessions on a heavy-using minority, as real VoD audiences
    do.
    """
    if model.user_activity_sigma <= 0:
        step = 1.0 / model.n_users
        out = [step * (i + 1) for i in range(model.n_users)]
        # float slop can leave step * n fractionally below 1.0, and a
        # uniform draw in that sliver would bisect past the last user;
        # pin the tail exactly like dist.cumulative does.
        out[-1] = 1.0
        return out
    rng = streams.get("user-activity")
    sigma = model.user_activity_sigma
    weights = [rng.lognormvariate(0.0, sigma) for _ in range(model.n_users)]
    return dist.cumulative(weights)


def abusive_user_ids(model: PowerInfoModel) -> Tuple[int, ...]:
    """The seeded abusive-subscriber subset, in ascending id order.

    Drawn from its own named stream, so enabling the knob never
    perturbs catalog, calibration, or per-session draws; metrics and
    exhibits use this to split served/denied accounting into abuser
    vs. ordinary-subscriber shares.  Empty when the knob is off (or
    the fraction rounds to zero users).
    """
    count = int(round(model.abusive_fraction * model.n_users))
    if count <= 0:
        return ()
    rng = RandomStreams(model.seed).fresh("abusive-users")
    return tuple(sorted(rng.sample(range(model.n_users), count)))


def _arrival_profile(
    model: PowerInfoModel, streams: RandomStreams
) -> Tuple[List[float], float]:
    """Per-user selection cumulative plus the arrival-mass multiplier.

    The shared-prologue hook through which ``abusive_fraction`` reaches
    both generator backends (and the streaming generator): abusers'
    activity weights are inflated ``abusive_rate_x``-fold *after* the
    base mix is drawn, and the total-mass ratio comes back as a
    multiplier on the calibrated daily session count.  Because the
    per-event user draw selects user ``i`` with probability
    ``w_i / W'`` while arrivals scale by ``W' / W``, non-abusers keep
    their absolute rates and abusers contribute ``rate_x`` times
    theirs.  With the knob off the base cumulative passes through
    untouched (multiplier exactly 1.0).
    """
    cum = _user_activity_cumulative(model, streams)
    if model.abusive_fraction <= 0.0:
        return cum, 1.0
    abusers = abusive_user_ids(model)
    if not abusers:
        return cum, 1.0
    weights = list(cum)
    for i in range(len(weights) - 1, 0, -1):
        weights[i] -= weights[i - 1]
    for user_id in abusers:
        weights[user_id] *= model.abusive_rate_x
    # ``cum`` is normalized (tail pinned at 1.0), so the inflated sum
    # *is* the mass ratio W'/W.
    return dist.cumulative(weights), sum(weights)
