"""Trace data model: programs, catalogs, session records and traces.

The PowerInfo trace the paper uses records, for every viewing session,
*which user* watched *which program* for *how long* and when the session
started (paper §V-A: "Each of these records identifies the user, the
program, and the length of the session").  This module defines the exact
same schema plus the program catalog metadata (length, introduction time)
that the paper derives from access patterns.
"""

from __future__ import annotations

import bisect
import operator
from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import units
from repro.errors import TraceError


@dataclass(frozen=True, slots=True)
class Program:
    """A catalog item.

    Attributes
    ----------
    program_id:
        Dense integer identifier, unique within a catalog.
    length_seconds:
        Full playback length.  The paper infers these from the jump in
        each program's session-length ECDF (§V-A, Fig 6).
    introduced_at:
        Time (seconds, trace clock) the program entered the catalog.
        Negative values mean the program pre-dates the trace window
        (back-catalog content).
    """

    program_id: int
    length_seconds: float
    introduced_at: float = 0.0

    def __post_init__(self) -> None:
        if self.program_id < 0:
            raise TraceError(f"program_id must be non-negative, got {self.program_id}")
        if self.length_seconds <= 0:
            raise TraceError(
                f"program {self.program_id}: length must be positive, "
                f"got {self.length_seconds}"
            )

    @property
    def size_bytes(self) -> float:
        """Storage footprint at the paper's 8.06 Mb/s encoding."""
        return units.program_size_bytes(self.length_seconds)

    @property
    def num_segments(self) -> int:
        """Number of 5-minute segments the program spans."""
        return units.segments_in_program(self.length_seconds)


class Catalog:
    """An immutable collection of :class:`Program` indexed by id.

    Program ids must be dense (``0..n-1``) so that popularity arrays can
    be plain lists; the synthetic generator and the scaling transforms
    both guarantee this.
    """

    def __init__(self, programs: Sequence[Program]) -> None:
        self._programs: List[Program] = list(programs)
        for index, program in enumerate(self._programs):
            if program.program_id != index:
                raise TraceError(
                    f"catalog requires dense ids: position {index} holds "
                    f"program_id {program.program_id}"
                )

    def __len__(self) -> int:
        return len(self._programs)

    def __iter__(self) -> Iterator[Program]:
        return iter(self._programs)

    def __getitem__(self, program_id: int) -> Program:
        try:
            return self._programs[program_id]
        except IndexError:
            raise TraceError(
                f"unknown program_id {program_id} (catalog has {len(self)} programs)"
            ) from None

    def __contains__(self, program_id: int) -> bool:
        return 0 <= program_id < len(self._programs)

    @property
    def programs(self) -> Tuple[Program, ...]:
        """All programs in id order (defensive tuple copy)."""
        return tuple(self._programs)

    def total_size_bytes(self) -> float:
        """Combined storage footprint of the whole catalog."""
        return sum(p.size_bytes for p in self._programs)


@dataclass(frozen=True, order=True, slots=True)
class SessionRecord:
    """One viewing session: user, program, start time and watched length.

    Ordering is by ``(start_time, user_id, program_id)`` so sorted record
    lists are deterministic.
    """

    start_time: float
    user_id: int
    program_id: int
    duration_seconds: float = field(compare=False)

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise TraceError(f"start_time must be non-negative, got {self.start_time}")
        if self.user_id < 0:
            raise TraceError(f"user_id must be non-negative, got {self.user_id}")
        if self.program_id < 0:
            raise TraceError(f"program_id must be non-negative, got {self.program_id}")
        if self.duration_seconds <= 0:
            raise TraceError(
                f"duration must be positive, got {self.duration_seconds} "
                f"(user {self.user_id}, program {self.program_id})"
            )

    @property
    def end_time(self) -> float:
        """Time the session terminates."""
        return self.start_time + self.duration_seconds

    @property
    def bits_delivered(self) -> float:
        """Total bits streamed to the viewer over the session."""
        return self.duration_seconds * units.STREAM_RATE_BPS


class Trace:
    """A chronologically sorted sequence of sessions plus its catalog.

    The trace owns enough metadata (user count, time span) that consumers
    never need to rescan the records for basic facts.
    """

    def __init__(
        self,
        records: Iterable[SessionRecord],
        catalog: Catalog,
        n_users: Optional[int] = None,
    ) -> None:
        self._records: List[SessionRecord] = sorted(records)
        self._catalog = catalog
        max_user = -1
        for record in self._records:
            if record.program_id not in catalog:
                raise TraceError(
                    f"record references program {record.program_id} missing "
                    f"from the {len(catalog)}-program catalog"
                )
            if record.duration_seconds > catalog[record.program_id].length_seconds + 1.0:
                raise TraceError(
                    f"session duration {record.duration_seconds:.1f}s exceeds "
                    f"program {record.program_id} length "
                    f"{catalog[record.program_id].length_seconds:.1f}s"
                )
            if record.user_id > max_user:
                max_user = record.user_id
        if n_users is None:
            n_users = max_user + 1
        elif max_user >= n_users:
            raise TraceError(
                f"declared n_users={n_users} but a record references user {max_user}"
            )
        self._n_users = n_users
        self._start_times = [r.start_time for r in self._records]
        self._columns: Optional[Tuple[List[float], List[int], List[int],
                                      List[float]]] = None

    # ------------------------------------------------------------------
    # Columnar construction (trusted fast path)
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        start_times: Sequence[float],
        user_ids: Sequence[int],
        program_ids: Sequence[int],
        durations: Sequence[float],
        catalog: Catalog,
        n_users: int,
    ) -> "Trace":
        """Build a trace from parallel columns already in sorted order.

        This is the zero-copy ingestion path shared by the vectorized
        generator backend and the shared-trace attach used by sweep
        workers: callers hand over four parallel columns (any sequence
        type, including memoryviews over a mapped file) that are
        **already sorted by** ``(start_time, user_id, program_id)`` and
        **already catalog-consistent** (every program id resolvable,
        every duration within its program's length).  Only cheap
        aggregate checks run here -- per-record validation still happens
        in :class:`SessionRecord`, but the O(n log n) sort and the
        per-record catalog lookups of the list constructor are skipped.

        Raises
        ------
        TraceError
            If the aggregate invariants fail (unsorted starts, id out of
            range) -- the guard against attaching a corrupt buffer.
        """
        if not (len(start_times) == len(user_ids) == len(program_ids)
                == len(durations)):
            raise TraceError(
                f"from_columns needs equal-length columns, got "
                f"{len(start_times)}/{len(user_ids)}/{len(program_ids)}"
                f"/{len(durations)}"
            )
        records = list(map(SessionRecord, start_times, user_ids,
                           program_ids, durations))
        # Each SessionRecord re-validated its own fields above; the
        # aggregate checks below cover the cross-record/cross-catalog
        # invariants the trusted path still owes its callers.
        starts = list(start_times)
        if starts:
            # C-level pairwise scan: no sorted() copy of a column that
            # can be tens of millions of entries in a pool worker.
            if not all(map(operator.le, starts, islice(starts, 1, None))):
                raise TraceError("from_columns requires start-sorted columns")
            if max(user_ids) >= n_users:
                raise TraceError(
                    f"declared n_users={n_users} but a record references "
                    f"user {max(user_ids)}"
                )
            if max(program_ids) >= len(catalog):
                raise TraceError(
                    f"a record references program {max(program_ids)} but the "
                    f"catalog has {len(catalog)} programs"
                )
        trace = cls.__new__(cls)
        trace._records = records
        trace._catalog = catalog
        trace._n_users = n_users
        trace._start_times = starts
        # Seed the column cache from the caller's columns.  Materialize
        # with list(): attach_trace hands in memoryviews over a mapped
        # file whose buffer is released when the attach completes.
        trace._columns = (starts, list(user_ids), list(program_ids),
                          list(durations))
        return trace

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SessionRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SessionRecord:
        return self._records[index]

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------

    @property
    def catalog(self) -> Catalog:
        """The program catalog the records reference."""
        return self._catalog

    @property
    def n_users(self) -> int:
        """Number of distinct user slots (ids are ``0..n_users-1``)."""
        return self._n_users

    @property
    def start_times(self) -> Sequence[float]:
        """Session start times in record order.

        A read-only view of the trace's own column (do **not** mutate):
        the engine's bulk session-start preload and the trace-share
        serializer walk hundreds of thousands of starts, so handing out
        a defensive copy per access would dominate their cost.
        """
        return self._start_times

    @property
    def records(self) -> Sequence[SessionRecord]:
        """All session records in chronological order.

        Like :attr:`start_times`, this is a read-only view of the
        internal list, not a copy -- treat it as immutable.
        """
        return self._records

    def columns(self) -> Tuple[List[float], List[int], List[int], List[float]]:
        """Parallel ``(start_times, user_ids, program_ids, durations)`` lists.

        The trace's record stream as four read-only columns in record
        order -- the columnar engine's input.  Built lazily on first use
        and memoized (column-built traces arrive with the cache already
        seeded), so replaying one trace across a config sweep extracts
        the columns once.  Treat the lists as immutable views.
        """
        columns = self._columns
        if columns is None:
            records = self._records
            columns = self._columns = (
                self._start_times,
                [r.user_id for r in records],
                [r.program_id for r in records],
                [r.duration_seconds for r in records],
            )
        return columns

    @property
    def start_time(self) -> float:
        """Start time of the earliest session (0.0 for an empty trace)."""
        return self._records[0].start_time if self._records else 0.0

    @property
    def end_time(self) -> float:
        """Latest session *end* across the trace (0.0 for an empty trace)."""
        return max((r.end_time for r in self._records), default=0.0)

    @property
    def span_days(self) -> float:
        """Days between trace start and the last session end."""
        if not self._records:
            return 0.0
        return (self.end_time - self.start_time) / units.SECONDS_PER_DAY

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def records_between(self, start: float, end: float) -> List[SessionRecord]:
        """Records whose *start* time falls in ``[start, end)``."""
        lo = bisect.bisect_left(self._start_times, start)
        hi = bisect.bisect_left(self._start_times, end)
        return self._records[lo:hi]

    def sessions_per_program(self) -> Dict[int, int]:
        """Total session count per program id (absent ids omitted)."""
        counts: Dict[int, int] = {}
        for record in self._records:
            counts[record.program_id] = counts.get(record.program_id, 0) + 1
        return counts

    def most_popular_program(self) -> int:
        """Program id with the most sessions.

        Raises
        ------
        TraceError
            If the trace is empty.
        """
        counts = self.sessions_per_program()
        if not counts:
            raise TraceError("cannot rank programs of an empty trace")
        return max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def total_bits_delivered(self) -> float:
        """Sum of bits streamed across every session."""
        return sum(r.bits_delivered for r in self._records)

    def restricted_to_window(self, start: float, end: float) -> "Trace":
        """A new trace containing only sessions starting in ``[start, end)``."""
        return Trace(self.records_between(start, end), self._catalog, self._n_users)
