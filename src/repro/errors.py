"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  More specific
subclasses communicate *which* subsystem rejected the operation; messages
always include the offending values because simulation bugs are far easier
to chase with concrete numbers in the traceback.
"""

from __future__ import annotations

import difflib
from typing import List


def suggest(name: str, choices: List[str]) -> str:
    """``"; did you mean 'x'?"`` for a misspelled registry name.

    Shared by every name-resolving registry (policies, eviction
    families, experiments) so a typo anywhere in the CLI surface gets
    the same one-line nudge instead of a bare list.
    """
    matches = difflib.get_close_matches(name, choices, n=2, cutoff=0.5)
    if not matches:
        return ""
    return "; did you mean " + " or ".join(repr(m) for m in matches) + "?"


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A simulation or generator configuration is invalid.

    Raised eagerly at construction time (never mid-simulation) so that a
    bad parameter fails fast instead of producing silently wrong results.
    """


class TraceError(ReproError):
    """A trace record or trace file is malformed."""


class TraceFormatError(TraceError):
    """A serialized trace could not be parsed."""


class TopologyError(ReproError):
    """The cable topology is inconsistent (unknown neighborhood, bad size...)."""


class CacheError(ReproError):
    """An index-server cache operation violated an invariant."""


class PlacementError(CacheError):
    """Segments of a program could not be placed on neighborhood peers."""


class CapacityError(ReproError):
    """A peer or link was asked to exceed its configured capacity."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistency (time travel...)."""
