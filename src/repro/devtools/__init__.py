"""Developer tooling that guards the reproduction's correctness contracts.

Nothing in this package runs inside a simulation.  It exists because the
project's headline promise -- bit-identical results across engines,
backends, shard counts, and drain paths -- rests on a handful of coding
contracts (seeded-stream-only randomness, lazy numpy gating, slotted
hot-path classes, sorted iteration feeding reported rows, registries
that round-trip and stay covered by the equivalence suites) that nothing
used to enforce mechanically.  :mod:`repro.devtools.lint` does.
"""
