"""W-DET: no wall-clock reads or unseeded randomness in simulation code.

Two execution of the same scenario must be bit-identical; that dies the
moment any code path consults the host clock or the process-global
random state.  The sanctioned sources are:

* :func:`repro.sim.random_streams.derive_seed` and the
  :class:`~repro.sim.random_streams.RandomStreams` factory built on it
  -- ``random.Random(derive_seed(...))`` construction is allowed
  anywhere;
* explicitly-constructed numpy generators
  (``np.random.Generator(np.random.PCG64(derive_seed(...)))``) -- the
  capitalized bit-generator classes are constructors taking a seed, so
  they pass; the module-level draw functions and ``default_rng`` share
  global or OS-entropy state and do not.

The allowlist below names the only places wall-clock timing is a
feature, not a hazard: CLI progress timing and the ``wall_seconds``
diagnostic on :class:`~repro.core.results.SimulationResult`.  Anything
else needs a ``# repro-lint: disable=W-DET reason=...`` pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Finding, ModuleUnit, checker

#: Wall-clock reads: nondeterministic across runs by definition.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: numpy.random names that are *not* module-global draws: explicit
#: generator / bit-generator / seed-machinery constructors, all of which
#: take the seed they run on.  Everything else under numpy.random is
#: either the legacy global-state API (``np.random.rand``, ``seed``) or
#: OS-entropy seeding (``default_rng()``), both banned.
_NUMPY_CONSTRUCTORS = frozenset({
    "Generator", "RandomState", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: rel-path -> dotted call names whose use is a feature there.
_ALLOWLIST = {
    # CLI progress timing: printed to the terminal, never in a result.
    "cli.py": frozenset({"time.perf_counter"}),
    # SimulationResult.wall_seconds: a diagnostic the equivalence suites
    # explicitly exclude from bit-identity comparisons.
    "core/system.py": frozenset({"time.perf_counter"}),
}


@checker("W-DET")
def check_determinism(unit: ModuleUnit) -> Iterator[Finding]:
    allowed = _ALLOWLIST.get(unit.rel, frozenset())
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        name = unit.dotted_name(node.func)
        if name is None:
            continue
        if name in _CLOCK_CALLS and name not in allowed:
            yield Finding(
                unit.rel, node.lineno, node.col_offset, "W-DET",
                f"wall-clock read {name}() in simulation code; results "
                f"must not depend on the host clock",
            )
        elif name.startswith("random.") and name != "random.Random":
            yield Finding(
                unit.rel, node.lineno, node.col_offset, "W-DET",
                f"{name}() draws from the process-global random state; "
                f"derive a stream via sim.random_streams.derive_seed "
                f"and random.Random instead",
            )
        elif (name.startswith("numpy.random.")
                and name.rsplit(".", 1)[1] not in _NUMPY_CONSTRUCTORS):
            yield Finding(
                unit.rel, node.lineno, node.col_offset, "W-DET",
                f"{name}() is unseeded or global-state numpy randomness; "
                f"construct numpy.random.Generator(PCG64(derive_seed(...)))",
            )
