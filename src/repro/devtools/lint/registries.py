"""W-REG: registries must round-trip and stay covered by the suites.

The project's registries -- cache strategy specs (``@policy``),
baselines, live admission specs (``@live_admission``), and workload
families (``@workload_family``) -- are the single source of truth for
what is runnable.  Two contracts keep them honest:

1. **Round-trip support.**  Every registered spec serializes through
   ``spec_to_dict``/``spec_from_dict`` (live:
   ``live_spec_to_dict``/``live_spec_from_dict``; families:
   ``repro.trace.families``), which the generic implementations only
   guarantee for frozen-dataclass specs.  The per-file half of this
   rule therefore requires every ``@policy``/``@live_admission``/
   ``@workload_family``-decorated class to also carry
   ``@dataclass(frozen=True)``; the project-level half executes the
   round-trip for every registered name.
2. **Test-suite coverage.**  A registered strategy that never runs
   through the engine-equivalence and live-equivalence suites is an
   unproven strategy: a coverage gap is a lint error, not a hope.
   Parametrizing straight off ``policy_names()`` (what both suites do)
   covers by construction; a literal list must enumerate every name.
   Workload families get the same treatment against ``tests/trace/``:
   a family the trace tests never mention is unproven.

The project-level half runs only when the linted tree is the real
``repro`` package (it needs the registries importable and the ``tests/``
tree on disk); the per-file half runs on any tree, which is what the
self-test corpus exercises.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional, Set

from repro.devtools.lint.core import Finding, ModuleUnit, checker

_REGISTRY_DECORATORS = ("policy", "live_admission", "workload_family")


def _decorator_name(node: ast.expr) -> str:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if _decorator_name(decorator) != "dataclass":
            continue
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if (keyword.arg == "frozen"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True):
                    return True
        # bare @dataclass: mutable, spec_to_dict would "work" but the
        # spec breaks the scenario layer's hashing/equality assumptions.
    return False


@checker("W-REG")
def check_registered_specs(unit: ModuleUnit) -> Iterator[Finding]:
    """Per-file half: registered spec classes must be frozen dataclasses."""
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        registered_as = None
        for decorator in node.decorator_list:
            if _decorator_name(decorator) in _REGISTRY_DECORATORS:
                registered_as = _decorator_name(decorator)
                break
        if registered_as is None:
            continue
        if not _is_frozen_dataclass(node):
            yield Finding(
                unit.rel, node.lineno, node.col_offset, "W-REG",
                f"@{registered_as}-registered class {node.name} is not a "
                f"@dataclass(frozen=True); spec_to_dict/spec_from_dict "
                f"round-trips are only guaranteed for frozen dataclasses",
            )


# ---------------------------------------------------------------------------
# Project-level half
# ---------------------------------------------------------------------------


def _parametrize_names(test_file: Path, via_call: str) -> Optional[Set[str]]:
    """Names a test file's ``parametrize`` marks cover.

    Returns ``None`` for *full registry coverage* -- a parametrize whose
    values are the live ``{via_call}()`` expression; otherwise the union
    of string constants in literal parametrize lists.
    """
    tree = ast.parse(test_file.read_text(encoding="utf-8"))
    literal: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "parametrize"):
            continue
        if len(node.args) < 2:
            continue
        values = node.args[1]
        if (isinstance(values, ast.Call)
                and _decorator_name(values) == via_call):
            return None
        if isinstance(values, (ast.List, ast.Tuple)):
            for element in values.elts:
                if isinstance(element, ast.Constant) and isinstance(
                        element.value, str):
                    literal.add(element.value)
    return literal


def _find_tests_dir(root: Path) -> Optional[Path]:
    """The repo's ``tests/`` tree, walking up from the linted package."""
    for base in (root, *root.parents):
        candidate = base / "tests"
        if (candidate / "core" / "test_engine_equivalence.py").exists():
            return candidate
    return None


def project_registry_findings(root: Path) -> List[Finding]:
    """Round-trip and suite-coverage checks against the live registries.

    ``root`` must be the real ``repro`` package directory; any other
    tree (the fixture corpus, a vendored copy) skips silently -- the
    per-file half still applies there.
    """
    if not (root / "cache" / "policies" / "registry.py").exists():
        return []

    from repro.baselines.registry import BASELINE_NAMES
    from repro.cache.factory import spec_from_dict, spec_to_dict
    from repro.cache.policies.registry import (
        iter_live_admissions, iter_policies, policy_names,
    )
    from repro.live.specs import live_spec_from_dict, live_spec_to_dict

    registry_rel = "cache/policies/registry.py"
    findings: List[Finding] = []

    def report(message: str, rel: str = registry_rel) -> None:
        findings.append(Finding(rel, 1, 0, "W-REG", message))

    for info in iter_policies():
        spec = info.spec_class()
        try:
            if spec_from_dict(spec_to_dict(spec)) != spec:
                report(f"strategy {info.name!r}: spec_from_dict(spec_to_dict())"
                       f" is not the identity")
        except Exception as error:  # noqa: BLE001 - any failure is the finding
            report(f"strategy {info.name!r} does not round-trip: {error}")

    for info in iter_live_admissions():
        spec = info.spec_class()
        try:
            if live_spec_from_dict(live_spec_to_dict(spec)) != spec:
                report(f"live admission {info.name!r}: "
                       f"live_spec_from_dict(live_spec_to_dict()) is not "
                       f"the identity")
        except Exception as error:  # noqa: BLE001
            report(f"live admission {info.name!r} does not round-trip: "
                   f"{error}")

    from repro.trace.families import (
        iter_families,
        spec_from_dict as family_from_dict,
        spec_to_dict as family_to_dict,
    )

    families_rel = "trace/families/__init__.py"
    for info in iter_families():
        spec = info.spec_class()
        try:
            if family_from_dict(family_to_dict(spec)) != spec:
                report(f"workload family {info.name!r}: "
                       f"spec_from_dict(spec_to_dict()) is not the identity",
                       rel=families_rel)
        except Exception as error:  # noqa: BLE001
            report(f"workload family {info.name!r} does not round-trip: "
                   f"{error}", rel=families_rel)

    tests_dir = _find_tests_dir(root)
    if tests_dir is None:
        report("cannot locate the tests/ tree to verify equivalence-suite "
               "coverage (expected tests/core/test_engine_equivalence.py "
               "next to the package)")
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    for suite in ("core/test_engine_equivalence.py",
                  "live/test_live_equivalence.py"):
        test_file = tests_dir / suite
        if not test_file.exists():
            report(f"equivalence suite tests/{suite} is missing; every "
                   f"registered strategy must run through it")
            continue
        covered = _parametrize_names(test_file, via_call="policy_names")
        if covered is None:
            continue  # parametrized off the live registry: full coverage
        for name in policy_names():
            if name not in covered:
                report(f"strategy {name!r} is registered but not "
                       f"parametrized in tests/{suite}; a policy outside "
                       f"the bit-identity suite is unproven",
                       rel=registry_rel)

    live_sources = "\n".join(
        p.read_text(encoding="utf-8") for p in sorted(tests_dir.glob("live/*.py"))
    )
    for info in iter_live_admissions():
        if info.name not in live_sources:
            report(f"live admission {info.name!r} is registered but never "
                   f"referenced in tests/live/")

    trace_sources = "\n".join(
        p.read_text(encoding="utf-8")
        for p in sorted(tests_dir.glob("trace/*.py"))
    )
    for info in iter_families():
        if info.name not in trace_sources:
            report(f"workload family {info.name!r} is registered but never "
                   f"referenced in tests/trace/", rel=families_rel)

    baseline_sources = "\n".join(
        p.read_text(encoding="utf-8")
        for p in sorted(tests_dir.glob("baselines/*.py"))
    )
    for name in BASELINE_NAMES:
        if name not in baseline_sources:
            findings.append(Finding(
                "baselines/registry.py", 1, 0, "W-REG",
                f"baseline {name!r} is registered but never referenced in "
                f"tests/baselines/",
            ))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
