"""W-GATE: numpy must stay behind the lazy / guarded import gates.

The CI matrix runs a pure-python leg where numpy does not exist, and
``REPRO_TRACE_BACKEND`` / ``REPRO_ENGINE`` auto-detection promises every
module still imports there.  One honest way to break that silently is a
bare top-level ``import numpy`` in a module the python leg reaches.

Allowed forms:

* imports inside a function or method body (the lazy-gate idiom every
  accelerated path uses: the caller checked the gate first);
* module-level imports wrapped in ``try: ... except ImportError`` (the
  probe idiom -- the module imports either way);
* ``if TYPE_CHECKING:`` blocks (never executed);
* the explicitly gated backend modules listed below, which are only
  ever imported *after* a gate check and may therefore import numpy
  unconditionally at top level.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.devtools.lint.core import Finding, ModuleUnit, checker

#: Modules reachable only behind an explicit numpy gate; a bare
#: top-level import is their prerogative (and keeps their own bodies
#: clean of per-function import noise).
_GATED_MODULES = frozenset({
    "trace/vectorized.py",
})

_GUARD_EXCEPTIONS = {"ImportError", "ModuleNotFoundError", "Exception"}


def _numpy_imports(node: ast.stmt) -> List[Tuple[int, int]]:
    """Locations of numpy imports directly in this statement."""
    if isinstance(node, ast.Import):
        return [(node.lineno, node.col_offset) for alias in node.names
                if alias.name == "numpy" or alias.name.startswith("numpy.")]
    if isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        if node.module == "numpy" or node.module.startswith("numpy."):
            return [(node.lineno, node.col_offset)]
    return []


def _is_type_checking_if(node: ast.If) -> bool:
    test = node.test
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return isinstance(test, ast.Name) and test.id == "TYPE_CHECKING"


def _guards_import_error(node: ast.Try) -> bool:
    for handler in node.handlers:
        if handler.type is None:
            return True
        names = (handler.type.elts if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        for name in names:
            if isinstance(name, ast.Name) and name.id in _GUARD_EXCEPTIONS:
                return True
            if isinstance(name, ast.Attribute) and name.attr in _GUARD_EXCEPTIONS:
                return True
    return False


def _walk_module_scope(body: List[ast.stmt], guarded: bool
                       ) -> Iterator[Tuple[ast.stmt, bool]]:
    """Statements executed at import time, with their guardedness.

    Descends into module-level ``if``/``try``/``with`` blocks (those run
    at import time too) but never into function or class-method bodies
    beyond the class's immediate body -- class bodies also execute at
    import time.
    """
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.If):
            if _is_type_checking_if(node):
                continue
            yield from _walk_module_scope(node.body, guarded)
            yield from _walk_module_scope(node.orelse, guarded)
        elif isinstance(node, ast.Try):
            shielded = guarded or _guards_import_error(node)
            yield from _walk_module_scope(node.body, shielded)
            for handler in node.handlers:
                yield from _walk_module_scope(handler.body, guarded)
            yield from _walk_module_scope(node.orelse, guarded)
            yield from _walk_module_scope(node.finalbody, guarded)
        elif isinstance(node, ast.With):
            yield from _walk_module_scope(node.body, guarded)
        elif isinstance(node, ast.ClassDef):
            yield from _walk_module_scope(node.body, guarded)
        else:
            yield node, guarded


@checker("W-GATE")
def check_numpy_gating(unit: ModuleUnit) -> Iterator[Finding]:
    if unit.rel in _GATED_MODULES:
        return
    for node, guarded in _walk_module_scope(unit.tree.body, guarded=False):
        if guarded:
            continue
        for lineno, col in _numpy_imports(node):
            yield Finding(
                unit.rel, lineno, col, "W-GATE",
                "bare module-level numpy import; the python-only leg "
                "must import this module -- move the import into the "
                "gated function or guard it with try/except ImportError",
            )
