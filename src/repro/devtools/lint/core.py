"""repro-lint core: findings, suppression pragmas, and the file runner.

A *checker* is a callable taking a :class:`ModuleUnit` (one parsed
source file plus its classification relative to the linted tree) and
yielding :class:`Finding` objects.  Checkers register themselves with
the :func:`checker` decorator under their rule id; the runner parses
each file exactly once, hands the unit to every requested checker, then
applies per-line suppression pragmas.

Suppression pragma grammar (same line as the finding)::

    x = time.time()  # repro-lint: disable=W-DET reason=host clock probe

* ``disable=`` takes one rule id or a comma-separated list.
* ``reason=`` is **mandatory** and consumes the rest of the comment --
  a suppression without a stated reason is itself reported (W-PRAGMA),
  as is one naming an unknown rule.  The contract being waived matters
  exactly as much as the waiver's justification.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

#: Rule ids with one-line summaries (the README table is generated from
#: the same wording; keep them in sync).
RULES: Dict[str, str] = {
    "W-DET": ("wall-clock or unseeded randomness in simulation code; all "
              "RNG must flow through sim.random_streams.derive_seed"),
    "W-GATE": ("module-level numpy import outside the gated backend "
               "modules; the python-only leg must import every module"),
    "W-SLOTS": ("class in a hot-path module (sim/, cache/, peers/, "
                "core/meter.py) without __slots__"),
    "W-ORDER": ("iteration over a set/.keys() view without sorted(); "
                "nondeterministic order is a bit-identity hazard"),
    "W-REG": ("registry entry without round-trip support or missing from "
              "the equivalence-suite parametrizations"),
    "W-PRAGMA": "malformed suppression pragma (missing reason= or unknown rule)",
}

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9,\-]+)"
    r"(?:\s+reason=(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    path: str  #: tree-relative posix path
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The human-facing ``file:line:col: RULE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Pragma:
    """A parsed suppression comment on one source line."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]


class ModuleUnit:
    """One source file, parsed once and classified for the checkers."""

    def __init__(self, root: Path, path: Path) -> None:
        self.root = root
        self.path = path
        #: Path relative to the linted tree root, posix-style -- the
        #: namespace every scoping decision (hot-path modules, gated
        #: modules, allowlists) is expressed in.
        self.rel = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.source, filename=str(path))
        self.lines = self.source.splitlines()
        self._pragmas: Optional[Dict[int, Pragma]] = None

    # -- pragmas ---------------------------------------------------------

    def pragmas(self) -> Dict[int, Pragma]:
        """Suppression pragmas by line number (malformed ones included)."""
        if self._pragmas is None:
            found: Dict[int, Pragma] = {}
            for lineno, text in enumerate(self.lines, start=1):
                match = _PRAGMA_RE.search(text)
                if match is None:
                    continue
                rules = tuple(
                    part.strip() for part in match.group("rules").split(",")
                    if part.strip()
                )
                found[lineno] = Pragma(lineno, rules, match.group("reason"))
            self._pragmas = found
        return self._pragmas

    # -- import alias resolution ----------------------------------------

    def import_aliases(self) -> Dict[str, str]:
        """Map local names to the dotted module/object they denote.

        ``import time as _time`` maps ``_time -> time``;
        ``from datetime import datetime`` maps
        ``datetime -> datetime.datetime``.  Only top-of-tree information
        is needed to resolve the dotted call names checkers ban, so
        every ``import`` statement in the file contributes regardless of
        nesting.
        """
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return aliases

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve an attribute/name expression to its dotted import path.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; returns ``None`` for expressions
        rooted anywhere but an imported name.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.import_aliases().get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


#: rule id -> checker callable.
_CHECKERS: Dict[str, Callable[[ModuleUnit], Iterable[Finding]]] = {}


def checker(rule: str) -> Callable[
    [Callable[[ModuleUnit], Iterable[Finding]]],
    Callable[[ModuleUnit], Iterable[Finding]],
]:
    """Register a per-file checker under its rule id."""
    if rule not in RULES:
        raise ValueError(f"unknown rule id {rule!r}; add it to RULES first")

    def register(func: Callable[[ModuleUnit], Iterable[Finding]]):
        if rule in _CHECKERS:
            raise ValueError(f"checker for {rule} registered twice")
        _CHECKERS[rule] = func
        return func

    return register


def registered_rules() -> List[str]:
    """Rule ids with a registered per-file checker, sorted."""
    _load_checkers()
    return sorted(_CHECKERS)


def _load_checkers() -> None:
    """Import the checker modules (registration side effect)."""
    from repro.devtools.lint import (  # noqa: F401
        determinism, gating, ordering, registries, slots,
    )


def _apply_pragmas(unit: ModuleUnit, findings: List[Finding]) -> List[Finding]:
    """Drop suppressed findings; report malformed or unknown pragmas."""
    kept: List[Finding] = []
    pragmas = unit.pragmas()
    for finding in findings:
        pragma = pragmas.get(finding.line)
        if (pragma is not None and pragma.reason
                and finding.rule in pragma.rules):
            continue
        kept.append(finding)
    for pragma in pragmas.values():
        if not pragma.reason:
            kept.append(Finding(
                unit.rel, pragma.line, 0, "W-PRAGMA",
                "suppression requires reason= "
                "(state why the contract does not apply here)",
            ))
        for rule in pragma.rules:
            if rule not in RULES:
                kept.append(Finding(
                    unit.rel, pragma.line, 0, "W-PRAGMA",
                    f"unknown rule {rule!r} in suppression "
                    f"(known: {', '.join(sorted(RULES))})",
                ))
    return kept


def iter_source_files(root: Path) -> Iterator[Path]:
    """Python files under ``root``, stably ordered."""
    return iter(sorted(root.rglob("*.py")))


def run_lint(root: Path, rules: Optional[Sequence[str]] = None,
             project: bool = True) -> List[Finding]:
    """Lint every python file under ``root``.

    Parameters
    ----------
    root:
        Tree to lint -- normally the installed ``repro`` package
        directory; the self-test corpus points it at miniature trees.
    rules:
        Restrict to these rule ids (default: all registered).
    project:
        Also run the project-level half of W-REG (registry round-trips
        and equivalence-suite coverage).  Per-file checkers run either
        way.
    """
    _load_checkers()
    root = Path(root).resolve()
    wanted = set(rules) if rules is not None else set(_CHECKERS)
    unknown = wanted - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule ids: {sorted(unknown)}")

    findings: List[Finding] = []
    for path in iter_source_files(root):
        unit = ModuleUnit(root, path)
        raw: List[Finding] = []
        for rule, check in _CHECKERS.items():
            if rule in wanted:
                raw.extend(check(unit))
        findings.extend(_apply_pragmas(unit, raw))

    if project and (rules is None or "W-REG" in wanted):
        from repro.devtools.lint.registries import project_registry_findings

        findings.extend(project_registry_findings(root))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_findings(findings: Sequence[Finding], as_json: bool = False) -> str:
    """Human or ``--json`` report for a lint run."""
    if as_json:
        return json.dumps(
            {"findings": [f.to_dict() for f in findings],
             "count": len(findings)},
            indent=2,
        )
    if not findings:
        return "repro-lint: clean"
    lines = [finding.render() for finding in findings]
    lines.append(f"repro-lint: {len(findings)} finding"
                 f"{'s' if len(findings) != 1 else ''}")
    return "\n".join(lines)
