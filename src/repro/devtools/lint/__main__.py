"""``python -m repro.devtools.lint`` -- same entry point as ``repro-vod lint``."""

import sys

from repro.devtools.lint import main

if __name__ == "__main__":
    sys.exit(main())
