"""W-ORDER: iterating an unordered collection is a bit-identity hazard.

Sets hash-order their elements, and string hashing is salted per
process (``PYTHONHASHSEED``), so ``for x in some_set`` can visit in a
different order on every run.  Any such order leaking into reported
rows, CSV/JSON output, or meter folds silently breaks the
"serial == parallel == resumed" bit-identity contract.  Dict views are
insertion-ordered -- deterministic if the insertions are -- but
``.keys()`` iteration that *matters* should still state its order; the
codebase convention is ``sorted(...)`` at every fold boundary.

The rule flags direct iteration over:

* ``set(...)`` / ``frozenset(...)`` calls, set literals and set
  comprehensions -- in ``for`` targets, comprehension sources, and
  order-materializing calls (``list``/``tuple``/``enumerate``/
  ``str.join``);
* ``.keys()`` calls in the same positions.

Wrapping the expression in ``sorted(...)`` (or reducing it with an
order-insensitive ``sum``/``min``/``max``/``len``/``any``/``all``)
passes.  Where hash order is provably harmless, say so with
``# repro-lint: disable=W-ORDER reason=...``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.core import Finding, ModuleUnit, checker

#: Call targets whose argument order is irrelevant (reductions) -- a
#: set/keys expression fed straight into one of these is fine.
_ORDER_INSENSITIVE = frozenset({
    "sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset",
})

#: Call targets that materialize their argument's iteration order.
_ORDER_MATERIALIZING = frozenset({"list", "tuple", "enumerate"})


def _unordered_reason(node: ast.expr) -> Optional[str]:
    """Why this expression iterates in nondeterministic/unstated order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set displays its elements in hash order"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}() iterates in hash order"
        if isinstance(func, ast.Attribute) and func.attr == "keys":
            return ".keys() iteration order is unstated at a fold boundary"
    return None


def _flag(unit: ModuleUnit, node: ast.expr) -> Iterator[Finding]:
    reason = _unordered_reason(node)
    if reason is not None:
        yield Finding(
            unit.rel, node.lineno, node.col_offset, "W-ORDER",
            f"{reason}; wrap it in sorted(...) so the fold order is "
            f"deterministic and explicit",
        )


@checker("W-ORDER")
def check_ordering(unit: ModuleUnit) -> Iterator[Finding]:
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.For):
            yield from _flag(unit, node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for generator in node.generators:
                yield from _flag(unit, generator.iter)
        elif isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            if name in _ORDER_MATERIALIZING or name == "join":
                for arg in node.args:
                    yield from _flag(unit, arg)
