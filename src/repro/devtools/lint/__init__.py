"""repro-lint: AST-based checks for the project's correctness contracts.

Nine PRs of hand-proven invariants -- bit-identical engines, seeded
streams, numpy gating, slotted hot paths, registries the equivalence
suites actually cover -- are worth a mechanical guard.  This package is
that guard: a registry of stdlib-``ast`` checkers, each enforcing one
named contract:

========  ==========================================================
W-DET     no wall-clock reads or unseeded randomness in sim code
W-GATE    numpy imports stay lazy/guarded outside gated backends
W-SLOTS   hot-path classes (sim/, cache/, peers/, core/meter.py)
          declare ``__slots__``
W-ORDER   set/.keys() iteration passes through ``sorted()``
W-REG     registered specs round-trip and stay parametrized in the
          equivalence suites
W-PRAGMA  suppressions carry a reason (meta-rule)
========  ==========================================================

Run it as ``repro-vod lint`` or ``python -m repro.devtools.lint``;
suppress a single line with a ``repro-lint: disable=<rule>`` comment
carrying a mandatory ``reason=`` tail.

Adding a checker: write ``def check(unit: ModuleUnit) -> Iterator[
Finding]`` in a new module here, decorate it with
``@checker("W-NEW")`` after adding the id to :data:`~repro.devtools.
lint.core.RULES`, import the module in ``core._load_checkers``, and
seed one known-bad fixture in ``tests/devtools/fixtures/tree`` so the
self-test corpus proves the rule fires.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.lint.core import (  # noqa: F401  (public API)
    RULES,
    Finding,
    ModuleUnit,
    checker,
    registered_rules,
    render_findings,
    run_lint,
)


def default_target() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-vod lint`` / ``python -m repro.devtools.lint`` entry point.

    Exits 0 on a clean tree, 1 when findings are reported.
    """
    parser = argparse.ArgumentParser(
        prog="repro-vod lint",
        description=(
            "Statically enforce the reproduction's determinism and "
            "registry contracts (W-DET, W-GATE, W-SLOTS, W-ORDER, W-REG)."
        ),
    )
    parser.add_argument(
        "path", nargs="?", default=None,
        help="tree to lint (default: the installed repro package)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="machine-readable findings instead of file:line:rule lines",
    )
    parser.add_argument(
        "--rules", default=None, metavar="W-A,W-B",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule id with its contract and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule in sorted(RULES):
            print(f"{rule:<{width}}  {RULES[rule]}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [part.strip() for part in args.rules.split(",") if part.strip()]
    target = Path(args.path) if args.path is not None else default_target()
    if not target.exists():
        print(f"error: no such path: {target}", file=sys.stderr)
        return 2

    findings = run_lint(target, rules=rules)
    try:
        print(render_findings(findings, as_json=args.as_json))
    except BrokenPipeError:  # e.g. `repro-vod lint | head`
        sys.stderr.close()
    return 1 if findings else 0
