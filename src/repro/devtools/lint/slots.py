"""W-SLOTS: hot-path classes must declare ``__slots__``.

The replay engines construct these objects per neighborhood, per
session, or per decision; an instance ``__dict__`` costs memory and an
extra indirection on every attribute access, and PR 1's hot-path
rebuild leaned on de-allocating exactly these classes.  The contract:
every class defined in a hot-path module declares ``__slots__`` --
``()`` when it adds no state -- so a future class can't silently
reintroduce dict-backed instances.

Exemptions (checked structurally, not by name):

* ``@dataclass``-decorated classes: the config/value surface (specs,
  stats records).  ``dataclass(slots=True)`` needs python >= 3.10 and
  this package still supports 3.9, so they are waved through until the
  floor moves.
* Exception types (a base named ``*Error``/``*Exception``): raised, not
  accumulated.
* ``Protocol`` / ``NamedTuple`` / ``TypedDict`` / ``Enum`` bases: their
  metaclasses own the layout.
* Classes defined inside functions (test doubles, factories).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.core import Finding, ModuleUnit, checker

#: Directory prefixes / exact files whose classes live on the replay
#: hot path, relative to the linted tree root.
_HOT_PREFIXES = ("sim/", "cache/", "peers/")
_HOT_FILES = frozenset({"core/meter.py"})

_LAYOUT_OWNING_BASES = frozenset({
    "Protocol", "NamedTuple", "TypedDict", "Enum", "IntEnum", "Flag",
    "IntFlag", "type",
})


def _is_hot_module(rel: str) -> bool:
    return rel.startswith(_HOT_PREFIXES) or rel in _HOT_FILES


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in stmt.targets):
                return True
        elif isinstance(stmt, ast.AnnAssign):
            if (isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"):
                return True
    return False


def _base_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Protocol[...], Generic[T]
        return _base_name(node.value)
    return ""


def _is_exempt(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _base_name(target) == "dataclass":
            return True
    for base in node.bases:
        name = _base_name(base)
        if name in _LAYOUT_OWNING_BASES or name == "Generic":
            return True
        if name.endswith(("Error", "Exception")) or name == "BaseException":
            return True
    return False


def _module_level_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Classes at module scope, including those nested in other classes."""
    stack = [s for s in tree.body if isinstance(s, ast.ClassDef)]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(s for s in node.body if isinstance(s, ast.ClassDef))


@checker("W-SLOTS")
def check_slots(unit: ModuleUnit) -> Iterator[Finding]:
    if not _is_hot_module(unit.rel):
        return
    for node in _module_level_classes(unit.tree):
        if _declares_slots(node) or _is_exempt(node):
            continue
        yield Finding(
            unit.rel, node.lineno, node.col_offset, "W-SLOTS",
            f"hot-path class {node.name} has no __slots__; declare one "
            f"(use __slots__ = () if it adds no instance state)",
        )
