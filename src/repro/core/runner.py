"""Public simulation entry point."""

from __future__ import annotations

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.system import CableVoDSystem
from repro.trace.records import Trace


def run_simulation(trace: Trace, config: SimulationConfig,
                   engine: str = "bucket") -> SimulationResult:
    """Replay ``trace`` through a freshly built system under ``config``.

    This is the function every experiment and example calls.  It is
    deterministic: the same trace and config always produce identical
    results (placement, strategies, and the event loop contain no
    unseeded randomness).  ``engine`` selects the event-engine path:
    ``"bucket"`` (default, tick-bucketed session arcs) or ``"heap"``
    (legacy per-segment heap chain); both produce bit-identical results.

    Examples
    --------
    >>> from repro.trace import PowerInfoModel, generate_trace
    >>> from repro.core import SimulationConfig, run_simulation
    >>> trace = generate_trace(PowerInfoModel(n_users=200, n_programs=50,
    ...                                       days=2.0, seed=7))
    >>> result = run_simulation(trace, SimulationConfig(
    ...     neighborhood_size=100, warmup_days=0.5))
    >>> result.counters.sessions == len(trace)
    True
    """
    return CableVoDSystem(trace, config, engine=engine).run()
