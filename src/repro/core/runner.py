"""Public simulation entry point and engine selection.

Engine resolution mirrors the trace-backend gate
(:mod:`repro.trace.synthetic`): an explicit argument wins, then a
process-level override (:func:`set_default_engine`), then the
``REPRO_ENGINE`` environment variable, then the scalar ``"bucket"``
default.  Two convenience spellings resolve to concrete engines:
``"auto"`` picks ``"columnar"`` when numpy is importable and falls back
to ``"bucket"`` otherwise, and ``"python"`` (the same value the env var
uses to force scalar execution) is an alias for ``"bucket"``.  All
engines are bit-identical, so resolution only ever affects speed.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.system import CableVoDSystem, ENGINE_MODES, columnar_supported
from repro.errors import ConfigurationError
from repro.trace.records import Trace

#: Every name :func:`resolve_engine` accepts (concrete modes plus the
#: two aliases).
ENGINE_CHOICES = ENGINE_MODES + ("auto", "python")

_engine_override: Optional[str] = None
_env_before_override: Optional[str] = None


def resolve_engine(name: Optional[str] = None) -> str:
    """Resolve an engine request to a concrete ``ENGINE_MODES`` entry.

    ``None`` falls through the override / ``REPRO_ENGINE`` / default
    chain; any explicit name is validated.  ``"columnar"`` resolves to
    ``"bucket"`` when the gate is closed (numpy missing or
    ``REPRO_ENGINE=python``) -- a silent demotion, not an error, because
    the engines are bit-identical.
    """
    if name is None:
        name = _engine_override
    if name is None:
        name = os.environ.get("REPRO_ENGINE") or "bucket"
    if name == "auto":
        return "columnar" if columnar_supported() else "bucket"
    if name == "python":
        return "bucket"
    if name not in ENGINE_MODES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {ENGINE_CHOICES}"
        )
    if name == "columnar" and not columnar_supported():
        return "bucket"
    return name


def set_default_engine(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-default engine.

    Mirrors :func:`repro.trace.synthetic.set_trace_backend`: the choice
    is also written to ``REPRO_ENGINE`` so worker processes spawned for
    parallel sweeps inherit it, and clearing restores whatever the
    variable held before the first override.
    """
    global _engine_override, _env_before_override
    if name is not None and name not in ENGINE_CHOICES:
        raise ConfigurationError(
            f"unknown engine {name!r}; choose from {ENGINE_CHOICES}"
        )
    if name is None:
        if _engine_override is not None:
            if _env_before_override is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = _env_before_override
        _engine_override = None
        _env_before_override = None
        return
    if _engine_override is None:
        _env_before_override = os.environ.get("REPRO_ENGINE")
    _engine_override = name
    os.environ["REPRO_ENGINE"] = name


def run_simulation(trace: Trace, config: SimulationConfig,
                   engine: Optional[str] = None) -> SimulationResult:
    """Replay ``trace`` through a freshly built system under ``config``.

    This is the function every experiment and example calls.  It is
    deterministic: the same trace and config always produce identical
    results (placement, strategies, and the event loop contain no
    unseeded randomness).  ``engine`` selects the event-engine path --
    ``"columnar"`` (vectorized schedule), ``"bucket"`` (tick-bucketed
    session arcs, the default), ``"heap"`` (legacy per-segment heap
    chain), or the ``"auto"``/``"python"`` aliases -- with ``None``
    deferring to :func:`resolve_engine`'s override/env chain.  All
    engines produce bit-identical results.

    Examples
    --------
    >>> from repro.trace import PowerInfoModel, generate_trace
    >>> from repro.core import SimulationConfig, run_simulation
    >>> trace = generate_trace(PowerInfoModel(n_users=200, n_programs=50,
    ...                                       days=2.0, seed=7))
    >>> result = run_simulation(trace, SimulationConfig(
    ...     neighborhood_size=100, warmup_days=0.5))
    >>> result.counters.sessions == len(trace)
    True
    """
    return CableVoDSystem(trace, config, engine=resolve_engine(engine)).run()
