"""Hourly bandwidth metering.

Every load figure in the paper is an *hourly average rate*: "The data
rates sustained by the centralized servers and neighborhood networks for
each hour of the day are updated with each event" (section V-B).
:class:`HourlyMeter` accumulates bits into absolute-hour buckets;
deliveries spanning an hour boundary are split proportionally so each
bucket reflects exactly the bits that crossed the wire during it.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro import units
from repro.errors import SimulationError

_SECONDS_PER_HOUR = units.SECONDS_PER_HOUR


class HourlyMeter:
    """Accumulates transferred bits into per-hour buckets."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits: Dict[int, float] = defaultdict(float)

    def add_interval(self, start: float, duration_seconds: float,
                     rate_bps: float = units.STREAM_RATE_BPS) -> None:
        """Meter a constant-rate transfer over ``[start, start+duration)``.

        Splits the transfer across hour boundaries so hourly rates are
        exact regardless of where deliveries fall.  A 5-minute segment
        delivery usually sits inside one hour, so the single-bucket case
        is a branch and one dict update; the split loop only runs for
        genuinely boundary-crossing transfers.
        """
        if duration_seconds < 0:
            raise SimulationError(
                f"cannot meter a negative duration ({duration_seconds})"
            )
        if rate_bps < 0:
            raise SimulationError(f"cannot meter a negative rate ({rate_bps})")
        if duration_seconds == 0:
            # The split loop below never iterates for zero durations, so
            # the fast path must not materialize an empty bucket either.
            return
        hour = int(start // _SECONDS_PER_HOUR)
        span = (hour + 1) * _SECONDS_PER_HOUR - start
        if duration_seconds <= span:
            # Fast path: the whole transfer lands in one hour bucket.
            # ``span * rate`` with span == duration is the exact same
            # float product the split loop would compute, so fast and
            # slow paths are bit-identical.
            self._bits[hour] += duration_seconds * rate_bps
            return
        bits = self._bits
        remaining = duration_seconds
        cursor = start
        while remaining > 0:
            hour = int(cursor // _SECONDS_PER_HOUR)
            hour_end = (hour + 1) * _SECONDS_PER_HOUR
            span = min(remaining, hour_end - cursor)
            bits[hour] += span * rate_bps
            cursor += span
            remaining -= span

    def add_bits(self, time: float, bits: float) -> None:
        """Meter an instantaneous transfer of ``bits`` at ``time``."""
        if bits < 0:
            raise SimulationError(f"cannot meter negative bits ({bits})")
        self._bits[int(time // _SECONDS_PER_HOUR)] += bits

    def add_bits_bulk(self, hours: Iterable[int], bits_per_hour: Iterable[float]) -> None:
        """Accumulate pre-split ``(hour, bits)`` rows at once.

        The columnar engine's ingestion path: rows come out of
        :func:`expand_intervals` after dense accumulation, so they are
        already non-negative, hour-deduplicated, and zero-free.  This is
        a trusted hot path -- callers own the validation the per-call
        API performs.
        """
        buckets = self._bits
        for hour, bits in zip(hours, bits_per_hour):
            buckets[hour] += bits

    def buckets(self) -> Dict[int, float]:
        """Plain ``{absolute hour: bits}`` snapshot (for tests/serialization)."""
        return dict(self._bits)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def total_bits(self) -> float:
        """All bits metered so far."""
        return sum(self._bits.values())

    def bits_in_hour(self, hour_index: int) -> float:
        """Bits metered during absolute hour ``hour_index``."""
        return self._bits.get(hour_index, 0.0)

    def rate_in_hour(self, hour_index: int) -> float:
        """Average bits/second during absolute hour ``hour_index``."""
        return self.bits_in_hour(hour_index) / units.SECONDS_PER_HOUR

    def hours(self) -> List[int]:
        """Absolute hour indices with any recorded traffic, sorted."""
        return sorted(self._bits)

    def hourly_rates(
        self,
        peak_hours: Iterable[int] = range(units.HOURS_PER_DAY),
        min_time: float = 0.0,
        max_time: float = math.inf,
    ) -> List[Tuple[int, float]]:
        """(absolute hour, rate) samples filtered by hour-of-day and window.

        ``peak_hours`` restricts to the given hour-of-day buckets;
        ``min_time`` / ``max_time`` (seconds) bound the absolute window --
        experiments use ``min_time`` to drop the cache warm-up.
        """
        wanted = set(peak_hours)
        lo = min_time / units.SECONDS_PER_HOUR
        hi = max_time / units.SECONDS_PER_HOUR
        samples = []
        for hour, bits in sorted(self._bits.items()):
            if hour < lo or hour >= hi:
                continue
            if hour % units.HOURS_PER_DAY in wanted:
                samples.append((hour, bits / units.SECONDS_PER_HOUR))
        return samples

    def mean_rate(
        self,
        peak_hours: Iterable[int] = range(units.HOURS_PER_DAY),
        min_time: float = 0.0,
        max_time: float = math.inf,
    ) -> float:
        """Mean of the filtered hourly rates (0.0 when nothing matches)."""
        samples = self.hourly_rates(peak_hours, min_time, max_time)
        if not samples:
            return 0.0
        return sum(rate for _, rate in samples) / len(samples)

    def rate_by_hour_of_day(self, min_time: float = 0.0) -> List[float]:
        """Average rate per hour-of-day bucket (the Fig 7 series).

        Buckets are averaged over the days each bucket actually appears
        in, so partial trailing days do not dilute the profile.
        """
        sums = [0.0] * units.HOURS_PER_DAY
        counts = [0] * units.HOURS_PER_DAY
        lo = min_time / units.SECONDS_PER_HOUR
        if not self._bits:
            return sums
        last_hour = max(self._bits)
        for hour in range(int(math.ceil(lo)), last_hour + 1):
            hod = hour % units.HOURS_PER_DAY
            sums[hod] += self._bits.get(hour, 0.0) / units.SECONDS_PER_HOUR
            counts[hod] += 1
        return [s / c if c else 0.0 for s, c in zip(sums, counts)]

    def merged_with(self, other: "HourlyMeter") -> "HourlyMeter":
        """A new meter holding the sum of both meters' buckets."""
        merged = HourlyMeter()
        for hour, bits in self._bits.items():
            merged._bits[hour] += bits
        for hour, bits in other._bits.items():
            merged._bits[hour] += bits
        return merged

    @classmethod
    def merged(cls, meters: Iterable["HourlyMeter"]) -> "HourlyMeter":
        """Fold several meters into one, meter by meter in given order.

        Each bucket accumulates its contributions in the iteration
        order of ``meters``.  This is the canonical reduction for
        per-neighborhood meters: both a monolithic run and a shard
        merge fold in ascending global neighborhood id, so the float
        additions happen in the identical sequence and the folded
        buckets are bit-identical regardless of how the run was
        partitioned.
        """
        out = cls()
        bits = out._bits
        for meter in meters:
            for hour, value in meter._bits.items():
                bits[hour] += value
        return out


def expand_intervals(starts, durations, rate_bps: float = units.STREAM_RATE_BPS):
    """Vectorized :meth:`HourlyMeter.add_interval` over event columns.

    Returns ``(event_ids, hours, bits)`` numpy arrays -- one row per
    (event, hour bucket) contribution, ordered event-major: all of event
    0's hour chunks in split order, then event 1's, and so on.  Each
    chunk's value is the identical float product the scalar meter
    computes, and the event-major order means an order-preserving
    scatter-add (``np.add.at``) accumulates every bucket through the
    same sequence of float additions as per-event ``add_interval`` calls
    in event order -- the bit-identity the columnar engine relies on.

    Why one loop covers both scalar paths: the scalar fast path (whole
    transfer inside one hour) adds ``duration * rate`` where the split
    loop's first chunk would add ``min(duration, span) * rate`` with
    ``min`` selecting ``duration`` -- the same product -- and the
    remainder ``duration - duration`` is exactly zero, ending the event.

    Trusted hot path: callers guarantee non-negative inputs (the drain
    loop already filters float-noise slivers).
    """
    import numpy as np

    cursor = np.asarray(starts, dtype=np.float64)
    remaining = np.asarray(durations, dtype=np.float64)
    n = cursor.size
    counts = np.zeros(n, dtype=np.int64)
    ids = np.arange(n, dtype=np.int64)
    chunks = []
    while ids.size:
        # Exact floor of cursor / 3600, matching Python's fmod-corrected
        # float ``//`` even when a cursor sits within a rounding error
        # of an hour boundary (np.floor alone can be off by one there).
        hour = np.floor(cursor / _SECONDS_PER_HOUR)
        hour[hour * _SECONDS_PER_HOUR > cursor] -= 1.0
        hour[(hour + 1.0) * _SECONDS_PER_HOUR <= cursor] += 1.0
        hour = hour.astype(np.int64)
        span = np.minimum(remaining, (hour + 1) * _SECONDS_PER_HOUR - cursor)
        chunks.append((ids, hour, span * rate_bps))
        counts[ids] += 1
        live = remaining > span
        ids = ids[live]
        cursor = cursor[live] + span[live]
        remaining = remaining[live] - span[live]

    offsets = np.cumsum(counts) - counts
    total = int(counts.sum())
    event_ids = np.empty(total, dtype=np.int64)
    hours = np.empty(total, dtype=np.int64)
    bits = np.empty(total, dtype=np.float64)
    for iteration, (chunk_ids, chunk_hours, chunk_bits) in enumerate(chunks):
        at = offsets[chunk_ids] + iteration
        event_ids[at] = chunk_ids
        hours[at] = chunk_hours
        bits[at] = chunk_bits
    return event_ids, hours, bits
