"""The paper's primary contribution, assembled.

:class:`~repro.core.system.CableVoDSystem` wires the substrates together
-- HFC topology, set-top peers, index servers with a caching strategy,
the central media server -- and plays a workload trace through them on
the discrete-event engine, producing a
:class:`~repro.core.results.SimulationResult` with the per-hour
bandwidth series every experiment in the paper reports on.

Public entry point::

    from repro.core import SimulationConfig, run_simulation
    result = run_simulation(trace, SimulationConfig(neighborhood_size=1000))
    print(result.peak_server_gbps())
"""

from repro.core.config import SimulationConfig
from repro.core.meter import HourlyMeter
from repro.core.parallel import run_many
from repro.core.results import SimulationCounters, SimulationResult
from repro.core.runner import (
    resolve_engine,
    run_simulation,
    set_default_engine,
)
from repro.core.shard import run_sharded
from repro.core.system import CableVoDSystem, columnar_supported

__all__ = [
    "SimulationConfig",
    "HourlyMeter",
    "SimulationCounters",
    "SimulationResult",
    "run_simulation",
    "run_many",
    "run_sharded",
    "resolve_engine",
    "set_default_engine",
    "columnar_supported",
    "CableVoDSystem",
]
