"""The cable operator's central media server.

In the paper's architecture the central server is the miss path: it
holds the entire catalog and streams any segment the neighborhood caches
cannot supply, over the fiber network to the headend, which rebroadcasts
it on the coax (Fig 4).  The whole point of the system is to shrink this
server's peak bandwidth, so the model is deliberately thin: a bandwidth
meter plus delivery counters.  Disk I/O limits are outside the paper's
evaluation (it reports Gb/s, not IOPS) and are not modelled.
"""

from __future__ import annotations

from repro import units
from repro.core.meter import HourlyMeter


class MediaServer:
    """Central catalog server: meters every byte it is asked to stream."""

    def __init__(self) -> None:
        self.meter = HourlyMeter()
        self.deliveries = 0

    def serve(self, now: float, watch_seconds: float,
              rate_bps: float = units.STREAM_RATE_BPS) -> None:
        """Stream one segment (or partial segment) starting at ``now``."""
        self.meter.add_interval(now, watch_seconds, rate_bps)
        self.deliveries += 1

    def total_bits(self) -> float:
        """All bits this server has streamed."""
        return self.meter.total_bits()
