"""Simulation configuration.

One immutable object that captures every knob the paper's experiments
turn: neighborhood size, per-peer storage, caching strategy, and the
measurement window conventions.  Constructing a config validates all
parameters eagerly so experiment sweeps fail fast on bad inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro import units
from repro.cache.factory import LFUSpec, StrategySpec
from repro.errors import ConfigurationError

#: The paper's reporting window: 19:00-22:59 local time (section V-A).
DEFAULT_PEAK_HOURS: Tuple[int, ...] = (19, 20, 21, 22)


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one simulator execution.

    Attributes
    ----------
    neighborhood_size:
        Subscribers per coax segment; the paper explores 100-1,000.
    per_peer_storage_gb:
        Disk each set-top box contributes (paper ceiling: 10 GB).
        Total neighborhood cache = ``neighborhood_size x per_peer``
        rounded down to whole segments.
    strategy:
        The caching policy spec (default: 3-day-history LFU).
    max_streams_per_peer:
        Concurrent logical channels per box (paper: 2).
    warmup_days:
        Leading window excluded from all reported rates so cold caches
        do not bias short simulations.  The paper simulates seven months,
        where cold-start is negligible; for 1-2 week windows it is not.
    peak_hours:
        Hour-of-day buckets averaged for "peak" loads.
    placement_seed:
        Seed of the user->neighborhood shuffle.  Fixed by default per the
        paper's section V-B determinism requirement.
    """

    neighborhood_size: int = 1_000
    per_peer_storage_gb: float = 10.0
    strategy: StrategySpec = field(default_factory=LFUSpec)
    max_streams_per_peer: int = units.MAX_STREAMS_PER_PEER
    warmup_days: float = 2.0
    peak_hours: Tuple[int, ...] = DEFAULT_PEAK_HOURS
    placement_seed: int = 60311

    def __post_init__(self) -> None:
        if self.neighborhood_size <= 0:
            raise ConfigurationError(
                f"neighborhood_size must be positive, got {self.neighborhood_size}"
            )
        if self.per_peer_storage_gb < 0:
            raise ConfigurationError(
                f"per_peer_storage_gb must be non-negative, "
                f"got {self.per_peer_storage_gb}"
            )
        if self.max_streams_per_peer < 1:
            raise ConfigurationError(
                f"max_streams_per_peer must be at least 1, "
                f"got {self.max_streams_per_peer}"
            )
        if self.warmup_days < 0:
            raise ConfigurationError(
                f"warmup_days must be non-negative, got {self.warmup_days}"
            )
        if not self.peak_hours:
            raise ConfigurationError("peak_hours must not be empty")
        for hour in self.peak_hours:
            if not 0 <= hour < units.HOURS_PER_DAY:
                raise ConfigurationError(f"peak hour {hour} outside 0-23")

    @property
    def per_peer_storage_bytes(self) -> float:
        """Per-box contribution in bytes."""
        return units.gigabytes(self.per_peer_storage_gb)

    @property
    def warmup_seconds(self) -> float:
        """Warm-up length in seconds."""
        return self.warmup_days * units.SECONDS_PER_DAY

    def total_cache_tb(self) -> float:
        """Nominal neighborhood cache size in TB (the Fig 8/9 x-axis)."""
        return units.to_terabytes(
            self.per_peer_storage_bytes * self.neighborhood_size
        )

    def with_strategy(self, strategy: StrategySpec) -> "SimulationConfig":
        """Copy of this config with a different caching policy."""
        return replace(self, strategy=strategy)

    def label(self) -> str:
        """Compact identifier used in experiment tables."""
        return (
            f"{self.strategy.label} n={self.neighborhood_size} "
            f"{self.per_peer_storage_gb:g}GB/peer"
        )
