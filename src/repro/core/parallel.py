"""Multiprocessing sweep runner: many simulation tasks, tiny pickles.

Experiment figures sweep dozens of :class:`SimulationConfig` points --
and, since the scalability grid migrated onto the scenario layer, dozens
of *workloads* too.  Each point is an independent simulator execution,
so a sweep is embarrassingly parallel -- but a PowerInfo-scale trace is
tens of millions of records and pickling it to every worker would dwarf
the simulation itself.  Instead every task ships a
:class:`~repro.trace.workload.Workload` (a few-field frozen dataclass)
and each worker *regenerates* the trace from it: generation and the
scaling transforms are deterministic, so every worker sees the
byte-identical workload, and the scheme is safe under both ``fork`` and
``spawn`` start methods.  Worker-side LRUs
(:func:`~repro.trace.workload.cached_workload_trace`) mean a worker
builds each distinct trace once no matter how many tasks share it.

:func:`iter_task_results` is the primitive: it yields one outcome per
task *in task order, as results land* (``imap`` under the hood), which
is what lets the CLI stream sweep rows live.  :func:`run_many` is the
list-returning convenience over a single shared workload.  Both fall
back to a plain serial loop for one worker (or one task) -- against the
process-wide memoized trace, so repeated serial sweeps never regenerate
a workload the scenario runner already built -- and callers get
bit-identical counters and meter buckets regardless of worker count.

Since the zero-copy hand-off (:mod:`repro.trace.share`), regeneration
is the *fallback*, not the norm: the parent serializes each workload
that multiple tasks share into a mapped column file -- lazily, when the
workload's first task is dispatched, so publishes overlap running
simulations instead of serializing the sweep's start -- and ships
workers a tiny :class:`~repro.trace.share.TraceShareHandle` next to
each such task (a singleton workload is generated once either way, so
it stays on the worker-side path).  Workers attach to the mapped
columns (the OS page cache is the shared memory) instead of
regenerating, which turns per-worker generator cost into a single
parent-side publish.  The
regenerate path remains for one-worker runs, for hosts where the share
file cannot be written, and under ``REPRO_TRACE_SHARE=off`` -- and is
bit-identical to the attach path by construction (the columns are the
generated trace).

Tasks may also request named **baseline metrics** (``no_cache``,
``multicast`` -- see :mod:`repro.baselines.registry`): analytic columns
computed from the task's transformed trace, memoized per distinct
(workload, warmup) inside whichever process runs the task, and returned
alongside the simulation result so sweeps over scaled workloads get
their reference lines without the parent ever materializing the trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.errors import ConfigurationError
from repro.trace.records import Trace
from repro.trace.share import TraceShareHandle, publish_trace, share_enabled, unlink_trace
from repro.trace.synthetic import PowerInfoModel
from repro.trace.workload import Workload, cached_workload_trace


@dataclass(frozen=True)
class ShardSpec:
    """Which slice of a sharded metro replay one task executes.

    A run cut into ``n_shards`` dispatches one task per shard; each
    worker recomputes the deterministic neighborhood partition
    (:mod:`repro.topology.sharding`) from the task's workload and
    config, so the spec itself stays three integers and a flag.

    Attributes
    ----------
    n_shards:
        Total shard count of the run this task belongs to.
    index:
        This task's shard (``0 <= index < n_shards``).
    streaming:
        Regenerate the trace lazily in the worker and replay it chunk
        by chunk (:meth:`~repro.core.system.CableVoDSystem.run_streaming`)
        instead of attaching/materializing the whole trace.
    chunk_hours:
        Generation chunk span for streaming replay (ignored otherwise).
    """

    n_shards: int
    index: int
    streaming: bool = False
    chunk_hours: int = 6

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if not (0 <= self.index < self.n_shards):
            raise ConfigurationError(
                f"shard index must be in 0..{self.n_shards - 1}, "
                f"got {self.index}"
            )
        if self.chunk_hours < 1:
            raise ConfigurationError(
                f"chunk_hours must be >= 1, got {self.chunk_hours}"
            )


@dataclass(frozen=True)
class SimulationTask:
    """One simulator execution as a picklable value.

    Attributes
    ----------
    workload:
        The (possibly transformed) trace the run replays; workers
        regenerate it from this, the trace itself is never pickled.
    config:
        Deployment and policy knobs for the run.
    engine:
        Event-engine path forwarded to
        :func:`~repro.core.runner.run_simulation`; ``None`` (default)
        lets the running process resolve it (override / ``REPRO_ENGINE``
        / ``"bucket"``) -- and since
        :func:`~repro.core.runner.set_default_engine` mirrors into the
        environment, spawned pool workers resolve the same engine.
    baselines:
        Names of baseline metrics (:data:`repro.baselines.registry`)
        to compute from this task's trace; the values come back in the
        outcome's second element, unextrapolated.  Baselines are
        whole-trace analytics, so they cannot ride on a shard task.
    shard:
        When set, the task replays one neighborhood group of a sharded
        metro run (:mod:`repro.core.shard`) instead of the whole plant.
    live:
        When set, the task drains its trace through the live headend
        mode (:meth:`~repro.core.system.CableVoDSystem.run_live`)
        instead of the offline replay: a ``(throttle, fairness)`` pair
        of optional admission specs (:mod:`repro.live.specs`), both
        tiny frozen dataclasses so the pickle stays small.  Live tasks
        are monolithic -- they cannot carry a shard.
    """

    workload: Workload
    config: SimulationConfig
    engine: Optional[str] = None
    baselines: Tuple[str, ...] = ()
    shard: Optional[ShardSpec] = None
    live: Optional[Tuple] = None

    def __post_init__(self) -> None:
        if self.shard is not None and self.baselines:
            raise ConfigurationError(
                "baseline metrics are whole-trace analytics; request them "
                "on an unsharded task"
            )
        if self.live is not None and self.shard is not None:
            raise ConfigurationError(
                "live mode is a single arrival-order drain; it cannot "
                "ride on a shard task"
            )


#: What one task returns: the simulation result plus the task's baseline
#: columns (empty dict when the task requested none).
TaskOutcome = Tuple[SimulationResult, Dict[str, float]]

#: Per-process memo of baseline columns, keyed by everything they depend
#: on.  A handful of entries per sweep (one per distinct workload), so a
#: plain dict is fine.
_baseline_memo: Dict[Tuple[Workload, Tuple[str, ...], float],
                     Tuple[Tuple[str, float], ...]] = {}


def _task_baselines(task: SimulationTask, trace: Trace) -> Dict[str, float]:
    """Baseline columns for one task's trace, memoized in this process."""
    if not task.baselines:
        return {}
    key = (task.workload, task.baselines, task.config.warmup_days)
    items = _baseline_memo.get(key)
    if items is None:
        from repro.baselines.registry import baseline_columns

        items = tuple(
            baseline_columns(task.baselines, trace,
                             warmup_seconds=task.config.warmup_seconds).items()
        )
        _baseline_memo[key] = items
    return dict(items)


def _run_live_task(task: SimulationTask, trace: Trace) -> SimulationResult:
    """Drain one live task: arrival-order replay behind admission."""
    from repro.core.system import CableVoDSystem
    from repro.live.admission import AdmissionController

    throttle, fairness = task.live
    controller = AdmissionController(throttle=throttle, fairness=fairness)
    return CableVoDSystem(trace, task.config).run_live(controller)


def _execute_task(task: SimulationTask) -> TaskOutcome:
    """Run one task against the process-wide memoized (regenerated) trace."""
    if task.shard is not None:
        from repro.core.shard import execute_shard_task

        return execute_shard_task(task), {}
    trace = cached_workload_trace(task.workload)
    if task.live is not None:
        return _run_live_task(task, trace), _task_baselines(task, trace)
    result = run_simulation(trace, task.config, engine=task.engine)
    return result, _task_baselines(task, trace)


@lru_cache(maxsize=2)
def _attached_trace(handle: "TraceShareHandle") -> Trace:
    """Worker-side memo of attached shared traces.

    Sized like the transformed-trace LRU in :mod:`repro.trace.workload`:
    ordered ``imap`` with chunksize 1 can interleave two workloads on
    one worker, and a slot is a fully materialized trace.
    """
    from repro.trace.share import attach_trace

    return attach_trace(handle)


def _execute_shared(payload: Tuple[SimulationTask, Optional["TraceShareHandle"]],
                    ) -> TaskOutcome:
    """Pool-worker entry: attach the published trace, else regenerate.

    A handle that cannot be attached (deleted tmp file, corrupt bytes)
    degrades to the deterministic regenerate path instead of failing
    the sweep -- the two are bit-identical by construction.
    """
    task, handle = payload
    if task.shard is not None:
        from repro.core.shard import execute_shard_task

        return execute_shard_task(task, handle=handle), {}
    trace: Optional[Trace] = None
    if handle is not None:
        from repro.errors import TraceError

        try:
            trace = _attached_trace(handle)
        except (OSError, TraceError):
            trace = None
    if trace is None:
        trace = cached_workload_trace(task.workload)
    if task.live is not None:
        return _run_live_task(task, trace), _task_baselines(task, trace)
    result = run_simulation(trace, task.config, engine=task.engine)
    return result, _task_baselines(task, trace)


def _cpu_workers() -> int:
    """One worker per CPU available to this process.

    ``os.process_cpu_count()`` (Python 3.13+) respects affinity masks --
    the honest number inside containers; older interpreters fall back
    to ``os.cpu_count()``.
    """
    process_cpus = getattr(os, "process_cpu_count", None)
    count = process_cpus() if process_cpus is not None else None
    return count or os.cpu_count() or 1


def default_workers() -> int:
    """The sweep parallelism used when nobody asks for a specific count.

    The ``REPRO_WORKERS`` environment variable wins (``0`` = one per
    CPU), so CI and batch hosts can pin parallelism without threading a
    flag through every entry point; otherwise one worker per CPU.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            requested = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if requested < 0:
            raise ConfigurationError(
                f"REPRO_WORKERS must be non-negative, got {requested}"
            )
        if requested:
            return requested
        return _cpu_workers()
    return _cpu_workers()


#: Process count used when a sweep entry point is called without an
#: explicit ``workers`` argument.  ``None`` (the initial value) defers
#: to :func:`default_workers` -- the ``REPRO_WORKERS`` environment
#: variable if set, else one worker per CPU -- so sweeps parallelize on
#: capable hosts without anyone passing ``--workers``.  The CLI flag
#: overrides it for one invocation.
_default_workers: Optional[int] = None


def set_default_workers(workers: int) -> None:
    """Pin the sweep parallelism used by default.

    ``1`` keeps everything serial and in-process; ``0`` means one
    worker per CPU.
    """
    global _default_workers
    if workers < 0:
        raise ConfigurationError(f"workers must be non-negative, got {workers}")
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    """The sweep parallelism used when callers do not pass ``workers``.

    ``None`` means "auto": resolve through :func:`default_workers` at
    sweep time.
    """
    return _default_workers


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` means "use the default" (:func:`default_workers`:
    ``REPRO_WORKERS`` if set, else one per CPU); an explicit ``0``
    always means one per CPU -- a caller asking for per-CPU
    parallelism is not overridden by the ambient environment.
    Negative values are rejected.
    """
    if workers is None:
        return default_workers()
    if workers == 0:
        return _cpu_workers()
    if workers < 0:
        raise ConfigurationError(f"workers must be non-negative, got {workers}")
    return workers


def _iter_task_payloads(
    tasks: Sequence[SimulationTask],
    handles: Dict[Workload, TraceShareHandle],
) -> Iterator[Tuple[SimulationTask, Optional[TraceShareHandle]]]:
    """Yield ``(task, handle)`` pairs, publishing shared workloads lazily.

    Only workloads referenced by two or more tasks are published: a
    singleton workload costs one generation either way (ordered
    dispatch hands all its tasks to one worker's memo), so publishing
    it would just serialize that generation into the parent.  Each
    shared workload is published when its *first* task is dispatched --
    ``imap``'s feeder thread consumes this generator concurrently with
    the workers, so later publishes overlap earlier tasks' simulations
    instead of all K serializations running up front before the pool
    sees any work (and an abandoned sweep never publishes the tail it
    never dispatched).  Generation happens through the same memoized
    path serial runs use (a trace the scenario runner already built is
    serialized straight from cache) and the object trace is released
    back to the LRU right after: only the flat file (mapped,
    page-cache-shared) stays for the sweep's duration.

    The caller owns ``handles`` (and their unlinking): entries appear
    as publishes happen.  The first failure to write (full tmp,
    unwritable dir) stops further publishing -- already-published
    handles keep serving their tasks; everything else degrades to
    worker-side regeneration, bit-identically.
    """
    references: Dict[Workload, int] = {}
    for task in tasks:
        # Streaming shard tasks regenerate lazily in the worker and
        # never touch the materialized trace -- publishing for them
        # would build (and serialize) the very object streaming exists
        # to avoid.
        if task.shard is not None and task.shard.streaming:
            continue
        references[task.workload] = references.get(task.workload, 0) + 1
    give_up = False
    for task in tasks:
        workload = task.workload
        handle = handles.get(workload)
        if handle is None and not give_up and references.get(workload, 0) > 1:
            try:
                # Late-bound module global so tests (and callers) can
                # monkeypatch the publish path.
                handles[workload] = handle = publish_trace(
                    cached_workload_trace(workload)
                )
            except OSError:
                give_up = True
                handle = None
        yield task, handle


def iter_task_results(
    tasks: Sequence[SimulationTask],
    workers: Optional[int] = None,
) -> Iterator[TaskOutcome]:
    """Run every task, yielding outcomes in task order as they land.

    Order is stable (``imap``, not ``imap_unordered``) and results are
    bit-identical for any worker count.  With one worker -- or a single
    task -- everything runs serially in this process against the
    memoized traces, which keeps single-CPU hosts and debugging
    sessions free of multiprocessing overhead.  ``workers=None`` defers
    to :func:`get_default_workers` (the CLI's ``--workers`` flag), else
    :func:`default_workers`.

    Multi-worker runs publish each distinct workload's trace once
    (:mod:`repro.trace.share`) so workers attach to the mapped columns
    instead of regenerating; ``REPRO_TRACE_SHARE=off`` (or a failed
    publish) falls back to the regenerate path, bit-identically.
    """
    tasks = list(tasks)
    if workers is None:
        workers = get_default_workers()
    workers = min(resolve_workers(workers), len(tasks))
    if workers <= 1:
        for task in tasks:
            yield _execute_task(task)
        return

    import multiprocessing as mp

    handles: Dict[Workload, TraceShareHandle] = {}
    try:
        if share_enabled():
            payloads = _iter_task_payloads(tasks, handles)
        else:
            payloads = ((task, None) for task in tasks)
        context = mp.get_context()
        # Pool.__exit__ terminates outstanding work, so abandoning the
        # generator mid-stream cleans the workers up too -- and joins
        # the imap feeder thread, so no publish races the unlink below.
        with context.Pool(processes=workers) as pool:
            # chunksize=1: tasks vary wildly in cost (population
            # transforms multiply event counts; cache sizes change hit
            # ratios), so fine-grained dispatch balances the pool better
            # than range partitioning.
            yield from pool.imap(_execute_shared, payloads, chunksize=1)
    finally:
        for handle in handles.values():
            unlink_trace(handle)


def run_many(
    trace_model: Union[PowerInfoModel, Workload],
    configs: Sequence[SimulationConfig],
    workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[SimulationResult]:
    """Run every config against one shared workload, ``workers`` at a time.

    Parameters
    ----------
    trace_model:
        Seeded workload model (or an explicit
        :class:`~repro.trace.workload.Workload`); each worker
        regenerates its trace from this, the trace itself is never
        pickled.  Serial runs replay the process-wide memoized trace.
    configs:
        Configurations to run; results come back in the same order.
    workers:
        Process count (``None``: the default; ``0``: one per CPU).
    engine:
        Event-engine path forwarded to every run; ``None`` resolves
        through :func:`~repro.core.runner.resolve_engine` in whichever
        process executes the task.
    """
    if isinstance(trace_model, Workload):
        workload = trace_model
    else:
        workload = Workload(model=trace_model)
    tasks = [SimulationTask(workload=workload, config=config, engine=engine)
             for config in configs]
    return [result for result, _ in iter_task_results(tasks, workers=workers)]
