"""Multiprocessing sweep runner: many simulation tasks, tiny pickles.

Experiment figures sweep dozens of :class:`SimulationConfig` points --
and, since the scalability grid migrated onto the scenario layer, dozens
of *workloads* too.  Each point is an independent simulator execution,
so a sweep is embarrassingly parallel -- but a PowerInfo-scale trace is
tens of millions of records and pickling it to every worker would dwarf
the simulation itself.  Instead every task ships a
:class:`~repro.trace.workload.Workload` (a few-field frozen dataclass)
and each worker *regenerates* the trace from it: generation and the
scaling transforms are deterministic, so every worker sees the
byte-identical workload, and the scheme is safe under both ``fork`` and
``spawn`` start methods.  Worker-side LRUs
(:func:`~repro.trace.workload.cached_workload_trace`) mean a worker
builds each distinct trace once no matter how many tasks share it.

:func:`iter_task_results` is the primitive: it yields one outcome per
task *in task order, as results land* (``imap`` under the hood), which
is what lets the CLI stream sweep rows live.  :func:`run_many` is the
list-returning convenience over a single shared workload.  Both fall
back to a plain serial loop for one worker (or one task) -- against the
process-wide memoized trace, so repeated serial sweeps never regenerate
a workload the scenario runner already built -- and callers get
bit-identical counters and meter buckets regardless of worker count.

Tasks may also request named **baseline metrics** (``no_cache``,
``multicast`` -- see :mod:`repro.baselines.registry`): analytic columns
computed from the task's transformed trace, memoized per distinct
(workload, warmup) inside whichever process runs the task, and returned
alongside the simulation result so sweeps over scaled workloads get
their reference lines without the parent ever materializing the trace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.errors import ConfigurationError
from repro.trace.synthetic import PowerInfoModel
from repro.trace.workload import Workload, cached_workload_trace


@dataclass(frozen=True)
class SimulationTask:
    """One simulator execution as a picklable value.

    Attributes
    ----------
    workload:
        The (possibly transformed) trace the run replays; workers
        regenerate it from this, the trace itself is never pickled.
    config:
        Deployment and policy knobs for the run.
    engine:
        Event-engine path forwarded to
        :func:`~repro.core.runner.run_simulation`.
    baselines:
        Names of baseline metrics (:data:`repro.baselines.registry`)
        to compute from this task's trace; the values come back in the
        outcome's second element, unextrapolated.
    """

    workload: Workload
    config: SimulationConfig
    engine: str = "bucket"
    baselines: Tuple[str, ...] = ()


#: What one task returns: the simulation result plus the task's baseline
#: columns (empty dict when the task requested none).
TaskOutcome = Tuple[SimulationResult, Dict[str, float]]

#: Per-process memo of baseline columns, keyed by everything they depend
#: on.  A handful of entries per sweep (one per distinct workload), so a
#: plain dict is fine.
_baseline_memo: Dict[Tuple[Workload, Tuple[str, ...], float],
                     Tuple[Tuple[str, float], ...]] = {}


def _task_baselines(task: SimulationTask) -> Dict[str, float]:
    """Baseline columns for one task, memoized in this process."""
    if not task.baselines:
        return {}
    key = (task.workload, task.baselines, task.config.warmup_days)
    items = _baseline_memo.get(key)
    if items is None:
        from repro.baselines.registry import baseline_columns

        trace = cached_workload_trace(task.workload)
        items = tuple(
            baseline_columns(task.baselines, trace,
                             warmup_seconds=task.config.warmup_seconds).items()
        )
        _baseline_memo[key] = items
    return dict(items)


def _execute_task(task: SimulationTask) -> TaskOutcome:
    """Run one task (in this process or a pool worker)."""
    trace = cached_workload_trace(task.workload)
    result = run_simulation(trace, task.config, engine=task.engine)
    return result, _task_baselines(task)


def _cpu_workers() -> int:
    """One worker per CPU available to this process.

    ``os.process_cpu_count()`` (Python 3.13+) respects affinity masks --
    the honest number inside containers; older interpreters fall back
    to ``os.cpu_count()``.
    """
    process_cpus = getattr(os, "process_cpu_count", None)
    count = process_cpus() if process_cpus is not None else None
    return count or os.cpu_count() or 1


def default_workers() -> int:
    """The sweep parallelism used when nobody asks for a specific count.

    The ``REPRO_WORKERS`` environment variable wins (``0`` = one per
    CPU), so CI and batch hosts can pin parallelism without threading a
    flag through every entry point; otherwise one worker per CPU.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            requested = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if requested < 0:
            raise ConfigurationError(
                f"REPRO_WORKERS must be non-negative, got {requested}"
            )
        if requested:
            return requested
        return _cpu_workers()
    return _cpu_workers()


#: Process count used when a sweep entry point is called without an
#: explicit ``workers`` argument.  ``None`` (the initial value) defers
#: to :func:`default_workers` -- the ``REPRO_WORKERS`` environment
#: variable if set, else one worker per CPU -- so sweeps parallelize on
#: capable hosts without anyone passing ``--workers``.  The CLI flag
#: overrides it for one invocation.
_default_workers: Optional[int] = None


def set_default_workers(workers: int) -> None:
    """Pin the sweep parallelism used by default.

    ``1`` keeps everything serial and in-process; ``0`` means one
    worker per CPU.
    """
    global _default_workers
    if workers < 0:
        raise ConfigurationError(f"workers must be non-negative, got {workers}")
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    """The sweep parallelism used when callers do not pass ``workers``.

    ``None`` means "auto": resolve through :func:`default_workers` at
    sweep time.
    """
    return _default_workers


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` means "use the default" (:func:`default_workers`:
    ``REPRO_WORKERS`` if set, else one per CPU); an explicit ``0``
    always means one per CPU -- a caller asking for per-CPU
    parallelism is not overridden by the ambient environment.
    Negative values are rejected.
    """
    if workers is None:
        return default_workers()
    if workers == 0:
        return _cpu_workers()
    if workers < 0:
        raise ConfigurationError(f"workers must be non-negative, got {workers}")
    return workers


def iter_task_results(
    tasks: Sequence[SimulationTask],
    workers: Optional[int] = None,
) -> Iterator[TaskOutcome]:
    """Run every task, yielding outcomes in task order as they land.

    Order is stable (``imap``, not ``imap_unordered``) and results are
    bit-identical for any worker count.  With one worker -- or a single
    task -- everything runs serially in this process against the
    memoized traces, which keeps single-CPU hosts and debugging
    sessions free of multiprocessing overhead.  ``workers=None`` defers
    to :func:`get_default_workers` (the CLI's ``--workers`` flag), else
    :func:`default_workers`.
    """
    tasks = list(tasks)
    if workers is None:
        workers = get_default_workers()
    workers = min(resolve_workers(workers), len(tasks))
    if workers <= 1:
        for task in tasks:
            yield _execute_task(task)
        return

    import multiprocessing as mp

    context = mp.get_context()
    # Pool.__exit__ terminates outstanding work, so abandoning the
    # generator mid-stream cleans the workers up too.
    with context.Pool(processes=workers) as pool:
        # chunksize=1: tasks vary wildly in cost (population transforms
        # multiply event counts; cache sizes change hit ratios), so
        # fine-grained dispatch balances the pool better than range
        # partitioning.
        yield from pool.imap(_execute_task, tasks, chunksize=1)


def run_many(
    trace_model: Union[PowerInfoModel, Workload],
    configs: Sequence[SimulationConfig],
    workers: Optional[int] = None,
    engine: str = "bucket",
) -> List[SimulationResult]:
    """Run every config against one shared workload, ``workers`` at a time.

    Parameters
    ----------
    trace_model:
        Seeded workload model (or an explicit
        :class:`~repro.trace.workload.Workload`); each worker
        regenerates its trace from this, the trace itself is never
        pickled.  Serial runs replay the process-wide memoized trace.
    configs:
        Configurations to run; results come back in the same order.
    workers:
        Process count (``None``: the default; ``0``: one per CPU).
    engine:
        Event-engine path forwarded to every run (see
        :func:`~repro.core.runner.run_simulation`).
    """
    if isinstance(trace_model, Workload):
        workload = trace_model
    else:
        workload = Workload(model=trace_model)
    tasks = [SimulationTask(workload=workload, config=config, engine=engine)
             for config in configs]
    return [result for result, _ in iter_task_results(tasks, workers=workers)]
