"""Multiprocessing sweep runner: many configs, one seeded trace model.

Experiment figures sweep dozens of :class:`SimulationConfig` points over
the *same* workload.  Each point is an independent simulator execution,
so the sweep is embarrassingly parallel -- but a PowerInfo-scale trace
is tens of millions of records and pickling it to every worker would
dwarf the simulation itself.  Instead each worker *regenerates* the
trace from its seeded :class:`~repro.trace.synthetic.PowerInfoModel`
(a few-field dataclass) in its initializer: generation is deterministic,
so every worker sees the byte-identical workload, and the scheme is safe
under both ``fork`` and ``spawn`` start methods.

``run_many`` preserves config order and falls back to a plain serial
loop for one worker (or one config), so callers get identical results --
bit-identical counters and meter buckets -- regardless of worker count.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.runner import run_simulation
from repro.errors import ConfigurationError
from repro.trace.records import Trace
from repro.trace.synthetic import PowerInfoModel, generate_trace

#: Trace shared by every task a worker process executes, built once per
#: worker by :func:`_init_worker`.
_worker_trace: Optional[Trace] = None
_worker_engine: str = "bucket"


def _init_worker(model: PowerInfoModel, engine: str) -> None:
    """Pool initializer: regenerate the workload inside the worker."""
    global _worker_trace, _worker_engine
    _worker_trace = generate_trace(model)
    _worker_engine = engine


def _run_one(config: SimulationConfig) -> SimulationResult:
    """Pool task: one simulator execution against the worker's trace."""
    if _worker_trace is None:  # pragma: no cover - initializer contract
        raise ConfigurationError("parallel worker used before initialization")
    return run_simulation(_worker_trace, config, engine=_worker_engine)


def _cpu_workers() -> int:
    """One worker per CPU available to this process.

    ``os.process_cpu_count()`` (Python 3.13+) respects affinity masks --
    the honest number inside containers; older interpreters fall back
    to ``os.cpu_count()``.
    """
    process_cpus = getattr(os, "process_cpu_count", None)
    count = process_cpus() if process_cpus is not None else None
    return count or os.cpu_count() or 1


def default_workers() -> int:
    """The sweep parallelism used when nobody asks for a specific count.

    The ``REPRO_WORKERS`` environment variable wins (``0`` = one per
    CPU), so CI and batch hosts can pin parallelism without threading a
    flag through every entry point; otherwise one worker per CPU.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            requested = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
        if requested < 0:
            raise ConfigurationError(
                f"REPRO_WORKERS must be non-negative, got {requested}"
            )
        if requested:
            return requested
        return _cpu_workers()
    return _cpu_workers()


#: Process count used when a sweep entry point is called without an
#: explicit ``workers`` argument.  ``None`` (the initial value) defers
#: to :func:`default_workers` -- the ``REPRO_WORKERS`` environment
#: variable if set, else one worker per CPU -- so sweeps parallelize on
#: capable hosts without anyone passing ``--workers``.  The CLI flag
#: overrides it for one invocation.
_default_workers: Optional[int] = None


def set_default_workers(workers: int) -> None:
    """Pin the sweep parallelism used by default.

    ``1`` keeps everything serial and in-process; ``0`` means one
    worker per CPU.
    """
    global _default_workers
    if workers < 0:
        raise ConfigurationError(f"workers must be non-negative, got {workers}")
    _default_workers = workers


def get_default_workers() -> Optional[int]:
    """The sweep parallelism used when callers do not pass ``workers``.

    ``None`` means "auto": resolve through :func:`default_workers` at
    sweep time.
    """
    return _default_workers


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a worker-count request.

    ``None`` means "use the default" (:func:`default_workers`:
    ``REPRO_WORKERS`` if set, else one per CPU); an explicit ``0``
    always means one per CPU -- a caller asking for per-CPU
    parallelism is not overridden by the ambient environment.
    Negative values are rejected.
    """
    if workers is None:
        return default_workers()
    if workers == 0:
        return _cpu_workers()
    if workers < 0:
        raise ConfigurationError(f"workers must be non-negative, got {workers}")
    return workers


def run_many(
    trace_model: PowerInfoModel,
    configs: Sequence[SimulationConfig],
    workers: Optional[int] = None,
    engine: str = "bucket",
) -> List[SimulationResult]:
    """Run every config against the model's trace, ``workers`` at a time.

    Parameters
    ----------
    trace_model:
        Seeded workload model; each worker regenerates its trace from
        this (the trace itself is never pickled).
    configs:
        Configurations to run; results come back in the same order.
    workers:
        Process count (``None``/0: one per CPU).  With one worker -- or
        a single config -- the sweep runs serially in-process, which
        keeps single-CPU hosts and debugging sessions free of
        multiprocessing overhead.
    engine:
        Event-engine path forwarded to every run (see
        :func:`~repro.core.runner.run_simulation`).
    """
    configs = list(configs)
    workers = min(resolve_workers(workers), len(configs))
    if workers <= 1:
        trace = generate_trace(trace_model)
        return [run_simulation(trace, config, engine=engine) for config in configs]

    import multiprocessing as mp

    context = mp.get_context()
    with context.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(trace_model, engine),
    ) as pool:
        # chunksize=1: configs vary wildly in cost (cache size changes
        # hit ratios changes event counts), so fine-grained dispatch
        # balances the pool better than range partitioning.
        return pool.map(_run_one, configs, chunksize=1)
