"""Sharded metro replay: per-neighborhood-group tasks, exact reduction.

A metro-scale deployment is hundreds of neighborhoods whose caches
never interact (the index server at each headend manages only its own
coax segment), so one giant replay can be cut into per-group
:class:`~repro.core.parallel.SimulationTask` shards, dispatched through
the ordinary sweep pool, and the shard results reduced back into the
monolithic numbers -- bit-identically, because every float fold in the
reduction (:meth:`~repro.core.results.SimulationResult.merged`) happens
in the same ascending-global-neighborhood-id order the monolithic
engines use internally.

Each shard worker rebuilds the deterministic user placement from three
integers, picks its contiguous neighborhood group
(:mod:`repro.topology.sharding`), and replays only its own users'
sessions:

* **non-streaming** -- the parent publishes the workload's trace once
  (:mod:`repro.trace.share`) and the worker filters the mapped columns
  down to its users before building a single shard-sized
  :class:`~repro.trace.records.Trace` slice (global user ids, global
  ``n_users``, so placement and strategies see the unsharded world);
* **streaming** -- the worker regenerates the trace lazily
  (:mod:`repro.trace.streaming`), filters each hour-chunk to its users,
  and feeds :meth:`~repro.core.system.CableVoDSystem.run_streaming`, so
  peak resident session columns stay O(chunk) per worker and the full
  trace never exists anywhere.

Two configurations cannot shard and are rejected up front: strategies
that share a cross-neighborhood popularity feed
(``StrategySpec.uses_global_feed``) couple the shards, and
future-knowledge strategies cannot run streamed (no full trace to take
futures from).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.runner import resolve_engine
from repro.core.system import CableVoDSystem
from repro.errors import ConfigurationError
from repro.topology.placement import place_users
from repro.topology.sharding import n_neighborhoods_for, partition_neighborhoods
from repro.trace.families import WorkloadModel
from repro.trace.records import Trace
from repro.trace.streaming import TraceChunk, open_trace_stream
from repro.trace.workload import Workload, cached_workload_trace


def workload_n_users(workload: Workload) -> int:
    """The transformed trace's user count, without building the trace.

    Population scaling multiplies the id space (copy ``k`` of user ``u``
    is ``u + k * n_users``); catalog scaling leaves users alone.  This
    is what lets shard planning -- neighborhood counts, group cuts,
    membership tables -- run before any records exist.  Families that
    only discover their user count at build time (an external log with
    no declared population) cannot be shard-planned.
    """
    declared = workload.model.declared_n_users()
    if declared is None:
        raise ConfigurationError(
            f"workload family {workload.model.family_name!r} does not "
            f"declare its user count up front and cannot be shard-planned; "
            f"declare n_users on the trace model"
        )
    return declared * workload.population_x


def shard_neighborhood_groups(workload: Workload, config: SimulationConfig,
                              n_shards: int) -> List[Tuple[int, ...]]:
    """The deterministic shard -> neighborhood-ids cut for one run."""
    count = n_neighborhoods_for(workload_n_users(workload),
                                config.neighborhood_size)
    return partition_neighborhoods(count, n_shards)


def _shard_membership(n_users: int, config: SimulationConfig,
                      ids: Sequence[int]) -> bytearray:
    """Byte-per-user membership table for one shard's neighborhoods.

    Rebuilt in every worker from the same deterministic placement the
    simulator itself uses, so the filter and the simulation agree on
    which users exist.
    """
    plant = place_users(n_users, config.neighborhood_size,
                        config.placement_seed)
    neighborhoods = plant.neighborhoods
    member = bytearray(n_users)
    for nid in ids:
        for user_id in neighborhoods[nid].user_ids:
            member[user_id] = 1
    return member


def _filter_columns(
    member: bytearray,
    start_times: Sequence[float],
    user_ids: Sequence[int],
    program_ids: Sequence[int],
    durations: Sequence[float],
) -> Tuple[List[float], List[int], List[int], List[float]]:
    """Keep only the rows whose user belongs to this shard.

    Row order (and therefore sortedness) is preserved; output columns
    are plain python lists regardless of input sequence type, so a
    numpy-filtered slice feeds the simulator the same pure-python
    scalars the fallback loop produces.
    """
    try:
        import numpy as np
    except ImportError:
        np = None
    if np is not None:
        users = np.asarray(user_ids, dtype=np.int64)
        mask = np.frombuffer(bytes(member), dtype=np.uint8)[users] != 0
        return (
            np.asarray(start_times, dtype=np.float64)[mask].tolist(),
            users[mask].tolist(),
            np.asarray(program_ids, dtype=np.int64)[mask].tolist(),
            np.asarray(durations, dtype=np.float64)[mask].tolist(),
        )
    starts_out: List[float] = []
    users_out: List[int] = []
    programs_out: List[int] = []
    durations_out: List[float] = []
    for i, user in enumerate(user_ids):
        if member[user]:
            starts_out.append(start_times[i])
            users_out.append(user)
            programs_out.append(program_ids[i])
            durations_out.append(durations[i])
    return starts_out, users_out, programs_out, durations_out


def _shard_trace(workload: Workload, member: bytearray,
                 handle=None) -> Trace:
    """This shard's trace slice: global ids, global user count.

    Prefers the parent-published mapped columns (filtered straight off
    the views, so the worker never materializes foreign users' records);
    a missing or corrupt share degrades to the deterministic
    regenerate-and-filter path, bit-identically.
    """
    n_users = workload_n_users(workload)
    if handle is not None:
        from repro.errors import TraceError
        from repro.trace.share import attach_columns

        try:
            with attach_columns(handle) as cols:
                catalog = cols.catalog
                columns = _filter_columns(member, cols.start_times,
                                          cols.user_ids, cols.program_ids,
                                          cols.durations)
            return Trace.from_columns(*columns, catalog, n_users)
        except (OSError, TraceError):
            pass
    trace = cached_workload_trace(workload)
    columns = _filter_columns(member, *trace.columns())
    return Trace.from_columns(*columns, trace.catalog, n_users)


def _filtered_chunks(stream, member: bytearray) -> Iterator[TraceChunk]:
    """This shard's view of a trace stream, chunk by chunk.

    Chunks that lose every row to the filter are skipped (the stream
    contract is non-empty chunks); surviving chunks keep their window
    bounds, so the replay's drain horizon is unchanged.
    """
    for chunk in stream.chunks():
        columns = _filter_columns(member, chunk.start_times, chunk.user_ids,
                                  chunk.program_ids, chunk.durations)
        if not columns[0]:
            continue
        yield TraceChunk(chunk.index, chunk.start_hour, chunk.end_hour,
                         *columns)


def validate_shard_plan(workload: Workload, config: SimulationConfig,
                        n_shards: int, streaming: bool) -> None:
    """Reject configurations that cannot be sharded or streamed exactly.

    Raises :class:`~repro.errors.ConfigurationError` for: a
    cross-neighborhood popularity feed under ``n_shards > 1`` (shards
    would each build a private feed and diverge from the monolithic
    run), streaming with a future-knowledge strategy (futures need the
    whole trace), and streaming with a transformed workload (the
    scaling transforms are whole-trace operations; only identity
    workloads generate lazily).
    """
    strategy = config.strategy
    if n_shards > 1 and strategy.uses_global_feed:
        raise ConfigurationError(
            f"strategy {strategy.label!r} shares a cross-neighborhood "
            f"popularity feed and cannot run sharded"
        )
    if streaming:
        if strategy.requires_future_knowledge:
            raise ConfigurationError(
                f"strategy {strategy.label!r} requires future knowledge "
                f"of the whole trace and cannot run streamed"
            )
        if not workload.is_identity:
            raise ConfigurationError(
                "streaming replay supports identity workloads only; "
                "population/catalog transforms need the materialized trace"
            )
        if not workload.model.supports_streaming:
            raise ConfigurationError(
                f"workload family {workload.model.family_name!r} cannot "
                f"generate its trace lazily and cannot run streamed"
            )


def execute_shard_task(task, handle=None) -> SimulationResult:
    """Run one shard task in this process (the pool-worker entry).

    ``task`` is a :class:`~repro.core.parallel.SimulationTask` whose
    ``shard`` field is set; ``handle`` is the parent-published trace
    share for non-streaming shards (``None`` falls back to the memoized
    regenerate path).  Streaming shards run on the bucket engine
    regardless of the requested engine -- the engines are bit-identical,
    so this is the same silent demotion ``columnar`` makes when numpy
    is missing.
    """
    spec = task.shard
    workload = task.workload
    config = task.config
    validate_shard_plan(workload, config, spec.n_shards, spec.streaming)
    groups = shard_neighborhood_groups(workload, config, spec.n_shards)
    ids = list(groups[spec.index])
    n_users = workload_n_users(workload)
    member = _shard_membership(n_users, config, ids)
    if spec.streaming:
        stream = open_trace_stream(workload.model,
                                   chunk_hours=spec.chunk_hours)
        system = CableVoDSystem(
            None, config, engine="bucket", neighborhood_ids=ids,
            catalog=stream.catalog, n_users=n_users,
        )
        return system.run_streaming(_filtered_chunks(stream, member))
    trace = _shard_trace(workload, member, handle)
    engine = resolve_engine(task.engine)
    return CableVoDSystem(trace, config, engine=engine,
                          neighborhood_ids=ids).run()


def run_sharded(
    trace_model: Union[WorkloadModel, Workload],
    config: SimulationConfig,
    *,
    n_shards: int = 1,
    engine: Optional[str] = None,
    workers: Optional[int] = None,
    streaming: bool = False,
    chunk_hours: Optional[int] = None,
) -> SimulationResult:
    """Replay one workload as ``n_shards`` independent shard tasks.

    The metro entry point: cuts the plant into contiguous neighborhood
    groups, dispatches one :class:`~repro.core.parallel.SimulationTask`
    per group through :func:`~repro.core.parallel.iter_task_results`
    (serial for ``workers=1``, pool otherwise), and reduces the shard
    results with :meth:`~repro.core.results.SimulationResult.merged`.
    Counters, ``events_processed``, and every meter bucket are
    bit-identical to a monolithic ``run_simulation`` of the same
    workload and config, for any shard count and any worker count.

    ``streaming=True`` additionally bounds each worker's resident session
    columns to one generation chunk (``chunk_hours``, default
    :data:`~repro.trace.streaming.DEFAULT_CHUNK_HOURS`): the trace is
    never materialized anywhere, which is what makes million-user
    metros fit in memory.
    """
    from repro.core.parallel import ShardSpec, SimulationTask, iter_task_results
    from repro.trace.streaming import DEFAULT_CHUNK_HOURS

    if isinstance(trace_model, Workload):
        workload = trace_model
    else:
        workload = Workload(model=trace_model)
    if chunk_hours is None:
        chunk_hours = DEFAULT_CHUNK_HOURS
    validate_shard_plan(workload, config, n_shards, streaming)
    # Fail fast on an over-cut plant (clearer here than in a worker).
    shard_neighborhood_groups(workload, config, n_shards)
    tasks = [
        SimulationTask(
            workload=workload, config=config, engine=engine,
            shard=ShardSpec(n_shards=n_shards, index=index,
                            streaming=streaming, chunk_hours=chunk_hours),
        )
        for index in range(n_shards)
    ]
    results = [result for result, _ in iter_task_results(tasks,
                                                         workers=workers)]
    return SimulationResult.merged(results)
