"""Simulation outputs: counters, meters, and the reductions the paper reports.

A :class:`SimulationResult` carries the raw per-hour bandwidth series for
the central server, every neighborhood coax segment, and the total
delivered traffic, plus event counters.  Reduction helpers implement the
paper's reporting conventions:

* *peak server load* -- mean hourly server rate over the 19:00-23:00
  buckets, warm-up excluded, with 5%/95% quantile error bars (Fig 8
  caption);
* *reduction vs. no cache* -- the no-cache load equals the total
  delivered traffic (broadcast bandwidth is the same whether a segment
  comes from a peer or the server -- section VI-B), so a single cached
  run yields both numbers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

from repro import units
from repro.core.config import SimulationConfig
from repro.core.meter import HourlyMeter
from repro.errors import SimulationError

if TYPE_CHECKING:  # import-cycle-free: only the annotation needs it
    from repro.live.admission import LiveReport


def quantile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile of ``samples`` (q in [0, 1])."""
    if not samples:
        raise SimulationError("cannot take a quantile of zero samples")
    if not 0.0 <= q <= 1.0:
        raise SimulationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


@dataclass
class SimulationCounters:
    """Aggregate event counts across all neighborhoods."""

    sessions: int = 0
    segment_requests: int = 0
    peer_hits: int = 0
    local_hits: int = 0
    server_deliveries: int = 0
    busy_misses: int = 0
    cold_misses: int = 0
    fills: int = 0
    fill_skips: int = 0
    admissions: int = 0
    evictions: int = 0
    placement_failures: int = 0

    @property
    def hits(self) -> int:
        """Requests served out of the cooperative cache."""
        return self.peer_hits + self.local_hits

    @property
    def hit_ratio(self) -> float:
        """Cache hits over all segment requests (0.0 if no requests)."""
        if self.segment_requests == 0:
            return 0.0
        return self.hits / self.segment_requests


@dataclass
class SimulationResult:
    """Everything one simulator execution produced."""

    config: SimulationConfig
    n_users: int
    n_neighborhoods: int
    trace_end_time: float
    server_meter: HourlyMeter
    total_meter: HourlyMeter
    coax_meters: Dict[int, HourlyMeter]
    counters: SimulationCounters
    #: Peer-originated broadcast traffic per neighborhood -- the share of
    #: coax traffic that relies on the paper's section IV-B.4
    #: bidirectional-amplifier requirement.  Empty when not metered.
    upstream_meters: Dict[int, HourlyMeter] = field(default_factory=dict)
    #: Per-neighborhood decompositions of ``total_meter`` and
    #: ``server_meter`` (keyed by *global* neighborhood id).  The engine
    #: meters every delivery against its neighborhood and folds the
    #: aggregate meters in ascending id order at result-build time; a
    #: sharded run carries each shard's slice here so the reduction can
    #: replay the identical fold.  Empty on hand-built results.
    total_meters: Dict[int, HourlyMeter] = field(default_factory=dict)
    server_meters: Dict[int, HourlyMeter] = field(default_factory=dict)
    events_processed: int = 0
    wall_seconds: float = 0.0
    #: Per-user live-admission accounting
    #: (:class:`repro.live.admission.LiveReport`), set by
    #: :meth:`~repro.core.system.CableVoDSystem.run_live`.  ``None`` on
    #: offline replays and on merged shard results (live runs are
    #: monolithic).
    live: Optional["LiveReport"] = None

    # ------------------------------------------------------------------
    # Peak-hour server load (the headline metric)
    # ------------------------------------------------------------------

    def _window(self) -> Tuple[float, float]:
        return (self.config.warmup_seconds, self.trace_end_time)

    def peak_server_samples(self) -> List[float]:
        """Hourly server rates (bits/s) in peak hours after warm-up."""
        lo, hi = self._window()
        return [
            rate
            for _, rate in self.server_meter.hourly_rates(
                self.config.peak_hours, min_time=lo, max_time=hi
            )
        ]

    def peak_server_gbps(self) -> float:
        """Mean peak-hour server load in Gb/s (the Fig 8/9/10/15 y-axis)."""
        samples = self.peak_server_samples()
        if not samples:
            return 0.0
        return units.to_gbps(sum(samples) / len(samples))

    def peak_server_quantiles_gbps(self, low: float = 0.05, high: float = 0.95
                                   ) -> Tuple[float, float]:
        """The 5%/95% error bars of the peak-hour server load."""
        samples = self.peak_server_samples()
        if not samples:
            return (0.0, 0.0)
        return (
            units.to_gbps(quantile(samples, low)),
            units.to_gbps(quantile(samples, high)),
        )

    # ------------------------------------------------------------------
    # No-cache reference and reduction
    # ------------------------------------------------------------------

    def no_cache_peak_gbps(self) -> float:
        """Peak-hour load a cacheless deployment would have carried.

        Equals the total delivered traffic: with no cache every one of
        these bits would have come from the central server.
        """
        lo, hi = self._window()
        samples = [
            rate
            for _, rate in self.total_meter.hourly_rates(
                self.config.peak_hours, min_time=lo, max_time=hi
            )
        ]
        if not samples:
            return 0.0
        return units.to_gbps(sum(samples) / len(samples))

    def peak_reduction(self) -> float:
        """Fractional server-load reduction vs. no cache (0.88 = 88%)."""
        baseline = self.no_cache_peak_gbps()
        if baseline <= 0:
            return 0.0
        return 1.0 - self.peak_server_gbps() / baseline

    # ------------------------------------------------------------------
    # Coax feasibility (Fig 14)
    # ------------------------------------------------------------------

    def coax_peak_samples(self, neighborhood_id: Optional[int] = None) -> List[float]:
        """Peak-hour coax rates (bits/s), pooled or for one neighborhood."""
        lo, hi = self._window()
        meters: Iterable[HourlyMeter]
        if neighborhood_id is None:
            meters = self.coax_meters.values()
        else:
            if neighborhood_id not in self.coax_meters:
                raise SimulationError(
                    f"no coax meter for neighborhood {neighborhood_id}"
                )
            meters = [self.coax_meters[neighborhood_id]]
        samples: List[float] = []
        for meter in meters:
            samples.extend(
                rate
                for _, rate in meter.hourly_rates(
                    self.config.peak_hours, min_time=lo, max_time=hi
                )
            )
        return samples

    def coax_peak_mean_mbps(self) -> float:
        """Mean peak-hour coax traffic per neighborhood (Fig 14 y-axis)."""
        samples = self.coax_peak_samples()
        if not samples:
            return 0.0
        return units.to_mbps(sum(samples) / len(samples))

    def coax_peak_quantile_mbps(self, q: float = 0.95) -> float:
        """Upper-tail coax traffic (the Fig 14 "poor cases")."""
        samples = self.coax_peak_samples()
        if not samples:
            return 0.0
        return units.to_mbps(quantile(samples, q))

    def byte_hit_ratio(self) -> float:
        """Fraction of delivered *bytes* supplied by the cooperative cache.

        Distinct from :attr:`SimulationCounters.hit_ratio`, which counts
        segment requests: long sessions weigh more here.  This is the
        "bit-to-hit ratio" framing of the proxy-caching literature the
        paper cites in section III-A.
        """
        total = self.total_meter.total_bits()
        if total <= 0:
            return 0.0
        return 1.0 - self.server_meter.total_bits() / total

    def upstream_peak_samples(self) -> List[float]:
        """Hourly peer-broadcast rates (bits/s) in peak hours, all neighborhoods."""
        lo, hi = self._window()
        samples: List[float] = []
        for meter in self.upstream_meters.values():
            samples.extend(
                rate
                for _, rate in meter.hourly_rates(
                    self.config.peak_hours, min_time=lo, max_time=hi
                )
            )
        return samples

    def upstream_peak_mean_mbps(self) -> float:
        """Mean peak-hour peer-broadcast traffic per neighborhood (Mb/s).

        This traffic exists only because the paper requires bidirectional
        amplifiers (section IV-B.4); comparing it against the legacy
        215 Mb/s upstream allocation shows why that requirement is real.
        """
        samples = self.upstream_peak_samples()
        if not samples:
            return 0.0
        return units.to_mbps(sum(samples) / len(samples))

    def coax_utilization(self) -> float:
        """Worst-case peak coax traffic as a fraction of VoD capacity.

        The paper's feasibility claim (section VI-B): at most ~17% of the
        coax line even in extreme cases.
        """
        samples = self.coax_peak_samples()
        if not samples:
            return 0.0
        return max(samples) / units.COAX_VOD_CAPACITY_BPS

    # ------------------------------------------------------------------
    # Shard reduction
    # ------------------------------------------------------------------

    @staticmethod
    def merged(shards: Sequence["SimulationResult"]) -> "SimulationResult":
        """Reduce per-shard results into one metro-wide result.

        Each shard simulated a disjoint group of neighborhoods, so the
        reduction is exact: integer counters sum, per-neighborhood
        meter dicts union (they are disjoint by construction), and the
        aggregate ``total_meter`` / ``server_meter`` are re-folded from
        the unioned per-neighborhood meters in ascending global id --
        the same fold a monolithic run performs, which is what makes
        the merged result bit-identical to it (the shard-invariance
        property pinned in ``tests/core/test_shard.py``).

        ``wall_seconds`` sums the shards' simulation time (total work,
        not elapsed wall clock); ``config`` is taken from the first
        shard -- callers hand in shards of one run, in shard order.
        """
        if not shards:
            raise SimulationError("cannot merge zero shard results")
        for shard in shards:
            if not shard.total_meters or not shard.server_meters:
                raise SimulationError(
                    "shard results must carry per-neighborhood "
                    "total/server meters to be merged"
                )
        counters = SimulationCounters()
        for shard in shards:
            for field_name in vars(counters):
                setattr(counters, field_name,
                        getattr(counters, field_name)
                        + getattr(shard.counters, field_name))

        def union(pick) -> Dict[int, HourlyMeter]:
            merged: Dict[int, HourlyMeter] = {}
            for shard in shards:
                for neighborhood_id, meter in pick(shard).items():
                    if neighborhood_id in merged:
                        raise SimulationError(
                            f"shards overlap on neighborhood "
                            f"{neighborhood_id}; groups must be disjoint"
                        )
                    merged[neighborhood_id] = meter
            return merged

        coax = union(lambda s: s.coax_meters)
        upstream = union(lambda s: s.upstream_meters)
        totals = union(lambda s: s.total_meters)
        servers = union(lambda s: s.server_meters)
        return SimulationResult(
            config=shards[0].config,
            n_users=sum(s.n_users for s in shards),
            n_neighborhoods=sum(s.n_neighborhoods for s in shards),
            trace_end_time=max(s.trace_end_time for s in shards),
            server_meter=HourlyMeter.merged(
                servers[k] for k in sorted(servers)),
            total_meter=HourlyMeter.merged(
                totals[k] for k in sorted(totals)),
            coax_meters=coax,
            upstream_meters=upstream,
            total_meters=totals,
            server_meters=servers,
            counters=counters,
            events_processed=sum(s.events_processed for s in shards),
            wall_seconds=sum(s.wall_seconds for s in shards),
        )

    # ------------------------------------------------------------------
    # Presentation helpers
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line human-readable digest of this run."""
        low, high = self.peak_server_quantiles_gbps()
        lines = [
            f"config            : {self.config.label()}",
            f"users / nbhds     : {self.n_users} / {self.n_neighborhoods}",
            f"sessions          : {self.counters.sessions}",
            f"segment requests  : {self.counters.segment_requests}",
            f"hit ratio         : {self.counters.hit_ratio:.1%}",
            f"peak server load  : {self.peak_server_gbps():.2f} Gb/s "
            f"[{low:.2f}, {high:.2f}]",
            f"no-cache baseline : {self.no_cache_peak_gbps():.2f} Gb/s",
            f"reduction         : {self.peak_reduction():.1%}",
            f"coax peak mean    : {self.coax_peak_mean_mbps():.0f} Mb/s "
            f"(p95 {self.coax_peak_quantile_mbps():.0f} Mb/s)",
        ]
        if self.live is not None:
            lines.append(
                f"live admission    : {self.live.admitted} admitted / "
                f"{self.live.denied} denied / "
                f"{self.live.deferrals} deferrals"
            )
        return "\n".join(lines)
