"""The assembled cable VoD system and its event processes.

:class:`CableVoDSystem` builds the full stack for one simulator
execution -- topology, set-top peers, per-headend index servers bound to
their caching strategies, and the central media server -- then replays a
trace through it:

* each trace record becomes a *session start* event;
* a session issues one *segment request* every 5 simulated minutes until
  the viewer walks away (matching section IV-B.1's segment flows);
* every delivery is metered on the coax segment it crossed and, for
  misses, on the central server (section V-B: "the download consumes
  neighborhood bandwidth, and in the latter case, it also consumes
  server bandwidth").
"""

from __future__ import annotations

import math
import os
import time as _time
from typing import Dict, Iterable, List, Optional, Sequence

from repro import units
from repro.cache.factory import BuildInputs
from repro.errors import SimulationError
from repro.cache.index_server import IndexServer
from repro.cache.segments import PlacementMap, cache_footprint_bytes, usable_capacity_bytes
from repro.core.config import SimulationConfig
from repro.core.media_server import MediaServer
from repro.core.meter import HourlyMeter
from repro.core.results import SimulationCounters, SimulationResult
from repro.peers.settop import SetTopBox
from repro.sim.engine import Simulator
from repro.topology.placement import place_users
from repro.trace.records import SessionRecord, Trace


#: Engine selectors: ``"columnar"`` precomputes the whole event stream
#: as numpy arrays and batches metering/counting (the fast path when
#: numpy is available); ``"bucket"`` replays sessions as tick-bucketed
#: arcs (the scalar reference and the fallback); ``"heap"`` is the
#: legacy one-heap-event-per-segment chain, kept for equivalence
#: testing.  All three produce bit-identical counters and meter buckets
#: for the same trace/config.
ENGINE_MODES = ("bucket", "heap", "columnar")


def columnar_supported() -> bool:
    """Whether the columnar engine can run in this interpreter.

    Mirrors the trace backend gate: ``REPRO_ENGINE=python`` forces the
    scalar engines (the escape hatch the numpy-absent CI leg sets), and
    without numpy there is nothing to vectorize with.  When this is
    False a requested ``"columnar"`` engine silently demotes to
    ``"bucket"`` -- safe because the two are bit-identical.
    """
    if os.environ.get("REPRO_ENGINE") == "python":
        return False
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - exercised via monkeypatch
        return False
    return True


class CableVoDSystem:
    """One fully wired deployment ready to replay a trace.

    Build once, :meth:`run` once.  For parameter sweeps construct a new
    system per configuration; construction is cheap relative to the run.
    """

    def __init__(self, trace: Optional[Trace], config: SimulationConfig,
                 engine: str = "bucket", *,
                 neighborhood_ids: Optional[Sequence[int]] = None,
                 catalog=None, n_users: Optional[int] = None) -> None:
        if engine not in ENGINE_MODES:
            raise SimulationError(
                f"unknown engine {engine!r}; choose from {ENGINE_MODES}"
            )
        if engine == "columnar" and not columnar_supported():
            engine = "bucket"
        if trace is not None:
            catalog = trace.catalog
            n_users = trace.n_users
        elif catalog is None or n_users is None:
            raise SimulationError(
                "traceless construction (streaming replay) requires "
                "catalog= and n_users="
            )
        self._trace = trace
        self._config = config
        self._engine = engine
        #: The full metro plant.  Placement is keyed only by
        #: (n_users, neighborhood_size, seed), so every shard worker
        #: rebuilds the identical layout and picks its group from it.
        self._plant = place_users(
            n_users, config.neighborhood_size, config.placement_seed
        )
        neighborhoods = self._plant.neighborhoods
        if neighborhood_ids is None:
            selected = list(neighborhoods)
        else:
            ids = list(neighborhood_ids)
            if ids != sorted(set(ids)):
                raise SimulationError(
                    "neighborhood_ids must be sorted and unique"
                )
            if ids and not (0 <= ids[0] and ids[-1] < len(neighborhoods)):
                raise SimulationError(
                    f"neighborhood_ids out of range 0..{len(neighborhoods) - 1}"
                )
            selected = [neighborhoods[i] for i in ids]
        #: The neighborhoods this instance simulates (the whole plant in
        #: a monolithic run, one group in a shard).  Always in ascending
        #: global id order -- the fold below depends on it.
        self._selected = selected

        footprints = [cache_footprint_bytes(p) for p in catalog]
        #: program_id -> final segment index, hoisted out of the per-
        #: session path (Program.num_segments recomputes a divmod).
        self._last_segment: List[int] = [p.num_segments - 1 for p in catalog]

        #: user id -> *local* index into the selected neighborhoods
        #: (-1 outside this shard; such users never appear in a shard's
        #: trace slice).  Equals the global neighborhood id when the
        #: whole plant is selected.
        self._user_neighborhood: List[int] = [-1] * n_users
        for local, neighborhood in enumerate(selected):
            for user_id in neighborhood.user_ids:
                self._user_neighborhood[user_id] = local

        if config.strategy.requires_future_knowledge and trace is None:
            raise SimulationError(
                f"strategy {config.strategy.label()!r} requires future "
                f"knowledge of the whole trace and cannot run streamed"
            )
        built = config.strategy.build(
            BuildInputs(
                n_neighborhoods=len(selected),
                future_accesses=(
                    self._neighborhood_futures()
                    if config.strategy.requires_future_knowledge
                    else None
                ),
            )
        )
        self._feed = built.feed

        from repro.cache.base import StrategyContext  # local to avoid cycle

        self._boxes: List[Dict[int, SetTopBox]] = []
        self._servers: List[IndexServer] = []
        for neighborhood, strategy in zip(selected, built.strategies):
            boxes = {
                user_id: SetTopBox(
                    box_id=user_id,
                    storage_bytes=config.per_peer_storage_bytes,
                    max_streams=config.max_streams_per_peer,
                )
                for user_id in neighborhood.user_ids
            }
            placement = PlacementMap(list(boxes.values()))
            context = StrategyContext(
                neighborhood_id=neighborhood.neighborhood_id,
                capacity_bytes=usable_capacity_bytes(
                    config.per_peer_storage_bytes, neighborhood.size
                ),
                footprint_of=lambda pid, _f=footprints: _f[pid],
            )
            initial = strategy.bind(context)
            server = IndexServer(neighborhood, boxes, strategy, placement, catalog)
            server.apply_initial_membership(initial)
            self._boxes.append(boxes)
            self._servers.append(server)

        self._media_server = MediaServer()
        # Every meter is kept *per neighborhood* (local-index lists for
        # the hot path, global-id dicts for results).  The aggregate
        # total/server meters are folded from these in ascending global
        # id at result-build time; since neighborhoods never interact,
        # a shard reduction can union the per-neighborhood meters and
        # replay the identical fold -- the keystone of shard/monolith
        # bit-identity.
        n_local = len(selected)
        self._local_total = [HourlyMeter() for _ in range(n_local)]
        self._local_server = [HourlyMeter() for _ in range(n_local)]
        self._local_coax = [HourlyMeter() for _ in range(n_local)]
        # Peer-originated broadcasts only: the traffic that rides the
        # bidirectional amplifiers the paper requires in section IV-B.4.
        self._local_upstream = [HourlyMeter() for _ in range(n_local)]
        self._total_meters: Dict[int, HourlyMeter] = {
            n.neighborhood_id: m for n, m in zip(selected, self._local_total)
        }
        self._server_meters: Dict[int, HourlyMeter] = {
            n.neighborhood_id: m for n, m in zip(selected, self._local_server)
        }
        self._coax_meters: Dict[int, HourlyMeter] = {
            n.neighborhood_id: m for n, m in zip(selected, self._local_coax)
        }
        self._upstream_meters: Dict[int, HourlyMeter] = {
            n.neighborhood_id: m for n, m in zip(selected, self._local_upstream)
        }
        self._sim = Simulator()
        #: Live admission controller (:mod:`repro.live`), bound by
        #: :meth:`run_live`.  ``None`` on every offline path -- the
        #: delivery hook below is a single identity check then.
        self._live = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _neighborhood_futures(self) -> List[Dict[int, List[float]]]:
        """Per-neighborhood future access schedules (oracle knowledge).

        The trace is already time-sorted, so each program's list comes
        out sorted for free.
        """
        futures: List[Dict[int, List[float]]] = [
            dict() for _ in range(len(self._selected))
        ]
        for record in self._trace:
            local = self._user_neighborhood[record.user_id]
            if local < 0:
                continue  # a user outside this shard's neighborhoods
            futures[local].setdefault(record.program_id, []).append(
                record.start_time
            )
        return futures

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def plant(self):
        """The HFC topology this system was built on."""
        return self._plant

    @property
    def index_servers(self) -> List[IndexServer]:
        """Per-neighborhood index servers (in neighborhood order)."""
        return list(self._servers)

    @property
    def media_server(self) -> MediaServer:
        """The central catalog server."""
        return self._media_server

    # ------------------------------------------------------------------
    # Event processes -- legacy heap chain
    # ------------------------------------------------------------------

    def _start_session(self, record: SessionRecord) -> None:
        now = self._sim.now
        neighborhood_id = self._user_neighborhood[record.user_id]
        server = self._servers[neighborhood_id]
        if self._feed is not None:
            self._feed.record(now, record.program_id, neighborhood_id)
        server.on_session_start(now, record.user_id, record.program_id)
        # The viewer's own box holds one channel for the playback stream;
        # the index server never denies a subscriber their own session.
        server.box_of(record.user_id).open_stream(
            now, record.duration_seconds, enforce_limit=False
        )
        self._request_segment(record, neighborhood_id, 0)

    def _request_segment(self, record: SessionRecord, neighborhood_id: int,
                         segment_index: int) -> None:
        now = self._sim.now
        end = record.end_time
        watch = min(units.SEGMENT_SECONDS, end - now)
        # Sub-millisecond trailing slivers are float accumulation noise
        # from stepping in SEGMENT_SECONDS increments, not real requests.
        if watch <= 1e-6:
            return
        self._deliver_segment(
            now,
            self._servers[neighborhood_id],
            self._local_total[neighborhood_id],
            self._local_coax[neighborhood_id],
            self._local_upstream[neighborhood_id],
            self._local_server[neighborhood_id],
            record.user_id,
            record.program_id,
            segment_index,
            watch,
        )
        last_segment = self._last_segment[record.program_id]
        if segment_index < last_segment and end > now + units.SEGMENT_SECONDS + 1e-6:
            self._sim.at(
                now + units.SEGMENT_SECONDS,
                self._request_segment,
                record,
                neighborhood_id,
                segment_index + 1,
            )

    # ------------------------------------------------------------------
    # Event processes -- tick-bucketed session arcs (fast path)
    # ------------------------------------------------------------------
    #
    # A session's segment flow is fully determined at session start:
    # ``end_time`` and the program's segment count are fixed, so instead
    # of rescheduling one heap event per segment the whole flow becomes
    # one SessionArc walking the 5-minute bucket grid.  Per-session
    # invariants (index server, meters, last segment index) are hoisted
    # into the arc's argument tuple once instead of being re-derived
    # 100+ times per session.  Both paths execute the exact same
    # delivery sequence in the exact same order -- see
    # tests/core/test_engine_equivalence.py.

    def _start_session_fast(self, record: SessionRecord) -> None:
        args = self._open_session(record)
        if args is not None:
            sim = self._sim
            sim.start_arc(sim.now + units.SEGMENT_SECONDS, self._arc_step, *args)

    def _open_session(self, record: SessionRecord):
        """Shared session-start prologue (both continuation flavors).

        Opens the viewer stream, delivers the first segment, and returns
        the continuation argument tuple for the remaining segments --
        or ``None`` when the session fits inside one segment.
        """
        sim = self._sim
        now = sim.now
        user_id = record.user_id
        program_id = record.program_id
        neighborhood_id = self._user_neighborhood[user_id]
        server = self._servers[neighborhood_id]
        if self._feed is not None:
            self._feed.record(now, program_id, neighborhood_id)
        server.on_session_start(now, user_id, program_id)
        # The viewer's own box holds one channel for the playback stream;
        # the index server never denies a subscriber their own session.
        server.box_of(user_id).open_stream(
            now, record.duration_seconds, enforce_limit=False
        )
        end = record.end_time
        watch = end - now
        if watch > units.SEGMENT_SECONDS:
            watch = units.SEGMENT_SECONDS
        if watch <= 1e-6:
            return None
        total_meter = self._local_total[neighborhood_id]
        coax_meter = self._local_coax[neighborhood_id]
        upstream_meter = self._local_upstream[neighborhood_id]
        server_meter = self._local_server[neighborhood_id]
        self._deliver_segment(
            now, server, total_meter, coax_meter, upstream_meter,
            server_meter, user_id, program_id, 0, watch
        )
        last_segment = self._last_segment[program_id]
        if 0 < last_segment and end > now + units.SEGMENT_SECONDS + 1e-6:
            return (server, total_meter, coax_meter, upstream_meter,
                    server_meter, user_id, program_id, end, last_segment)
        return None

    def _start_session_heap(self, record: SessionRecord) -> None:
        """Session start whose segment walk runs on the heap, not an arc.

        Retried (deferred) live admissions fire from heap events, which
        may execute behind the calendar's already-activated front
        bucket -- ``start_arc`` would reject the continuation there, so
        the remaining segments are scheduled with ``sim.at`` instead.
        Delivery order and metering are identical to the arc path.
        """
        args = self._open_session(record)
        if args is not None:
            sim = self._sim
            sim.at(sim.now + units.SEGMENT_SECONDS, self._heap_step, 0, *args)

    def _heap_step(self, index: int, *args) -> None:
        """One heap-driven segment step; reschedules itself while live."""
        sim = self._sim
        if self._arc_step(sim.now, index, *args):
            sim.at(sim.now + units.SEGMENT_SECONDS, self._heap_step,
                   index + 1, *args)

    def _arc_step(self, now: float, index: int, server, total_meter,
                  coax_meter, upstream_meter, server_meter, user_id: int,
                  program_id: int, end: float, last_segment: int) -> bool:
        """One arc step: deliver segment ``index + 1``; return whether to go on."""
        watch = end - now
        if watch > units.SEGMENT_SECONDS:
            watch = units.SEGMENT_SECONDS
        if watch <= 1e-6:
            return False
        segment_index = index + 1
        self._deliver_segment(
            now, server, total_meter, coax_meter, upstream_meter,
            server_meter, user_id, program_id, segment_index, watch,
        )
        return (segment_index < last_segment
                and end > now + units.SEGMENT_SECONDS + 1e-6)

    def _deliver_segment(self, now: float, server, total_meter, coax_meter,
                         upstream_meter, server_meter, user_id: int,
                         program_id: int, segment_index: int,
                         watch: float) -> None:
        """Route one segment delivery and meter it (both engine paths).

        Branches on the raw ``source`` string once instead of going
        through the ``on_coax`` / ``from_server`` properties -- two
        Python property calls per delivery are measurable at hundreds of
        thousands of deliveries per run.  All four meters are the
        requesting user's *neighborhood* meters; the system-wide total
        and server meters are folds over these (see ``__init__``).
        """
        outcome = server.request_segment(
            now, user_id, program_id, segment_index, watch
        )
        total_meter.add_interval(now, watch)
        source = outcome.source
        if source != "local":
            coax_meter.add_interval(now, watch)
            if source == "peer":
                upstream_meter.add_interval(now, watch)
            else:  # "server" is the only other on-coax source
                server_meter.add_interval(now, watch)
                self._media_server.deliveries += 1
        live = self._live
        if live is not None:
            live.on_delivery(user_id, self._user_neighborhood[user_id],
                             source, outcome.filled, watch)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Replay the whole trace and collect the results."""
        if self._trace is None:
            raise SimulationError(
                "this system was built traceless; feed it chunks via "
                "run_streaming()"
            )
        started = _time.perf_counter()
        if self._engine == "columnar":
            events_processed = self._run_columnar()
        else:
            if self._engine == "bucket":
                # The trace's chronological invariant makes the whole
                # start storm one slab preload: per-bucket slices of the
                # trace's own columns, no per-session registration in
                # the drain loop.  Bit-identical to an at_fast() loop
                # over the records
                # (tests/core/test_engine_equivalence.py).
                self._sim.preload_starts(
                    self._trace.start_times,
                    self._start_session_fast,
                    self._trace.records,
                )
            else:
                for record in self._trace:
                    self._sim.at(record.start_time, self._start_session, record)
            self._sim.run()
            events_processed = self._sim.events_processed
        return self._build_result(events_processed, self._trace.end_time,
                                  started)

    def run_streaming(self, chunks: Iterable) -> SimulationResult:
        """Replay a chunked trace stream with O(chunk) resident records.

        ``chunks`` yields :class:`~repro.trace.streaming.TraceChunk`-shaped
        objects (ascending, non-overlapping).  Per chunk, the clock
        first drains to just below the chunk's window start -- the
        horizon-aware run leaves every later bucket unactivated -- then
        the chunk's starts extend the calendar queue as slabs whose
        columns are dropped as soon as their buckets drain.
        Bit-identical to :meth:`run` on the materialized trace with
        ``engine="bucket"`` (the sequence-band argument is laid out in
        ``Simulator.extend_starts``), including ``trace_end_time``,
        which is accumulated here exactly as ``Trace.end_time`` computes
        it: the max session end over the replayed records.
        """
        if self._engine != "bucket":
            raise SimulationError(
                f"streaming replay runs on the bucket engine only "
                f"(got {self._engine!r}); materialize the trace for "
                f"heap/columnar runs"
            )
        started = _time.perf_counter()
        sim = self._sim
        end_time = 0.0
        for chunk in chunks:
            bound = chunk.start_second
            if bound > sim.now:
                sim.run(until=math.nextafter(bound, -math.inf))
            records = chunk.records()
            if records:
                end_time = max(end_time,
                               max(r.end_time for r in records))
            sim.extend_starts(chunk.start_times, self._start_session_fast,
                              records)
        sim.run()
        return self._build_result(sim.events_processed, end_time, started)

    # ------------------------------------------------------------------
    # Live headend mode (repro.live)
    # ------------------------------------------------------------------

    def run_live(self, admission=None, requests: Optional[Iterable] = None
                 ) -> SimulationResult:
        """Serve the request stream online through an admission layer.

        The live headend drain (:mod:`repro.live`): session starts pass
        through ``admission`` (an
        :class:`~repro.live.admission.AdmissionController`) *before*
        they reach the index server -- admitted requests start exactly
        as the offline replay starts them, deferred requests are
        re-decided after their retry-after (watching whatever remains
        of their session window), denied requests never touch the
        plant.  The returned result carries the controller's per-user
        served/denied/deferred accounting as ``result.live``.

        ``requests`` optionally feeds the drain from a generator of
        time-ordered :class:`~repro.trace.records.SessionRecord`\\ s
        instead of the materialized trace, with O(hour) resident
        records (the streamed calendar-extension protocol).

        With ``admission=None`` -- or a controller built from no-op
        specs (unlimited windows, unlimited lead) -- the drain is
        bit-identical to ``run()`` on ``engine="bucket"``: the
        admission wrapper degenerates to the same per-record callback
        at the same ``(time, seq)`` slots, and the delivery hook adds
        no float operations to the metering path
        (tests/live/test_live_equivalence.py).
        """
        if self._engine != "bucket":
            raise SimulationError(
                f"live mode drains on the bucket engine only "
                f"(got {self._engine!r})"
            )
        started = _time.perf_counter()
        callback = self._start_session_fast
        if admission is not None:
            admission.bind([n.size for n in self._selected])
            self._live = admission
            callback = self._live_request
        if requests is None:
            if self._trace is None:
                raise SimulationError(
                    "this system was built traceless; pass requests= to "
                    "feed the live drain"
                )
            self._sim.preload_starts(
                self._trace.start_times, callback, self._trace.records
            )
            self._sim.run()
            end_time = self._trace.end_time
        else:
            end_time = self._drain_request_stream(requests, callback)
        result = self._build_result(self._sim.events_processed, end_time,
                                    started)
        if admission is not None:
            result.live = admission.report
        return result

    def _drain_request_stream(self, requests: Iterable, callback) -> float:
        """Feed an arrival-ordered record stream into the running clock.

        Buffers the stream into hour-aligned spans (hours are a
        multiple of the calendar tick, so span boundaries are always
        extendable slab boundaries), runs the clock to just below each
        span, and extends the calendar with the span's starts -- the
        same protocol :meth:`run_streaming` uses, driven by a plain
        iterator instead of trace chunks.  Returns the max session end
        seen (what ``Trace.end_time`` would report).
        """
        sim = self._sim
        span_seconds = float(units.SECONDS_PER_HOUR)
        end_time = 0.0
        times: List[float] = []
        records: List[SessionRecord] = []
        span_index: Optional[int] = None

        def flush(span_start: float, times: List[float],
                  records: List[SessionRecord]) -> None:
            # Run to just below the hour-aligned span boundary (never a
            # mid-tick time), so the slab's first tick is strictly past
            # the draining bucket -- the extend protocol's requirement.
            if span_start > sim.now:
                sim.run(until=math.nextafter(span_start, -math.inf))
            sim.extend_starts(times, callback, records)

        for record in requests:
            start = record.start_time
            index = int(start // span_seconds)
            if span_index is None:
                span_index = index
            elif index != span_index:
                flush(span_index * span_seconds, times, records)
                # The calendar keeps the slab columns alive until their
                # buckets drain; rebind instead of clearing.
                times, records = [], []
                span_index = index
            elif times and start < times[-1]:
                raise SimulationError(
                    f"live requests must arrive in time order "
                    f"(got t={start:.6f} after t={times[-1]:.6f})"
                )
            times.append(start)
            records.append(record)
            if record.end_time > end_time:
                end_time = record.end_time
        if times:
            flush(span_index * span_seconds, times, records)
        sim.run()
        return end_time

    def _live_request(self, record: SessionRecord) -> None:
        """Admission-wrapped session start (the live drain's callback)."""
        self._live_attempt(record, 0)

    def _live_attempt(self, record: SessionRecord, attempts: int) -> None:
        """Decide one (re)try of a session-start request."""
        sim = self._sim
        now = sim.now
        user_id = record.user_id
        verdict = self._live.decide(
            now, user_id, record.program_id,
            self._user_neighborhood[user_id], attempts,
            deadline=record.end_time,
        )
        action = verdict.action
        if action == "admit":
            # First-attempt admissions fire from the calendar walk and
            # may use the arc fast path; retries fire from heap events
            # that can run behind the activated front bucket, so their
            # segment walk stays on the heap.
            if attempts:
                self._start_session_heap(record)
            else:
                self._start_session_fast(record)
        elif action == "defer":
            sim.at(now + verdict.retry_after, self._live_attempt,
                   record, attempts + 1)
        # "deny": accounted inside the controller; nothing reaches the
        # plant.

    def _build_result(self, events_processed: int, trace_end_time: float,
                      started: float) -> SimulationResult:
        counters = SimulationCounters()
        for server in self._servers:
            stats = server.stats
            counters.sessions += stats.sessions
            counters.segment_requests += stats.segment_requests
            counters.peer_hits += stats.peer_hits
            counters.local_hits += stats.local_hits
            counters.server_deliveries += stats.server_deliveries
            counters.busy_misses += stats.busy_misses
            counters.cold_misses += stats.cold_misses
            counters.fills += stats.fills
            counters.fill_skips += stats.fill_skips
            counters.admissions += stats.admissions
            counters.evictions += stats.evictions
            counters.placement_failures += stats.placement_failures

        # The canonical fold: ascending global neighborhood id.  A
        # shard merge (SimulationResult.merged) unions the disjoint
        # per-neighborhood dicts and folds in the same order, which is
        # what keeps sharded and monolithic aggregates bit-identical.
        return SimulationResult(
            config=self._config,
            n_users=sum(n.size for n in self._selected),
            n_neighborhoods=len(self._selected),
            trace_end_time=trace_end_time,
            server_meter=HourlyMeter.merged(self._local_server),
            total_meter=HourlyMeter.merged(self._local_total),
            coax_meters=self._coax_meters,
            upstream_meters=self._upstream_meters,
            total_meters=self._total_meters,
            server_meters=self._server_meters,
            counters=counters,
            events_processed=events_processed,
            wall_seconds=_time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    # Columnar replay
    # ------------------------------------------------------------------

    def _run_columnar(self) -> int:
        """Replay the trace over its precomputed columnar schedule.

        The schedule (:mod:`repro.sim.columnar`) already encodes every
        event the drain loop would fire, in the engine's exact firing
        order, so no event queue runs at all.  The walk below performs
        only the *stateful* per-event work -- strategy decisions via
        ``on_session_start``, channel leases, and the cache/placement
        mutations inside ``request_segment_code`` -- and collects one
        outcome code per delivery.  Everything derivable from the code
        stream (per-neighborhood hit/miss counters, every hourly meter
        bucket, server deliveries) is then computed in vectorized
        post-passes that replay the identical float additions in the
        identical order, keeping the engine bit-for-bit equal to
        ``bucket``/``heap`` (tests/core/test_engine_equivalence.py).
        """
        import numpy as np

        from repro.cache import index_server as idx
        from repro.core.meter import expand_intervals
        from repro.sim.columnar import cached_schedule

        trace = self._trace
        schedule = cached_schedule(trace, self._last_segment)
        if schedule.n_events == 0:
            return 0
        starts, user_ids, program_ids, durations = trace.columns()

        # Per-record derived columns: neighborhood of the requesting
        # user and the playback-lease end time (the same ``start +
        # duration`` float sum open_stream would compute).
        user_col = np.asarray(user_ids, dtype=np.int64)
        record_nbhd = np.asarray(self._user_neighborhood,
                                 dtype=np.int64)[user_col]
        lease_ends = (np.asarray(starts, dtype=np.float64)
                      + np.asarray(durations, dtype=np.float64)).tolist()
        event_nbhd = record_nbhd[schedule.rec]

        # Walk op per event: 0 = session start delivering segment 0,
        # 1 = session start whose first segment is float noise (session
        # bookkeeping only), 2 = arc delivery.
        op = np.where(schedule.is_start,
                      np.where(schedule.delivered, 0, 1), 2)

        # Bound-method and plain-list lookups hoisted out of the loop;
        # .tolist() because iterating numpy arrays yields numpy scalars,
        # which are several times slower in the interpreter.
        session_starts = [s.on_session_start for s in self._servers]
        request_code = [s.request_segment_code for s in self._servers]
        lease_of_user = [None] * trace.n_users
        for boxes in self._boxes:
            for user_id, box in boxes.items():
                lease_of_user[user_id] = box.grant_playback_lease
        feed = self._feed
        codes: List[int] = []
        append_code = codes.append

        for kind, now, watch, rec, nbhd, segment in zip(
            op.tolist(), schedule.time.tolist(), schedule.watch.tolist(),
            schedule.rec.tolist(), event_nbhd.tolist(),
            schedule.segment.tolist(),
        ):
            if kind == 2:
                append_code(request_code[nbhd](
                    now, user_ids[rec], program_ids[rec], segment, watch
                ))
            else:
                user_id = user_ids[rec]
                program_id = program_ids[rec]
                if feed is not None:
                    feed.record(now, program_id, nbhd)
                session_starts[nbhd](now, user_id, program_id)
                lease_of_user[user_id](lease_ends[rec])
                if kind == 0:
                    append_code(request_code[nbhd](
                        now, user_id, program_id, 0, watch
                    ))

        # ---- counters from the code stream ---------------------------
        delivered = schedule.delivered
        codes_arr = np.asarray(codes, dtype=np.int64)
        deliver_nbhd = event_nbhd[delivered]
        n_servers = len(self._servers)
        n_codes = idx.N_OUTCOME_CODES
        pair_counts = np.bincount(
            deliver_nbhd * n_codes + codes_arr,
            minlength=n_servers * n_codes,
        ).reshape(n_servers, n_codes)
        for server, row in zip(self._servers, pair_counts):
            local, peer, busy, miss, skip, filled = (int(c) for c in row)
            stats = server.stats
            stats.segment_requests += local + peer + busy + miss + skip + filled
            stats.local_hits += local
            stats.peer_hits += peer
            stats.busy_misses += busy
            stats.server_deliveries += busy + miss + skip + filled
            stats.cold_misses += miss + skip + filled
            stats.fill_skips += skip
            stats.fills += filled
        from_server = codes_arr >= idx.CODE_BUSY
        self._media_server.deliveries += int(from_server.sum())

        # ---- meters from the delivery stream -------------------------
        if codes_arr.size:
            event_ids, hours, bits = expand_intervals(
                schedule.time[delivered], schedule.watch[delivered]
            )
            n_hours = int(hours.max()) + 1

            def fill(meter, dense) -> None:
                # Dense accumulation replayed the scalar addition order
                # per bucket (np.add.at is order-preserving); one add of
                # each sum into the fresh meter is exact (0 + v == v).
                nonzero = np.flatnonzero(dense)
                if nonzero.size:
                    meter.add_bits_bulk(nonzero.tolist(),
                                        dense[nonzero].tolist())

            row_nbhd = deliver_nbhd[event_ids]
            row_code = codes_arr[event_ids]

            # Every meter family is per-neighborhood now (totals and
            # server traffic included); np.add.at is order-preserving,
            # so each (neighborhood, hour) cell accumulates through the
            # same float additions as the scalar engines' per-
            # neighborhood add_interval calls in event order.
            dense = np.zeros(n_servers * n_hours)
            np.add.at(dense, row_nbhd * n_hours + hours, bits)
            dense = dense.reshape(n_servers, n_hours)
            for local, meter in enumerate(self._local_total):
                fill(meter, dense[local])

            on_coax = row_code != idx.CODE_LOCAL
            dense = np.zeros(n_servers * n_hours)
            np.add.at(dense, row_nbhd[on_coax] * n_hours + hours[on_coax],
                      bits[on_coax])
            dense = dense.reshape(n_servers, n_hours)
            for local, meter in enumerate(self._local_coax):
                fill(meter, dense[local])

            upstream = row_code == idx.CODE_PEER
            dense = np.zeros(n_servers * n_hours)
            np.add.at(dense, row_nbhd[upstream] * n_hours + hours[upstream],
                      bits[upstream])
            dense = dense.reshape(n_servers, n_hours)
            for local, meter in enumerate(self._local_upstream):
                fill(meter, dense[local])

            server_rows = row_code >= idx.CODE_BUSY
            dense = np.zeros(n_servers * n_hours)
            np.add.at(dense, row_nbhd[server_rows] * n_hours
                      + hours[server_rows], bits[server_rows])
            dense = dense.reshape(n_servers, n_hours)
            for local, meter in enumerate(self._local_server):
                fill(meter, dense[local])

        return schedule.n_events
