"""CLI surface: listing, running, error handling."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig02", "fig08", "fig15", "multicast"):
            assert experiment_id in out

    def test_list_strategies_prints_registry(self, capsys):
        from repro.cache.policies import iter_policies

        assert main(["list-strategies"]) == 0
        out = capsys.readouterr().out
        for info in iter_policies():
            assert info.name in out
            assert info.label in out
        # Parameters come from the real spec surface.
        assert "history_hours" in out
        assert "min_accesses" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_profile_fails_cleanly(self, capsys):
        assert main(["fig02", "--profile", "warp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_single_cheap_experiment(self, capsys, monkeypatch):
        # fig02 is trace-analysis only; run it at the default profile but
        # against the (memoized) fast trace -- still quick enough for CI.
        monkeypatch.setenv("REPRO_PROFILE", "fast")
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "paper:" in out
