"""CLI surface: listing, running, scenario files, error handling."""

import json
from pathlib import Path

import pytest

from repro.cli import main

SCENARIOS_DIR = Path(__file__).resolve().parent.parent / "examples" / "scenarios"


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig02", "fig08", "fig15", "multicast"):
            assert experiment_id in out

    def test_list_strategies_prints_registry(self, capsys):
        from repro.cache.policies import iter_policies

        assert main(["list-strategies"]) == 0
        out = capsys.readouterr().out
        for info in iter_policies():
            assert info.name in out
            assert info.label in out
        # Parameters come from the real spec surface.
        assert "history_hours" in out
        assert "min_accesses" in out

    def test_list_families_prints_registry(self, capsys):
        from repro.trace.families import iter_families

        assert main(["list-families"]) == 0
        out = capsys.readouterr().out
        for info in iter_families():
            assert info.name in out
        # Capability tags and parameters come from the real spec surface.
        assert "streaming+transforms" in out
        assert "session_length_cdf" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["fig99"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_experiment_suggests_close_matches(self, capsys):
        assert main(["fig8"]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "fig08" in err

    def test_unknown_profile_fails_cleanly(self, capsys):
        assert main(["fig02", "--profile", "warp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_single_cheap_experiment(self, capsys, monkeypatch):
        # fig02 is trace-analysis only; run it at the default profile but
        # against the (memoized) fast trace -- still quick enough for CI.
        monkeypatch.setenv("REPRO_PROFILE", "fast")
        assert main(["fig02"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out
        assert "paper:" in out


class TestScenarioCommands:
    """The file-driven surface: run / sweep / describe."""

    def test_packaged_scenario_files_exist(self):
        names = {path.name for path in SCENARIOS_DIR.glob("*.json")}
        assert {"quickstart.json", "gdsf_history_sweep.json",
                "arc_ghost_sweep.json", "threshold_depth_sweep.json",
                "fig15_2x2.json", "flash_crowd_sweep.json",
                "trace_driven_demo.json"} <= names

    def test_packaged_sweep_files_parse(self):
        # The CI smoke job runs these end-to-end; tier-1 only proves
        # they load into valid sweeps (the heavy ones simulate scaled
        # workloads).
        from repro.scenario import Sweep, load

        for name in ("threshold_depth_sweep.json", "fig15_2x2.json"):
            sweep = load(SCENARIOS_DIR / name)
            assert isinstance(sweep, Sweep)
            assert len(sweep) == 4

    def test_packaged_family_files_parse(self):
        # Same contract for the workload-family examples: tier-1 loads,
        # the CI smoke job simulates.
        from repro.scenario import Scenario, Sweep, load
        from repro.trace.families.stress import FlashCrowdModel
        from repro.trace.families.tracefile import TraceFileModel

        sweep = load(SCENARIOS_DIR / "flash_crowd_sweep.json")
        assert isinstance(sweep, Sweep)
        assert isinstance(sweep.base.trace, FlashCrowdModel)
        assert len(sweep) == 6  # 3 spike intensities x 2 sampled storages
        scenario = load(SCENARIOS_DIR / "trace_driven_demo.json")
        assert isinstance(scenario, Scenario)
        assert isinstance(scenario.trace, TraceFileModel)
        # The shipped fixture log sits where the spec points (relative
        # to the repo root, which is where CI and the CLI smoke run).
        assert (SCENARIOS_DIR.parent.parent / scenario.trace.path).exists()

    def test_run_packaged_scenario(self, capsys):
        assert main(["run", str(SCENARIOS_DIR / "quickstart.json")]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "server_gbps" in out

    def test_sweep_packaged_file_with_csv(self, capsys, tmp_path):
        # The CLI smoke test for a packaged per-family parameter sweep
        # (ROADMAP: GDSF history depth), serial to keep CI predictable.
        out_csv = tmp_path / "rows.csv"
        assert main(["sweep", str(SCENARIOS_DIR / "gdsf_history_sweep.json"),
                     "--out", str(out_csv), "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "gdsf-history" in out
        lines = out_csv.read_text().strip().splitlines()
        assert len(lines) == 5  # header + 4 history depths
        assert "history_hours" in lines[0]

    def test_sweep_streams_rows_in_expansion_order(self, capsys):
        # Long grids must show live progress: one line per row, in
        # stable expansion order, under a header -- not one buffered
        # table.  (Streaming itself is exercised end-to-end; order is
        # what we can assert from captured output.)
        assert main(["sweep", str(SCENARIOS_DIR / "gdsf_history_sweep.json"),
                     "--workers", "1"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "gdsf-history" in lines[0]
        depth_lines = [line for line in lines if line.startswith(
            ("12.00", "24.00", "72.00", "168.00"))]
        assert [line.split()[0] for line in depth_lines] == [
            "12.00", "24.00", "72.00", "168.00"]

    def test_unwritable_out_path_exits_2(self, capsys, tmp_path):
        # --out I/O failures must honor the CLI's error contract
        # (stderr "error: ...", exit 2), not dump a raw traceback.
        missing_dir = tmp_path / "nope" / "rows.csv"
        assert main(["run", str(SCENARIOS_DIR / "quickstart.json"),
                     "--out", str(missing_dir)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "cannot write CSV" in err

    def test_run_accepts_sweep_files_too(self, capsys, tmp_path):
        # `run` dispatches on the file's kind, so handing it a sweep
        # works instead of erroring pedantically.
        from repro.scenario import load

        sweep = load(SCENARIOS_DIR / "arc_ghost_sweep.json")
        assert main(["run", str(SCENARIOS_DIR / "arc_ghost_sweep.json"),
                     "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "arc-ghost-budget" in out
        assert f"({len(sweep)} runs" in out

    def test_describe_round_trips_through_run(self, capsys, tmp_path):
        from repro.scenario import Sweep
        from repro.experiments import get_experiment

        assert main(["describe", "fig11", "--profile", "fast"]) == 0
        text = capsys.readouterr().out
        sweep = Sweep.from_json(text)
        assert sweep == get_experiment("fig11").sweep()
        # And the JSON is itself a loadable file.
        path = tmp_path / "fig11.json"
        path.write_text(text)
        from repro.scenario import load

        assert load(path) == sweep

    def test_describe_unknown_and_undescribable(self, capsys):
        assert main(["describe", "fig99"]) == 2
        assert "did you mean" in capsys.readouterr().err
        assert main(["describe", "fig02"]) == 2
        err = capsys.readouterr().err
        assert "not scenario-backed" in err
        assert "fig08" in err

    def test_missing_and_malformed_files_exit_2(self, capsys, tmp_path):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["run", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        weird = tmp_path / "weird.json"
        weird.write_text(json.dumps({"kind": "warp"}))
        assert main(["run", str(weird)]) == 2
        assert "unknown kind" in capsys.readouterr().err

    def test_unknown_strategy_in_file_suggests_and_exits_2(self, capsys,
                                                           tmp_path):
        from repro.scenario import load_scenario

        scenario = load_scenario(SCENARIOS_DIR / "quickstart.json")
        payload = scenario.to_dict()
        payload["config"]["strategy"] = {"name": "lfru"}
        path = tmp_path / "typo.json"
        path.write_text(json.dumps(payload))
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "did you mean" in err
        assert "lfu" in err

    def test_unknown_family_in_file_suggests_and_exits_2(self, capsys,
                                                         tmp_path):
        from repro.scenario import load_scenario

        scenario = load_scenario(SCENARIOS_DIR / "quickstart.json")
        payload = scenario.to_dict()
        payload["trace"] = {"family": "cdff"}
        path = tmp_path / "typo.json"
        path.write_text(json.dumps(payload))
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown workload family" in err
        assert "did you mean 'cdf'" in err


class TestDescribeFlat:
    """--flat inlines the profile-scaled grid into one point axis."""

    def test_flat_is_single_axis_and_expansion_identical(self, capsys):
        from repro.experiments import get_experiment
        from repro.scenario import Sweep

        assert main(["describe", "fig11", "--profile", "fast", "--flat"]) == 0
        flat = Sweep.from_json(capsys.readouterr().out)
        nested = get_experiment("fig11").sweep()
        assert [axis.name for axis in flat.axes] == ["point"]
        assert len(flat) == len(nested)
        # Same scenarios, same extra columns, same order: row-identical
        # by construction once run.
        assert flat.expand() == nested.expand()

    def test_flat_grid_with_trace_transform_axes(self, capsys):
        # fig15 sweeps the *workload* (population_x / catalog_x); the
        # flattened form must inline those moves per point too.
        from repro.experiments import get_experiment
        from repro.scenario import Sweep

        assert main(["describe", "fig15", "--profile", "fast", "--flat"]) == 0
        flat = Sweep.from_json(capsys.readouterr().out)
        assert flat.expand() == get_experiment("fig15").sweep().expand()
        points = flat.axes[0].points
        moved = [dict(point.sets) for point in points]
        assert any("population_x" in sets for sets in moved)
        assert any("catalog_x" in sets for sets in moved)

    def test_flat_file_loads_like_any_sweep(self, capsys, tmp_path):
        from repro.scenario import Sweep, load

        assert main(["describe", "fig08", "--profile", "fast", "--flat"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "fig08_flat.json"
        path.write_text(text)
        loaded = load(path)
        assert isinstance(loaded, Sweep)
        assert loaded == Sweep.from_json(text)


class TestTraceBackendFlag:
    def test_flag_pins_backend_for_scenario_runs(self, capsys):
        from repro.trace import synthetic

        from tests.conftest import preserved_trace_backend

        with preserved_trace_backend():
            assert main(["run", str(SCENARIOS_DIR / "quickstart.json"),
                         "--trace-backend", "python"]) == 0
            assert synthetic.resolve_trace_backend() == "python"
        out = capsys.readouterr().out
        assert "server_gbps" in out

    def test_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", str(SCENARIOS_DIR / "quickstart.json"),
                  "--trace-backend", "fortran"])
