"""Oracle strategy: future-knowledge membership."""

import pytest

from repro import units
from repro.cache.oracle import OracleStrategy
from repro.errors import ConfigurationError

from tests.cache.helpers import bind

DAY = units.SECONDS_PER_DAY


class TestConstruction:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            OracleStrategy({}, window_days=0.0)

    def test_rejects_bad_recompute(self):
        with pytest.raises(ConfigurationError):
            OracleStrategy({}, recompute_hours=0.0)

    def test_unsorted_futures_are_sorted(self):
        oracle = OracleStrategy({1: [500.0, 100.0, 300.0]})
        assert oracle.future_count(0.0, 1) == 3

    def test_is_instant_fill(self):
        assert OracleStrategy({}).instant_fill is True


class TestFutureCounts:
    def test_counts_strictly_future_window(self):
        oracle = OracleStrategy({1: [0.0, 100.0, 2 * DAY, 10 * DAY]},
                                window_days=3.0)
        # At t=0: events at 100 and 2*DAY fall in (0, 3d]; t=0 does not.
        assert oracle.future_count(0.0, 1) == 2

    def test_unknown_program_counts_zero(self):
        assert OracleStrategy({}).future_count(0.0, 42) == 0


class TestMembership:
    def test_prewarms_on_bind(self):
        oracle = OracleStrategy({1: [100.0] * 5, 2: [200.0] * 3, 3: [300.0]})
        change = bind(oracle)  # capacity: 3 programs
        assert set(change.admitted) == {1, 2, 3}

    def test_caps_at_capacity_by_frequency(self):
        futures = {pid: [100.0] * (10 - pid) for pid in range(6)}
        oracle = OracleStrategy(futures)
        change = bind(oracle)  # 3 slots; most frequent are 0, 1, 2
        assert set(change.admitted) == {0, 1, 2}

    def test_recompute_follows_demand_shift(self):
        oracle = OracleStrategy(
            {1: [0.5 * DAY], 2: [5 * DAY, 5.1 * DAY]},
            window_days=1.0,
            recompute_hours=6.0,
        )
        bind(oracle, capacity=100.0)  # a single slot
        assert oracle.members == frozenset({1})
        # As soon as 2's spike enters the look-ahead, it must take the
        # only slot from the now-demandless program 1.
        change = oracle.on_access(4.5 * DAY, 2)
        assert oracle.members == frozenset({2})
        assert change.evicted == [1]
        assert change.admitted == [2]
        # Further accesses inside the recompute interval change nothing.
        assert oracle.on_access(4.6 * DAY, 1).empty

    def test_no_recompute_between_intervals(self):
        oracle = OracleStrategy({1: [100.0]}, recompute_hours=6.0)
        bind(oracle)
        assert oracle.on_access(1.0, 1).empty
        assert oracle.on_access(2.0, 1).empty

    def test_retains_members_when_space_allows(self):
        oracle = OracleStrategy({1: [100.0], 2: [10 * DAY]}, window_days=1.0,
                                recompute_hours=1.0)
        bind(oracle)  # 3 slots
        assert oracle.members == frozenset({1})
        # After program 1's only access passes, it keeps its slot: the
        # cache is not full, and evicting would only force a refill.
        oracle.on_access(2 * DAY, 2)
        assert 1 in oracle.members

    def test_oversized_programs_skipped(self):
        oracle = OracleStrategy({1: [100.0] * 9, 2: [200.0]})
        bind(oracle, capacity=150.0, sizes={1: 200.0})
        assert oracle.members == frozenset({2})


class TestIncrementalSlide:
    """The incremental window slide must equal the from-scratch scan."""

    def _futures(self):
        # Deterministic but irregular: bursts, gaps, shared timestamps.
        futures = {}
        for pid in range(12):
            times = [(pid * 37 + k * k * 211) % (9 * DAY) for k in range(25)]
            times += [float(pid) * DAY / 3.0] * 3  # repeated timestamps
            futures[pid] = [float(t) for t in times]
        futures[99] = []  # empty lists are dropped on construction
        return futures

    def test_slides_match_full_recompute(self):
        oracle = OracleStrategy(self._futures(), window_days=2.0)
        nows = [0.0, 0.1, 0.1, 0.4 * DAY, 0.4 * DAY + 1e-9, 1.7 * DAY,
                2.0 * DAY, 5.3 * DAY, 8.999 * DAY, 20.0 * DAY]
        for now in nows:
            incremental = dict(oracle.window_counts(now))
            assert incremental == oracle.full_window_counts(now), now

    def test_rewind_falls_back_to_full_scan(self):
        oracle = OracleStrategy(self._futures(), window_days=1.0)
        oracle.window_counts(3.0 * DAY)
        assert (oracle.window_counts(1.0 * DAY)
                == oracle.full_window_counts(1.0 * DAY))

    def test_run_equals_forced_full_recompute(self, monkeypatch):
        """A whole simulated run is bit-identical either way."""
        from repro.core.config import SimulationConfig
        from repro.core.runner import run_simulation
        from repro.cache.factory import OracleSpec
        from repro.trace.synthetic import PowerInfoModel, generate_trace

        trace = generate_trace(
            PowerInfoModel(n_users=240, n_programs=48, days=3.0, seed=19))
        config = SimulationConfig(neighborhood_size=60, warmup_days=0.5,
                                  strategy=OracleSpec())
        incremental = run_simulation(trace, config, engine="bucket")
        monkeypatch.setattr(
            OracleStrategy, "window_counts",
            lambda self, now: self.full_window_counts(now))
        full = run_simulation(trace, config, engine="bucket")
        assert incremental.counters == full.counters
        assert incremental.events_processed == full.events_processed
        assert (incremental.server_meter.buckets()
                == full.server_meter.buckets())
        assert (incremental.total_meter.buckets()
                == full.total_meter.buckets())
