"""LRU strategy: the paper's IV-B.2 queue semantics."""

import pytest

from repro.cache.lru import LRUStrategy
from repro.errors import CacheError

from tests.cache.helpers import bind


class TestAdmission:
    def test_admits_immediately_on_access(self):
        strategy = LRUStrategy()
        bind(strategy)
        change = strategy.on_access(0.0, 1)
        assert change.admitted == [1]
        assert 1 in strategy

    def test_repeat_access_changes_nothing(self):
        strategy = LRUStrategy()
        bind(strategy)
        strategy.on_access(0.0, 1)
        change = strategy.on_access(1.0, 1)
        assert change.empty

    def test_fills_to_capacity_without_eviction(self):
        strategy = LRUStrategy()
        bind(strategy)  # capacity 3 programs
        for t, pid in enumerate((1, 2, 3)):
            change = strategy.on_access(float(t), pid)
            assert change.evicted == []
        assert strategy.members == frozenset({1, 2, 3})

    def test_oversized_program_never_admitted(self):
        strategy = LRUStrategy()
        bind(strategy, capacity=300.0, sizes={9: 400.0})
        change = strategy.on_access(0.0, 9)
        assert change.empty
        assert 9 not in strategy


class TestEviction:
    def test_evicts_least_recently_used(self):
        strategy = LRUStrategy()
        bind(strategy)
        for t, pid in enumerate((1, 2, 3)):
            strategy.on_access(float(t), pid)
        change = strategy.on_access(3.0, 4)
        assert change.evicted == [1]
        assert change.admitted == [4]

    def test_access_refreshes_recency(self):
        strategy = LRUStrategy()
        bind(strategy)
        for t, pid in enumerate((1, 2, 3)):
            strategy.on_access(float(t), pid)
        strategy.on_access(3.0, 1)  # 1 becomes most recent
        change = strategy.on_access(4.0, 4)
        assert change.evicted == [2]

    def test_large_program_evicts_multiple(self):
        strategy = LRUStrategy()
        bind(strategy, capacity=300.0, sizes={9: 200.0})
        for t, pid in enumerate((1, 2, 3)):
            strategy.on_access(float(t), pid)
        change = strategy.on_access(3.0, 9)
        assert change.evicted == [1, 2]
        assert change.admitted == [9]
        assert strategy.members == frozenset({3, 9})

    def test_used_bytes_tracked(self):
        strategy = LRUStrategy()
        bind(strategy)
        strategy.on_access(0.0, 1)
        strategy.on_access(1.0, 2)
        assert strategy.used_bytes == 200.0
        strategy.on_access(2.0, 3)
        strategy.on_access(3.0, 4)
        assert strategy.used_bytes == 300.0


class TestForceEvict:
    def test_force_evict_removes_from_queue(self):
        strategy = LRUStrategy()
        bind(strategy)
        strategy.on_access(0.0, 1)
        strategy.force_evict(1)
        assert 1 not in strategy
        # Re-admission works cleanly afterwards.
        change = strategy.on_access(1.0, 1)
        assert change.admitted == [1]

    def test_force_evict_non_member_raises(self):
        strategy = LRUStrategy()
        bind(strategy)
        with pytest.raises(CacheError):
            strategy.force_evict(42)


class TestLifecycle:
    def test_double_bind_rejected(self):
        strategy = LRUStrategy()
        bind(strategy)
        with pytest.raises(CacheError):
            bind(strategy)

    def test_use_before_bind_rejected(self):
        with pytest.raises(CacheError):
            LRUStrategy().on_access(0.0, 1)
