"""Policy registry, new policy families, and engine-wide invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.cache.base import StrategyContext
from repro.cache.factory import BuildInputs, spec_from_name
from repro.cache.policies import (
    ARCEviction,
    AlwaysAdmit,
    FrequencySketchAdmission,
    GDSFEviction,
    LFUEviction,
    LRUEviction,
    PolicyStrategy,
    ThresholdAdmission,
    eviction_names,
    get_policy,
    iter_policies,
    named_eviction,
    policy_names,
)
from repro.cache.segments import segment_bytes
from repro.errors import ConfigurationError

from tests.cache.helpers import bind


class TestRegistry:
    def test_all_families_registered(self):
        names = policy_names()
        for expected in ("none", "lru", "lfu", "oracle", "global-lfu",
                         "gdsf", "arc", "threshold", "frequency-sketch"):
            assert expected in names

    def test_unknown_name_lists_registered_choices(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_policy("clock")
        message = str(excinfo.value)
        for name in policy_names():
            assert name in message

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(ConfigurationError, match="did you mean"):
            get_policy("lfru")

    def test_spec_from_name_error_comes_from_registry(self):
        with pytest.raises(ConfigurationError, match="gdsf"):
            spec_from_name("clock")

    def test_parameters_reflect_dataclass_fields(self):
        params = dict(get_policy("lfu").parameters())
        assert params["history_hours"] == 72.0
        assert dict(get_policy("threshold").parameters())["min_accesses"] == 2

    def test_every_policy_has_label_and_summary(self):
        for info in iter_policies():
            assert info.label
            assert info.summary

    def test_named_eviction_families(self):
        assert set(eviction_names()) == {"lru", "lfu", "gdsf", "arc"}
        with pytest.raises(ConfigurationError):
            named_eviction("fifo")


def _build_one(info, futures):
    """One bound-ready strategy instance for any registered policy."""
    spec = info.spec_class()
    inputs = BuildInputs(
        n_neighborhoods=1,
        future_accesses=[futures] if spec.requires_future_knowledge else None,
    )
    return spec.build(inputs).strategies[0]


class TestCapacityInvariant:
    """Every registered policy respects capacity on random streams."""

    @pytest.mark.parametrize("info", iter_policies(),
                             ids=[i.name for i in iter_policies()])
    @pytest.mark.parametrize("seed", [3, 41])
    def test_used_bytes_never_exceed_capacity(self, info, seed):
        rng = random.Random(seed)
        accesses = []
        t = 0.0
        for _ in range(500):
            t += rng.uniform(1.0, 2 * units.SECONDS_PER_HOUR)
            accesses.append((t, rng.randrange(30)))
        futures = {}
        for when, pid in accesses:
            futures.setdefault(pid, []).append(when)

        strategy = _build_one(info, futures)
        capacity = 750.0
        sizes = {pid: 50.0 + 50.0 * (pid % 4) for pid in range(30)}
        bind(strategy, capacity=capacity, sizes=sizes)
        members = set(strategy.members)  # oracle pre-warms at bind
        for now, program_id in accesses:
            change = strategy.on_access(now, program_id)
            for evicted in change.evicted:
                assert evicted in members
                members.discard(evicted)
            for admitted in change.admitted:
                assert admitted not in members
                members.add(admitted)
            assert members == set(strategy.members)
            assert strategy.used_bytes <= capacity + 1e-9
            assert strategy.used_bytes == pytest.approx(
                sum(sizes[pid] for pid in members)
            )


class TestZeroHistoryDegeneratesToLRU:
    """Fig 11's claim, proven on the policy engine itself."""

    @given(st.lists(st.tuples(st.integers(1, 30), st.integers(0, 25)),
                    min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_property_zero_history_lfu_equals_lru(self, steps):
        lfu = PolicyStrategy(AlwaysAdmit(), LFUEviction(history_hours=0.0))
        lru = PolicyStrategy(AlwaysAdmit(), LRUEviction())
        bind(lfu, capacity=400.0)
        bind(lru, capacity=400.0)
        t = 0.0
        for gap, pid in steps:
            t += gap  # strictly increasing: ties are tested elsewhere
            lfu_change = lfu.on_access(t, pid)
            lru_change = lru.on_access(t, pid)
            assert lfu_change.admitted == lru_change.admitted
            assert lfu_change.evicted == lru_change.evicted
        assert lfu.members == lru.members


class TestGDSF:
    def _bind(self, capacity_segments=4.0, sizes=None):
        strategy = PolicyStrategy(AlwaysAdmit(), GDSFEviction(history_hours=24.0))
        seg = segment_bytes()
        sizes = sizes or {}
        strategy.bind(StrategyContext(
            neighborhood_id=0,
            capacity_bytes=capacity_segments * seg,
            footprint_of=lambda pid: sizes.get(pid, 1.0) * seg,
        ))
        return strategy

    def test_small_popular_program_outranks_large_lukewarm(self):
        # Program 1 is large (3 segments, one access); program 2 is
        # small (1 segment) and hot.  A newcomer needing the large
        # program's bytes evicts it, not the small hot one.
        strategy = self._bind(capacity_segments=4.0, sizes={1: 3.0, 2: 1.0, 3: 3.0})
        strategy.on_access(0.0, 1)
        for t in (10.0, 20.0, 30.0):
            strategy.on_access(t, 2)
        change = strategy.on_access(40.0, 3)
        assert change.admitted == [3]
        assert change.evicted == [1]
        assert 2 in strategy

    def test_eviction_inflates_clock(self):
        strategy = self._bind(capacity_segments=2.0, sizes={pid: 1.0 for pid in range(9)})
        evictor = strategy.eviction
        t = 0.0
        for pid in range(6):
            t += 10.0
            strategy.on_access(t, pid)
        assert evictor._clock > 0.0

    def test_heap_stays_bounded_on_stable_workloads(self):
        # A stable member-heavy stream must not accumulate one heap
        # entry per touch (the deferred dirty-set + compaction
        # discipline shared with LFU).
        strategy = self._bind(capacity_segments=12.0,
                              sizes={pid: 1.0 for pid in range(40)})
        evictor = strategy.eviction
        t = 0.0
        for i in range(20_000):
            t += 7.0
            strategy.on_access(t, (i * i + i // 9) % 40)
        assert len(evictor._heap) < 2_000

    def test_cold_newcomer_cannot_displace_hot_members(self):
        strategy = self._bind(capacity_segments=2.0, sizes={pid: 1.0 for pid in range(9)})
        for t, pid in ((0.0, 1), (1.0, 1), (2.0, 1), (3.0, 2), (4.0, 2), (5.0, 2)):
            strategy.on_access(t, pid)
        change = strategy.on_access(6.0, 7)  # count 1 vs count-3 members
        assert change.empty
        assert 7 not in strategy


class TestARC:
    def _bind(self, capacity=300.0):
        strategy = PolicyStrategy(AlwaysAdmit(), ARCEviction())
        bind(strategy, capacity=capacity)
        return strategy

    def test_second_access_promotes_to_frequency_side(self):
        strategy = self._bind()
        evictor = strategy.eviction
        strategy.on_access(0.0, 1)
        assert 1 in evictor._t1
        strategy.on_access(1.0, 1)
        assert 1 in evictor._t2
        assert 1 not in evictor._t1

    def test_one_hit_wonders_evict_before_frequent_members(self):
        strategy = self._bind(capacity=300.0)
        strategy.on_access(0.0, 1)
        strategy.on_access(1.0, 1)  # 1 promoted to T2
        strategy.on_access(2.0, 2)
        strategy.on_access(3.0, 3)  # cache full: {1, 2, 3}
        change = strategy.on_access(4.0, 4)
        assert change.admitted == [4]
        assert change.evicted == [2]  # oldest one-hit wonder, not the T2 member
        assert 1 in strategy

    def test_ghost_hit_readmits_into_t2_and_adapts(self):
        strategy = self._bind(capacity=300.0)
        evictor = strategy.eviction
        strategy.on_access(0.0, 1)
        strategy.on_access(1.0, 2)
        strategy.on_access(2.0, 3)
        strategy.on_access(3.0, 4)   # evicts 1 into the B1 ghost
        assert 1 in evictor._b1
        target_before = evictor._p
        strategy.on_access(4.0, 1)   # ghost hit: readmit, grow the target
        assert 1 in evictor._t2
        assert evictor._p > target_before

    def test_ghost_lists_stay_bounded(self):
        strategy = self._bind(capacity=300.0)
        evictor = strategy.eviction
        t = 0.0
        for pid in range(200):
            t += 1.0
            strategy.on_access(t, pid)
        assert evictor._b1_bytes <= 300.0 + 1e-9
        assert evictor._b2_bytes <= 300.0 + 1e-9


class TestThresholdAdmission:
    def test_first_access_is_filtered(self):
        strategy = PolicyStrategy(ThresholdAdmission(min_accesses=2),
                                  LRUEviction())
        bind(strategy)
        assert strategy.on_access(0.0, 1).empty
        change = strategy.on_access(10.0, 1)
        assert change.admitted == [1]

    def test_window_expiry_resets_the_gate(self):
        strategy = PolicyStrategy(
            ThresholdAdmission(min_accesses=2, window_hours=1.0),
            LRUEviction(),
        )
        bind(strategy)
        strategy.on_access(0.0, 1)
        # Second access lands outside the window: still below threshold.
        late = 2 * units.SECONDS_PER_HOUR
        assert strategy.on_access(late, 1).empty
        assert strategy.on_access(late + 60.0, 1).admitted == [1]

    def test_composes_with_any_eviction_family(self):
        for eviction in eviction_names():
            strategy = PolicyStrategy(ThresholdAdmission(min_accesses=2),
                                      named_eviction(eviction))
            bind(strategy)
            assert strategy.on_access(0.0, 5).empty
            assert strategy.on_access(1.0, 5).admitted == [5]

    def test_min_accesses_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ThresholdAdmission(min_accesses=0)

    def test_threshold_spec_builds_composition(self):
        spec = spec_from_name("threshold")
        built = spec.build(BuildInputs(n_neighborhoods=2))
        assert all(isinstance(s, PolicyStrategy) for s in built.strategies)
        assert all(isinstance(s.admission, ThresholdAdmission)
                   for s in built.strategies)


class TestFrequencySketchAdmission:
    def test_first_access_is_filtered_second_admits(self):
        strategy = PolicyStrategy(FrequencySketchAdmission(min_estimate=2),
                                  LRUEviction())
        bind(strategy)
        assert strategy.on_access(0.0, 1).empty
        assert strategy.on_access(10.0, 1).admitted == [1]

    def test_estimates_are_deterministic_and_exact_without_collisions(self):
        sketch = FrequencySketchAdmission(width=4096, depth=4)
        for i in range(50):
            for _ in range(i % 5 + 1):
                sketch.observe(0.0, i)
        for i in range(50):
            assert sketch.estimate(i) == i % 5 + 1

    def test_decay_halves_counters(self):
        sketch = FrequencySketchAdmission(min_estimate=2, width=64, depth=2,
                                          decay_accesses=10)
        for _ in range(9):
            sketch.observe(0.0, 7)
        assert sketch.estimate(7) == 9
        sketch.observe(0.0, 7)  # 10th access triggers the halving
        assert sketch.estimate(7) == 5
        # A program must keep earning accesses to stay admissible.
        for _ in range(3):
            for _ in range(10):
                sketch.observe(0.0, 99)
        assert sketch.estimate(7) < 2

    def test_collisions_only_overestimate(self):
        # A 1-wide sketch is all collisions: estimates can only inflate,
        # so the gate admits more, never silently locks content out.
        sketch = FrequencySketchAdmission(width=1, depth=1)
        sketch.observe(0.0, 1)
        sketch.observe(0.0, 2)
        assert sketch.estimate(3) >= 0
        assert sketch.should_admit(0.0, 3)

    def test_composes_with_any_eviction_family(self):
        for eviction in eviction_names():
            strategy = PolicyStrategy(FrequencySketchAdmission(min_estimate=2),
                                      named_eviction(eviction))
            bind(strategy)
            assert strategy.on_access(0.0, 5).empty
            assert strategy.on_access(1.0, 5).admitted == [5]

    def test_spec_builds_composition(self):
        spec = spec_from_name("frequency-sketch:eviction=gdsf")
        built = spec.build(BuildInputs(n_neighborhoods=2))
        assert all(isinstance(s, PolicyStrategy) for s in built.strategies)
        assert all(isinstance(s.admission, FrequencySketchAdmission)
                   for s in built.strategies)
        assert built.strategies[0].admission is not built.strategies[1].admission

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            FrequencySketchAdmission(min_estimate=0)
        with pytest.raises(ConfigurationError):
            FrequencySketchAdmission(width=0)
        with pytest.raises(ConfigurationError):
            FrequencySketchAdmission(depth=99)
        with pytest.raises(ConfigurationError):
            FrequencySketchAdmission(decay_accesses=0)


class TestARCGhostBudget:
    def _run_stream(self, ghost_budget):
        strategy = PolicyStrategy(AlwaysAdmit(),
                                  ARCEviction(ghost_budget=ghost_budget))
        bind(strategy, capacity=300.0)
        t = 0.0
        for pid in range(60):
            t += 1.0
            strategy.on_access(t, pid)
        return strategy.eviction

    def test_budget_bounds_ghost_bytes(self):
        for budget in (0.25, 0.5, 1.0, 2.0):
            evictor = self._run_stream(budget)
            assert evictor._b1_bytes <= 300.0 * budget + 1e-9
            assert evictor._b2_bytes <= 300.0 * budget + 1e-9

    def test_zero_budget_disables_ghost_memory(self):
        evictor = self._run_stream(0.0)
        assert not evictor._b1
        assert not evictor._b2

    def test_default_budget_is_canonical_arc(self):
        # ghost_budget=1.0 must leave behaviour exactly as before the
        # knob existed (one cache's worth of ghost bytes per list).
        from repro.cache.factory import ARCSpec

        assert ARCSpec().label == "arc"
        assert ARCSpec(ghost_budget=0.5).label == "arc(g=0.5)"
        with pytest.raises(ConfigurationError):
            ARCEviction(ghost_budget=-0.1)
