"""Helpers for cache-strategy unit tests."""

from repro.cache.base import StrategyContext


def bind(strategy, capacity=300.0, sizes=None, neighborhood_id=0):
    """Bind ``strategy`` to a synthetic context.

    ``sizes`` maps program ids to footprints; unlisted programs cost 100
    bytes, so the default 300-byte capacity holds exactly three programs.
    Returns the initial membership change.
    """
    sizes = sizes or {}

    def footprint_of(program_id):
        return float(sizes.get(program_id, 100.0))

    return strategy.bind(
        StrategyContext(
            neighborhood_id=neighborhood_id,
            capacity_bytes=float(capacity),
            footprint_of=footprint_of,
        )
    )
