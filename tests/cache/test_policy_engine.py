"""The policy engine must be bit-identical to the classic strategies.

PR 2's refactor moved the paper's strategies onto the composable
admission/eviction engine and gave LFU a deferred, compacted heap.
That is only admissible because it changes *nothing* observable: the
classic implementations are kept (``classic=True`` on the specs) as the
trusted reference, and these tests drive both through identical access
streams and full simulator runs, asserting byte-for-byte equal
membership decisions, counters and hourly meter buckets -- the same
discipline :mod:`tests.core.test_engine_equivalence` applies to the
event engine.
"""

from __future__ import annotations

import random

import pytest

from repro.cache.factory import BuildInputs, GlobalLFUSpec, LFUSpec, LRUSpec
from repro.cache.lfu import LFUStrategy
from repro.cache.lru import LRUStrategy
from repro.cache.policies import (
    AlwaysAdmit,
    LFUEviction,
    LRUEviction,
    PolicyStrategy,
)
from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation

from tests.cache.helpers import bind


def _stream(seed, n=600, programs=40, max_gap=900):
    rng = random.Random(seed)
    t = 0.0
    for _ in range(n):
        t += rng.uniform(1.0, max_gap)
        yield t, rng.randrange(programs)


def assert_same_decisions(classic, engine, seed, capacity=1000.0):
    bind(classic, capacity=capacity)
    bind(engine, capacity=capacity)
    for now, program_id in _stream(seed):
        reference = classic.on_access(now, program_id)
        candidate = engine.on_access(now, program_id)
        assert candidate.admitted == reference.admitted
        assert candidate.evicted == reference.evicted
        assert engine.members == classic.members
        assert engine.used_bytes == classic.used_bytes


class TestDecisionEquivalence:
    """Unit-level: identical MembershipChange sequences, access by access."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_lru_engine_matches_classic(self, seed):
        assert_same_decisions(
            LRUStrategy(),
            PolicyStrategy(AlwaysAdmit(), LRUEviction()),
            seed,
        )

    @pytest.mark.parametrize("seed", [1, 7, 23])
    @pytest.mark.parametrize("history_hours", [0.0, 0.5, 72.0, None])
    def test_lfu_engine_matches_classic(self, seed, history_hours):
        assert_same_decisions(
            LFUStrategy(history_hours=history_hours),
            PolicyStrategy(AlwaysAdmit(), LFUEviction(history_hours=history_hours)),
            seed,
        )

    def test_lfu_compaction_is_invisible(self):
        """A long member-heavy stream crosses the compaction threshold."""
        classic = LFUStrategy(history_hours=1.0)
        engine = PolicyStrategy(AlwaysAdmit(), LFUEviction(history_hours=1.0))
        bind(classic, capacity=500.0)
        bind(engine, capacity=500.0)
        t = 0.0
        for i in range(4_000):
            t += 7.0
            program_id = (i * i + i // 9) % 8  # few programs: mostly touches
            reference = classic.on_access(t, program_id)
            candidate = engine.on_access(t, program_id)
            assert candidate.admitted == reference.admitted
            assert candidate.evicted == reference.evicted
        assert engine.members == classic.members
        # The deferred heap must actually have compacted to stay O(live).
        assert len(engine.eviction._heap) < 4_000


class TestFullRunEquivalence:
    """System-level: same trace, classic vs engine, identical results."""

    @pytest.mark.parametrize(
        "spec_pair",
        [
            (LRUSpec(classic=True), LRUSpec()),
            (LFUSpec(classic=True), LFUSpec()),
            (LFUSpec(history_hours=6.0, classic=True), LFUSpec(history_hours=6.0)),
            (GlobalLFUSpec(classic=True), GlobalLFUSpec()),
            (
                GlobalLFUSpec(lag_seconds=1800.0, classic=True),
                GlobalLFUSpec(lag_seconds=1800.0),
            ),
        ],
        ids=["lru", "lfu", "lfu-6h", "global-lfu", "global-lfu-lag"],
    )
    def test_counters_and_meters_identical(self, tiny_trace, spec_pair):
        classic_spec, engine_spec = spec_pair
        results = []
        for spec in (classic_spec, engine_spec):
            config = SimulationConfig(
                neighborhood_size=60, warmup_days=0.5, strategy=spec
            )
            results.append(run_simulation(tiny_trace, config))
        reference, candidate = results
        assert candidate.counters == reference.counters
        assert candidate.events_processed == reference.events_processed
        assert candidate.server_meter.buckets() == reference.server_meter.buckets()
        assert candidate.total_meter.buckets() == reference.total_meter.buckets()
        for key in reference.coax_meters:
            assert (candidate.coax_meters[key].buckets()
                    == reference.coax_meters[key].buckets())
        for key in reference.upstream_meters:
            assert (candidate.upstream_meters[key].buckets()
                    == reference.upstream_meters[key].buckets())

    def test_classic_flag_builds_the_classic_classes(self):
        classic = LFUSpec(classic=True).build(BuildInputs(n_neighborhoods=1))
        engine = LFUSpec().build(BuildInputs(n_neighborhoods=1))
        assert isinstance(classic.strategies[0], LFUStrategy)
        assert isinstance(engine.strategies[0], PolicyStrategy)
        assert isinstance(engine.strategies[0].eviction, LFUEviction)
