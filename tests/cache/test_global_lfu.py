"""Global-LFU feed: cross-neighborhood popularity with batching lag."""

import pytest

from repro.cache.global_lfu import GlobalLFUStrategy, GlobalPopularityFeed
from repro.errors import ConfigurationError

from tests.cache.helpers import bind


class TestFeedVisibility:
    def test_zero_lag_visible_after_advance(self):
        feed = GlobalPopularityFeed(window_seconds=3600.0, lag_seconds=0.0)
        feed.record(10.0, 1, neighborhood_id=0)
        feed.advance(10.0)
        assert feed.remote_count(1, 1) == 1

    def test_own_events_excluded(self):
        feed = GlobalPopularityFeed(window_seconds=3600.0, lag_seconds=0.0)
        feed.record(10.0, 1, neighborhood_id=0)
        feed.advance(10.0)
        assert feed.remote_count(0, 1) == 0

    def test_lag_batches_releases(self):
        feed = GlobalPopularityFeed(window_seconds=None, lag_seconds=1800.0)
        feed.record(100.0, 1, neighborhood_id=0)  # batch ends at 1800
        feed.advance(1799.0)
        assert feed.remote_count(1, 1) == 0
        feed.advance(1800.0)
        assert feed.remote_count(1, 1) == 1

    def test_event_on_batch_boundary_goes_to_next_batch(self):
        feed = GlobalPopularityFeed(window_seconds=None, lag_seconds=100.0)
        feed.record(100.0, 1, neighborhood_id=0)  # released at 200
        feed.advance(150.0)
        assert feed.remote_count(1, 1) == 0
        feed.advance(200.0)
        assert feed.remote_count(1, 1) == 1

    def test_window_expiry(self):
        feed = GlobalPopularityFeed(window_seconds=1000.0, lag_seconds=0.0)
        feed.record(0.0, 1, neighborhood_id=0)
        feed.record(500.0, 1, neighborhood_id=0)
        feed.advance(1200.0)
        assert feed.remote_count(1, 1) == 1
        feed.advance(1600.0)
        assert feed.remote_count(1, 1) == 0

    def test_listeners_fire_on_release_and_expiry(self):
        feed = GlobalPopularityFeed(window_seconds=100.0, lag_seconds=0.0)
        events = []
        feed.add_change_listener(events.append)
        feed.record(0.0, 9, neighborhood_id=0)
        feed.advance(0.0)
        feed.advance(200.0)
        assert events == [9, 9]

    def test_rejects_negative_lag(self):
        with pytest.raises(ConfigurationError):
            GlobalPopularityFeed(window_seconds=None, lag_seconds=-1.0)


class TestGlobalStrategy:
    def test_counts_blend_local_and_remote(self):
        feed = GlobalPopularityFeed(window_seconds=3600.0, lag_seconds=0.0)
        local = GlobalLFUStrategy(feed, neighborhood_id=0, history_hours=1.0)
        bind(local)
        # A remote neighborhood watched program 1 twice.
        feed.record(0.0, 1, neighborhood_id=1)
        feed.record(1.0, 1, neighborhood_id=1)
        local.on_access(2.0, 1)
        assert local._count(1) == 3  # 1 local + 2 remote

    def test_remote_knowledge_changes_admission(self):
        feed = GlobalPopularityFeed(window_seconds=3600.0, lag_seconds=0.0)
        strategy = GlobalLFUStrategy(feed, neighborhood_id=0, history_hours=1.0)
        bind(strategy)  # 3 slots
        # Fill the cache with three locally one-hit programs.
        for t, pid in ((0.0, 1), (1.0, 2), (2.0, 3)):
            strategy.on_access(t, pid)
        # Remote neighborhoods hammer program 9.
        for k in range(5):
            feed.record(3.0 + k, 9, neighborhood_id=2)
        # One local access to 9: global count 6 beats any member.
        change = strategy.on_access(10.0, 9)
        assert 9 in strategy
        assert len(change.evicted) == 1

    def test_local_strategy_blind_without_feed_records(self):
        feed = GlobalPopularityFeed(window_seconds=3600.0, lag_seconds=0.0)
        strategy = GlobalLFUStrategy(feed, neighborhood_id=0, history_hours=1.0)
        bind(strategy)
        strategy.on_access(0.0, 1)
        assert strategy._count(1) == 1  # purely local

    def test_two_neighborhood_strategies_share_feed(self):
        feed = GlobalPopularityFeed(window_seconds=3600.0, lag_seconds=0.0)
        a = GlobalLFUStrategy(feed, neighborhood_id=0, history_hours=1.0)
        b = GlobalLFUStrategy(feed, neighborhood_id=1, history_hours=1.0)
        bind(a, neighborhood_id=0)
        bind(b, neighborhood_id=1)
        feed.record(0.0, 5, neighborhood_id=0)
        a.on_access(0.0, 5)
        feed.record(1.0, 5, neighborhood_id=1)
        b.on_access(1.0, 5)
        # Each sees its own access locally plus the other's remotely.
        assert a._count(5) == 2
        assert b._count(5) == 2
