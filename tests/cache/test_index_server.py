"""Index server: hit/miss flows, fills, busy peers, membership plumbing."""

import pytest

from repro.cache.base import NullStrategy, StrategyContext
from repro.cache.index_server import IndexServer
from repro.cache.lru import LRUStrategy
from repro.cache.oracle import OracleStrategy
from repro.cache.segments import PlacementMap, cache_footprint_bytes, segment_bytes
from repro.errors import CacheError
from repro.peers.settop import SetTopBox
from repro.topology.hfc import Neighborhood
from repro.trace.records import Catalog, Program


def build_server(strategy=None, n_users=3, segments_per_peer=10,
                 program_lengths=(600.0, 600.0)):
    catalog = Catalog([
        Program(i, length) for i, length in enumerate(program_lengths)
    ])
    neighborhood = Neighborhood(0, tuple(range(n_users)))
    boxes = {
        uid: SetTopBox(uid, storage_bytes=segments_per_peer * segment_bytes())
        for uid in neighborhood.user_ids
    }
    placement = PlacementMap(list(boxes.values()))
    strategy = strategy or LRUStrategy()
    initial = strategy.bind(
        StrategyContext(
            neighborhood_id=0,
            capacity_bytes=n_users * segments_per_peer * segment_bytes(),
            footprint_of=lambda pid: cache_footprint_bytes(catalog[pid]),
        )
    )
    server = IndexServer(neighborhood, boxes, strategy, placement, catalog)
    server.apply_initial_membership(initial)
    return server, boxes


class TestMissAndFill:
    def test_first_request_is_cold_miss(self):
        server, _ = build_server()
        server.on_session_start(0.0, 0, 0)
        outcome = server.request_segment(0.0, 0, 0, 0, 300.0)
        assert outcome.from_server
        assert outcome.on_coax
        assert not outcome.busy_miss

    def test_full_watch_fills_segment(self):
        server, _ = build_server()
        server.on_session_start(0.0, 0, 0)
        outcome = server.request_segment(0.0, 0, 0, 0, 300.0)
        assert outcome.filled
        assert server.stored_segment_count(0) == 1

    def test_partial_watch_does_not_fill(self):
        server, _ = build_server()
        server.on_session_start(0.0, 0, 0)
        outcome = server.request_segment(0.0, 0, 0, 0, 120.0)
        assert outcome.from_server
        assert not outcome.filled
        assert server.stats.fill_skips == 1

    def test_unadmitted_program_never_fills(self):
        server, _ = build_server(strategy=NullStrategy())
        server.on_session_start(0.0, 0, 0)
        outcome = server.request_segment(0.0, 0, 0, 0, 300.0)
        assert not outcome.filled
        assert server.cached_programs() == set()


class TestHit:
    def _warm(self, server, user=0):
        server.on_session_start(0.0, user, 0)
        server.request_segment(0.0, user, 0, 0, 300.0)

    def test_second_request_hits_peer(self):
        server, _ = build_server()
        self._warm(server, user=0)
        outcome = server.request_segment(1000.0, 1, 0, 0, 300.0)
        assert outcome.source in ("peer", "local")
        assert not outcome.from_server

    def test_own_disk_hit_skips_coax(self):
        server, boxes = build_server(n_users=1)
        self._warm(server, user=0)
        outcome = server.request_segment(1000.0, 0, 0, 0, 300.0)
        assert outcome.source == "local"
        assert not outcome.on_coax
        assert server.stats.local_hits == 1

    def test_peer_hit_occupies_holder_stream(self):
        server, boxes = build_server()
        self._warm(server, user=0)
        outcome = server.request_segment(1000.0, 1, 0, 0, 300.0)
        if outcome.source == "peer":
            holder = boxes[outcome.serving_box]
            assert holder.active_streams(1000.0) >= 1

    def test_busy_holder_triggers_server_miss(self):
        server, boxes = build_server()
        self._warm(server, user=0)
        first = server.request_segment(1000.0, 1, 0, 0, 300.0)
        assert first.source in ("peer", "local")
        holder = boxes[first.serving_box]
        # Saturate the holder's remaining channel.
        while holder.can_open_stream(1000.0):
            holder.open_stream(1000.0, 300.0)
        outcome = server.request_segment(1000.0, 2, 0, 0, 300.0)
        if first.source == "peer":
            assert outcome.busy_miss
            assert outcome.from_server


class TestMembershipPlumbing:
    def test_eviction_clears_placement_and_storage(self):
        # Capacity of exactly one 2-segment program forces eviction.
        strategy = LRUStrategy()
        server, _ = build_server(strategy=strategy, n_users=1,
                                 segments_per_peer=2)
        server.on_session_start(0.0, 0, 0)
        server.request_segment(0.0, 0, 0, 0, 300.0)
        assert server.stored_segment_count(0) == 1
        server.on_session_start(10.0, 0, 1)  # displaces program 0
        assert server.stored_segment_count(0) == 0
        assert server.cached_programs() == {1}
        assert server.stats.evictions == 1

    def test_oracle_prewarm_is_instantly_stored(self):
        oracle = OracleStrategy({0: [100.0, 200.0]}, window_days=1.0)
        server, _ = build_server(strategy=oracle)
        assert server.stored_segment_count(0) == 2
        outcome = server.request_segment(100.0, 1, 0, 0, 300.0)
        assert not outcome.from_server

    def test_unknown_user_rejected(self):
        server, _ = build_server()
        with pytest.raises(CacheError):
            server.box_of(99)

    def test_missing_boxes_rejected(self):
        neighborhood = Neighborhood(0, (0, 1))
        catalog = Catalog([Program(0, 600.0)])
        boxes = {0: SetTopBox(0)}
        with pytest.raises(CacheError):
            IndexServer(neighborhood, boxes, NullStrategy(),
                        PlacementMap(list(boxes.values())), catalog)

    def test_stats_accumulate(self):
        server, _ = build_server()
        server.on_session_start(0.0, 0, 0)
        server.request_segment(0.0, 0, 0, 0, 300.0)
        server.request_segment(300.0, 0, 0, 1, 300.0)
        assert server.stats.sessions == 1
        assert server.stats.segment_requests == 2
        assert server.stats.server_deliveries == 2
