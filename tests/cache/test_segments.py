"""Segmentation math and physical placement."""

import pytest

from repro import units
from repro.cache.segments import (
    PlacementMap,
    cache_footprint_bytes,
    segment_bytes,
    segment_play_seconds,
    usable_capacity_bytes,
)
from repro.errors import PlacementError
from repro.peers.settop import SetTopBox
from repro.trace.records import Program


class TestSegmentMath:
    def test_segment_bytes_is_five_minutes_of_stream(self):
        assert segment_bytes() == pytest.approx(8.06e6 * 300 / 8)

    def test_footprint_rounds_up_to_whole_segments(self):
        program = Program(0, 301.0)  # 2 segments
        assert cache_footprint_bytes(program) == pytest.approx(2 * segment_bytes())

    def test_usable_capacity_floors_per_peer(self):
        seg = segment_bytes()
        # 2.5 segments of storage per peer -> 2 usable.
        assert usable_capacity_bytes(2.5 * seg, 10) == pytest.approx(20 * seg)

    def test_usable_capacity_zero_for_tiny_disks(self):
        assert usable_capacity_bytes(1.0, 100) == 0.0

    def test_usable_capacity_rejects_negative(self):
        with pytest.raises(PlacementError):
            usable_capacity_bytes(-1.0, 10)

    def test_segment_play_seconds_full_and_partial(self):
        program = Program(0, 700.0)  # 300 + 300 + 100
        assert segment_play_seconds(program, 0) == 300.0
        assert segment_play_seconds(program, 2) == pytest.approx(100.0)

    def test_segment_play_seconds_bounds(self):
        program = Program(0, 700.0)
        with pytest.raises(PlacementError):
            segment_play_seconds(program, 3)
        with pytest.raises(PlacementError):
            segment_play_seconds(program, -1)


def boxes_with_segments(n_boxes, segments_each):
    return [
        SetTopBox(i, storage_bytes=segments_each * segment_bytes())
        for i in range(n_boxes)
    ]


class TestPlacementMap:
    def test_places_all_segments(self):
        placement = PlacementMap(boxes_with_segments(4, 10))
        program = Program(0, 100 * 60.0)  # 20 segments
        assignment = placement.place_program(program)
        assert len(assignment) == 20
        assert placement.is_placed(0)

    def test_balances_across_peers(self):
        boxes = boxes_with_segments(4, 10)
        placement = PlacementMap(boxes)
        placement.place_program(Program(0, 100 * 60.0))  # 20 segments
        loads = [box.used_bytes / segment_bytes() for box in boxes]
        assert max(loads) - min(loads) <= 1.0

    def test_holder_lookup(self):
        placement = PlacementMap(boxes_with_segments(2, 10))
        program = Program(0, 600.0)
        assignment = placement.place_program(program)
        assert placement.holder_of(0, 0) is assignment[0]
        assert placement.holder_of(0, 1) is assignment[1]

    def test_holder_of_unplaced_raises(self):
        placement = PlacementMap(boxes_with_segments(1, 10))
        with pytest.raises(PlacementError):
            placement.holder_of(0, 0)

    def test_holder_of_bad_index_raises(self):
        placement = PlacementMap(boxes_with_segments(1, 10))
        placement.place_program(Program(0, 600.0))
        with pytest.raises(PlacementError):
            placement.holder_of(0, 5)

    def test_double_place_rejected(self):
        placement = PlacementMap(boxes_with_segments(2, 10))
        placement.place_program(Program(0, 600.0))
        with pytest.raises(PlacementError):
            placement.place_program(Program(0, 600.0))

    def test_remove_frees_space(self):
        boxes = boxes_with_segments(2, 3)
        placement = PlacementMap(boxes)
        placement.place_program(Program(0, 1500.0))  # 5 of 6 slots
        placement.remove_program(0)
        assert all(box.used_bytes == 0.0 for box in boxes)
        assert not placement.is_placed(0)

    def test_remove_unplaced_is_noop(self):
        placement = PlacementMap(boxes_with_segments(1, 10))
        placement.remove_program(99)

    def test_overfull_placement_fails_atomically(self):
        boxes = boxes_with_segments(2, 2)  # 4 slots total
        placement = PlacementMap(boxes)
        with pytest.raises(PlacementError):
            placement.place_program(Program(0, 1500.0))  # needs 5
        assert all(box.used_bytes == 0.0 for box in boxes)
        assert not placement.is_placed(0)

    def test_space_reusable_after_failed_placement(self):
        boxes = boxes_with_segments(2, 2)
        placement = PlacementMap(boxes)
        with pytest.raises(PlacementError):
            placement.place_program(Program(0, 1500.0))
        placement.place_program(Program(1, 1200.0))  # 4 segments fit
        assert placement.is_placed(1)

    def test_fills_to_exact_capacity(self):
        boxes = boxes_with_segments(3, 2)  # 6 slots
        placement = PlacementMap(boxes)
        placement.place_program(Program(0, 900.0))   # 3
        placement.place_program(Program(1, 900.0))   # 3
        assert placement.placed_programs == 2
        with pytest.raises(PlacementError):
            placement.place_program(Program(2, 300.0))

    def test_empty_peer_list_rejected(self):
        with pytest.raises(PlacementError):
            PlacementMap([])
