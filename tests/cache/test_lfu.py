"""LFU strategy: windowed frequency ranking with LRU tie-breaks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import units
from repro.cache.lfu import LFUStrategy, WindowedCounts
from repro.cache.lru import LRUStrategy

from tests.cache.helpers import bind


class TestWindowedCounts:
    def test_counts_accumulate(self):
        counts = WindowedCounts(100.0)
        counts.record(0.0, 1)
        counts.record(1.0, 1)
        assert counts.count(1) == 2

    def test_expiry(self):
        counts = WindowedCounts(100.0)
        counts.record(0.0, 1)
        counts.record(50.0, 1)
        counts.advance(120.0)
        assert counts.count(1) == 1
        counts.advance(151.0)
        assert counts.count(1) == 0

    def test_zero_window_expires_immediately(self):
        counts = WindowedCounts(0.0)
        counts.record(0.0, 1)
        counts.advance(0.0)
        assert counts.count(1) == 0

    def test_infinite_window_never_expires(self):
        counts = WindowedCounts(None)
        counts.record(0.0, 1)
        counts.advance(1e12)
        assert counts.count(1) == 1

    def test_listeners_fire_on_record_and_expiry(self):
        counts = WindowedCounts(10.0)
        events = []
        counts.add_change_listener(events.append)
        counts.record(0.0, 7)
        counts.advance(20.0)
        assert events == [7, 7]

    def test_len_counts_live_events(self):
        counts = WindowedCounts(10.0)
        counts.record(0.0, 1)
        counts.record(5.0, 2)
        assert len(counts) == 2


class TestAdmission:
    def test_admits_into_free_space(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy)
        change = strategy.on_access(0.0, 1)
        assert change.admitted == [1]

    def test_newcomer_displaces_least_frequent(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy)
        # 1 and 2 are hot; 3 is a one-hit wonder occupying the last slot.
        for t, pid in ((0.0, 1), (1.0, 1), (2.0, 2), (3.0, 2), (4.0, 3)):
            strategy.on_access(t, pid)
        # Newcomer ties 3 on count (1) and wins the LRU tie-break; the
        # hot programs stay.
        change = strategy.on_access(5.0, 4)
        assert 4 in strategy
        assert 3 not in strategy
        assert change.evicted == [3]
        assert {1, 2} <= set(strategy.members)

    def test_less_frequent_newcomer_rejected(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy)
        for pid in (1, 2, 3):
            for t in range(3):  # all members have count 3
                strategy.on_access(float(t), pid)
        change = strategy.on_access(10.0, 4)  # count 1 < 3 everywhere
        assert change.empty
        assert 4 not in strategy

    def test_tie_resolved_by_recency(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy)
        for t, pid in ((0.0, 1), (1.0, 2), (2.0, 3)):
            strategy.on_access(t, pid)
        # Everyone has count 1; newcomer ties and wins over the oldest.
        change = strategy.on_access(3.0, 4)
        assert change.admitted == [4]
        assert change.evicted == [1]

    def test_oversized_program_rejected(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy, capacity=300.0, sizes={9: 301.0})
        assert strategy.on_access(0.0, 9).empty

    def test_multi_victim_admission_spares_hot_member(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy, capacity=300.0, sizes={9: 200.0})
        # Member 1 is hot (count 3); members 2, 3 are cold (count 1).
        for t in (0.0, 1.0, 2.0):
            strategy.on_access(t, 1)
        strategy.on_access(3.0, 2)
        strategy.on_access(4.0, 3)
        # Newcomer 9 (200 B) needs two victims; ties the cold members
        # (count 1) and wins on recency, never touching the hot one.
        change = strategy.on_access(5.0, 9)
        assert set(change.evicted) == {2, 3}
        assert change.admitted == [9]
        assert 1 in strategy

    def test_failed_plan_rolls_back(self):
        strategy = LFUStrategy(history_hours=24.0)
        bind(strategy, capacity=300.0, sizes={9: 250.0})
        # Two cold members and one hot member fill the cache; newcomer
        # with count 1 cannot displace the hot one, so even though one
        # cold victim is beatable the plan must abort cleanly.
        strategy.on_access(0.0, 2)
        for t in (1.0, 2.0):
            strategy.on_access(t, 1)
        strategy.on_access(3.0, 3)
        members_before = strategy.members
        change = strategy.on_access(4.0, 9)
        assert change.empty
        assert strategy.members == members_before
        # The rolled-back heap still evicts correctly afterwards.
        strategy.on_access(5.0, 4)
        assert 4 in strategy


class TestHistoryWindow:
    def test_expired_counts_lose_protection(self):
        strategy = LFUStrategy(history_hours=1.0)
        bind(strategy)
        for t in (0.0, 10.0, 20.0):
            strategy.on_access(t, 1)
        strategy.on_access(30.0, 2)
        strategy.on_access(40.0, 3)
        # Two hours later program 1's count has expired: a tie-break
        # newcomer displaces it (oldest last access).
        change = strategy.on_access(2 * units.SECONDS_PER_HOUR + 50.0, 4)
        assert change.admitted == [4]
        assert change.evicted == [1]

    def test_zero_history_behaves_like_lru(self):
        lfu = LFUStrategy(history_hours=0.0)
        lru = LRUStrategy()
        bind(lfu)
        bind(lru)
        accesses = [(float(t), pid) for t, pid in
                    enumerate((1, 2, 3, 1, 4, 2, 5, 1, 3, 6, 7, 2, 8))]
        for t, pid in accesses:
            lfu_members_change = lfu.on_access(t, pid)
            lru_members_change = lru.on_access(t, pid)
            assert lfu_members_change.admitted == lru_members_change.admitted
            assert lfu_members_change.evicted == lru_members_change.evicted
        assert lfu.members == lru.members

    @given(st.lists(st.tuples(st.integers(1, 12), st.integers(0, 30)),
                    min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_zero_history_equals_lru(self, steps):
        # Strictly increasing timestamps: at identical instants the two
        # policies may tie-break differently, which is fine.
        lfu = LFUStrategy(history_hours=0.0)
        lru = LRUStrategy()
        bind(lfu, capacity=400.0)
        bind(lru, capacity=400.0)
        t = 0.0
        for gap, pid in steps:
            t += gap
            lfu.on_access(t, pid)
            lru.on_access(t, pid)
        assert lfu.members == lru.members


class TestInvariants:
    @given(st.lists(st.tuples(st.integers(0, 3600), st.integers(0, 40)),
                    min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_property_capacity_never_exceeded(self, steps):
        strategy = LFUStrategy(history_hours=1.0)
        bind(strategy, capacity=500.0)
        t = 0.0
        for gap, pid in steps:
            t += gap
            strategy.on_access(t, pid)
            assert strategy.used_bytes <= 500.0 + 1e-9
            assert strategy.used_bytes == 100.0 * len(strategy.members)

    @given(st.lists(st.tuples(st.integers(0, 600), st.integers(0, 25)),
                    min_size=1, max_size=150))
    @settings(max_examples=40, deadline=None)
    def test_property_changes_are_consistent(self, steps):
        strategy = LFUStrategy(history_hours=2.0)
        bind(strategy, capacity=300.0)
        members = set()
        t = 0.0
        for gap, pid in steps:
            t += gap
            change = strategy.on_access(t, pid)
            for evicted in change.evicted:
                assert evicted in members
                members.discard(evicted)
            for admitted in change.admitted:
                assert admitted not in members
                members.add(admitted)
            assert members == set(strategy.members)
