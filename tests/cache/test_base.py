"""Strategy base class and context plumbing."""

import pytest

from repro.cache.base import (
    CacheStrategy,
    MembershipChange,
    NullStrategy,
    StrategyContext,
)
from repro.errors import CacheError

from tests.cache.helpers import bind


class TestStrategyContext:
    def test_rejects_negative_capacity(self):
        with pytest.raises(CacheError):
            StrategyContext(neighborhood_id=0, capacity_bytes=-1.0,
                            footprint_of=lambda pid: 1.0)

    def test_zero_capacity_allowed(self):
        StrategyContext(neighborhood_id=0, capacity_bytes=0.0,
                        footprint_of=lambda pid: 1.0)


class TestMembershipChange:
    def test_empty_by_default(self):
        change = MembershipChange()
        assert change.empty
        assert not change

    def test_truthy_when_populated(self):
        change = MembershipChange(admitted=[1])
        assert not change.empty
        assert change


class TestNullStrategy:
    def test_never_admits(self):
        strategy = NullStrategy()
        bind(strategy)
        for t in range(20):
            assert strategy.on_access(float(t), t % 3).empty
        assert strategy.members == frozenset()
        assert strategy.used_bytes == 0.0

    def test_not_instant_fill(self):
        assert NullStrategy().instant_fill is False


class _Admitter(CacheStrategy):
    """Minimal concrete strategy for exercising base bookkeeping."""

    name = "admitter"

    def on_access(self, now, program_id):
        change = MembershipChange()
        if program_id not in self._members:
            self._admit(program_id)
            change.admitted.append(program_id)
        return change


class TestBaseBookkeeping:
    def test_admit_charges_footprint(self):
        strategy = _Admitter()
        bind(strategy)
        strategy.on_access(0.0, 1)
        assert strategy.used_bytes == 100.0
        assert strategy.free_bytes == 200.0

    def test_double_admit_rejected(self):
        strategy = _Admitter()
        bind(strategy)
        strategy._admit(1)
        with pytest.raises(CacheError):
            strategy._admit(1)

    def test_admit_beyond_capacity_rejected(self):
        strategy = _Admitter()
        bind(strategy, capacity=100.0)
        strategy._admit(1)
        with pytest.raises(CacheError):
            strategy._admit(2)

    def test_evict_refunds(self):
        strategy = _Admitter()
        bind(strategy)
        strategy._admit(1)
        strategy._evict(1)
        assert strategy.used_bytes == 0.0
        assert 1 not in strategy

    def test_evict_non_member_rejected(self):
        strategy = _Admitter()
        bind(strategy)
        with pytest.raises(CacheError):
            strategy._evict(5)

    def test_context_before_bind_rejected(self):
        with pytest.raises(CacheError):
            _Admitter().context
