"""Strategy specs: labels, construction, future-knowledge plumbing."""

import pytest

from repro.cache.factory import (
    ARCSpec,
    BuildInputs,
    GDSFSpec,
    GlobalLFUSpec,
    LFUSpec,
    LRUSpec,
    NoCacheSpec,
    OracleSpec,
    ThresholdSpec,
    spec_from_name,
)
from repro.cache.global_lfu import GlobalLFUStrategy
from repro.cache.lfu import LFUStrategy
from repro.cache.lru import LRUStrategy
from repro.cache.oracle import OracleStrategy
from repro.cache.policies import (
    GlobalLFUEviction,
    LFUEviction,
    LRUEviction,
    PolicyStrategy,
)
from repro.errors import ConfigurationError


class TestBuild:
    def test_no_cache_builds_null_strategies(self):
        built = NoCacheSpec().build(BuildInputs(n_neighborhoods=3))
        assert len(built.strategies) == 3
        assert built.feed is None

    def test_lru_builds_independent_instances(self):
        built = LRUSpec().build(BuildInputs(n_neighborhoods=2))
        assert all(isinstance(s, PolicyStrategy) for s in built.strategies)
        assert all(isinstance(s.eviction, LRUEviction) for s in built.strategies)
        assert built.strategies[0] is not built.strategies[1]
        assert built.strategies[0].eviction is not built.strategies[1].eviction

    def test_lru_classic_builds_reference_implementation(self):
        built = LRUSpec(classic=True).build(BuildInputs(n_neighborhoods=2))
        assert all(isinstance(s, LRUStrategy) for s in built.strategies)

    def test_lfu_passes_history(self):
        built = LFUSpec(history_hours=12.0).build(BuildInputs(n_neighborhoods=1))
        assert isinstance(built.strategies[0], PolicyStrategy)
        assert isinstance(built.strategies[0].eviction, LFUEviction)

    def test_lfu_classic_builds_reference_implementation(self):
        built = LFUSpec(classic=True).build(BuildInputs(n_neighborhoods=1))
        assert isinstance(built.strategies[0], LFUStrategy)

    def test_oracle_requires_futures(self):
        with pytest.raises(ConfigurationError):
            OracleSpec().build(BuildInputs(n_neighborhoods=1))

    def test_oracle_futures_count_must_match(self):
        with pytest.raises(ConfigurationError):
            OracleSpec().build(
                BuildInputs(n_neighborhoods=2, future_accesses=[{}])
            )

    def test_oracle_builds_per_neighborhood(self):
        built = OracleSpec().build(
            BuildInputs(n_neighborhoods=2,
                        future_accesses=[{1: [1.0]}, {2: [2.0]}])
        )
        assert all(isinstance(s, OracleStrategy) for s in built.strategies)

    def test_global_lfu_shares_feed(self):
        built = GlobalLFUSpec(lag_seconds=60.0).build(BuildInputs(n_neighborhoods=3))
        assert built.feed is not None
        assert all(isinstance(s, PolicyStrategy) for s in built.strategies)
        assert all(isinstance(s.eviction, GlobalLFUEviction) for s in built.strategies)
        assert all(s.eviction._feed is built.feed for s in built.strategies)

    def test_global_lfu_classic_shares_feed(self):
        built = GlobalLFUSpec(lag_seconds=60.0, classic=True).build(
            BuildInputs(n_neighborhoods=2)
        )
        assert all(isinstance(s, GlobalLFUStrategy) for s in built.strategies)
        assert all(s._feed is built.feed for s in built.strategies)


class TestLabels:
    def test_labels_are_distinct_and_stable(self):
        labels = {
            NoCacheSpec().label,
            LRUSpec().label,
            LFUSpec().label,
            OracleSpec().label,
            GlobalLFUSpec().label,
            GlobalLFUSpec(lag_seconds=1800.0).label,
            GDSFSpec().label,
            ARCSpec().label,
            ThresholdSpec().label,
            ThresholdSpec(eviction="lfu").label,
        }
        assert len(labels) == 10

    def test_lfu_label_mentions_history(self):
        assert "24" in LFUSpec(history_hours=24.0).label

    def test_global_label_mentions_lag_minutes(self):
        assert "30" in GlobalLFUSpec(lag_seconds=1800.0).label


class TestSpecFromName:
    def test_known_names(self):
        assert isinstance(spec_from_name("none"), NoCacheSpec)
        assert isinstance(spec_from_name("lru"), LRUSpec)
        assert isinstance(spec_from_name("lfu"), LFUSpec)
        assert isinstance(spec_from_name("oracle"), OracleSpec)
        assert isinstance(spec_from_name("global-lfu"), GlobalLFUSpec)
        assert isinstance(spec_from_name("gdsf"), GDSFSpec)
        assert isinstance(spec_from_name("arc"), ARCSpec)
        assert isinstance(spec_from_name("threshold"), ThresholdSpec)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="lru"):
            spec_from_name("clock")

    def test_oracle_spec_requires_future_knowledge_flag(self):
        assert OracleSpec().requires_future_knowledge is True
        assert LRUSpec().requires_future_knowledge is False
